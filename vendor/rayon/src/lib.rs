//! Offline shim for the subset of the `rayon` API used by this workspace.
//!
//! Provides order-preserving data parallelism over `std::thread::scope`:
//! `into_par_iter()` on ranges / vectors / slices, `map` + `collect`, and a
//! minimal [`ThreadPoolBuilder`] whose `install` scopes the worker count
//! (which is what the serial-vs-parallel determinism test drives).
//!
//! Work is split into one contiguous chunk per worker and results are
//! reassembled in input order, so `collect::<Vec<_>>()` is always
//! element-for-element identical to the sequential map — exactly the
//! guarantee real rayon's indexed parallel iterators give.
//!
//! `RAYON_NUM_THREADS` is honoured like in real rayon; inside
//! [`ThreadPool::install`] the pool's size wins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;

pub mod iter;

/// Re-exports of the traits needed to call `into_par_iter` / `par_iter`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Sets this thread's worker-count override (used by worker threads to
/// take their share of the spawning call's worker budget).
pub(crate) fn set_installed_num_threads(n: Option<usize>) {
    INSTALLED_THREADS.with(|c| c.set(n));
}

/// Returns the number of worker threads parallel iterators will use on this
/// thread: the installed pool's size if inside [`ThreadPool::install`],
/// otherwise `RAYON_NUM_THREADS`, otherwise the machine's parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim never fails to
/// build, so this is uninhabited in practice but keeps the API shape.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` means "automatic".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped worker-count override mirroring `rayon::ThreadPool`.
///
/// The shim spawns scoped threads per parallel call rather than keeping
/// persistent workers, so the pool only records how many workers its
/// `install` scope should use.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count governing all parallel
    /// iterators invoked (transitively, on this thread) inside it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        let guard = RestoreGuard(previous);
        let result = op();
        drop(guard);
        result
    }

    /// Returns the worker count this pool installs.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads).max(1)
    }
}

struct RestoreGuard(Option<usize>);

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        let previous = self.0;
        INSTALLED_THREADS.with(|c| c.set(previous));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<usize> = (0..1000usize).map(|i| i * i).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn install_scopes_the_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn install_restores_on_exit() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| ());
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn slices_support_par_iter() {
        let data = vec![1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let parallel: Vec<u64> = (0..256u64).into_par_iter().map(|i| i.wrapping_mul(i)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let serial: Vec<u64> =
            pool.install(|| (0..256u64).into_par_iter().map(|i| i.wrapping_mul(i)).collect());
        assert_eq!(parallel, serial);
    }
}
