//! Offline shim for the subset of the `rayon` API used by this workspace.
//!
//! Provides order-preserving data parallelism over `std::thread::scope`:
//! `into_par_iter()` on ranges / vectors / slices, `map` + `collect`, and a
//! minimal [`ThreadPoolBuilder`] whose `install` scopes the worker count
//! (which is what the serial-vs-parallel determinism test drives).
//!
//! Scheduling is a shared-queue, chunked work-stealing design: items sit
//! in a shared slice of take-once slots, workers claim fixed-size index
//! ranges off one atomic counter, and index-tagged results merge strictly
//! in input order on the calling thread.  `collect::<Vec<_>>()` is
//! therefore always element-for-element identical to the sequential map —
//! exactly the guarantee real rayon's indexed parallel iterators give —
//! while skewed workloads rebalance dynamically instead of idling behind
//! a static per-worker partition.  The pre-stealing static partition
//! survives as [`SchedulerMode::Contiguous`] so benchmarks can measure
//! the stealing win; both modes produce bitwise-identical output.
//!
//! Each top-level parallel call records a [`RunStats`] (per-worker item
//! counts, range claims, busy time, steal count) retrievable on the
//! calling thread via [`last_run_stats`].
//!
//! `RAYON_NUM_THREADS` is honoured like in real rayon; inside
//! [`ThreadPool::install`] the pool's size wins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::fmt;

pub mod iter;

/// Re-exports of the traits needed to call `into_par_iter` / `par_iter`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    static SCHEDULER_MODE: Cell<SchedulerMode> = const { Cell::new(SchedulerMode::WorkStealing) };
    static LAST_RUN_STATS: RefCell<Option<RunStats>> = const { RefCell::new(None) };
}

/// How a parallel call partitions its items across workers.
///
/// Both modes merge index-tagged results in input order, so they produce
/// **bitwise-identical** output; they differ only in wall-clock behaviour
/// on skewed workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// The default: each worker's fair share is split into several index
    /// ranges on one shared queue, and any idle worker claims (steals)
    /// the next range — skewed items rebalance dynamically.
    WorkStealing,
    /// The legacy static partition: one contiguous range per worker.
    /// Kept as the benchmark baseline the stealing win is measured
    /// against.
    Contiguous,
}

/// Execution statistics of the most recent top-level parallel call on a
/// thread (see [`last_run_stats`]).  Purely observational: none of these
/// numbers feed back into scheduling or results.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Scheduler mode the call ran under.
    pub mode: SchedulerMode,
    /// Worker budget of the call ([`current_num_threads`] at entry).
    pub workers: usize,
    /// Worker threads actually spawned (0 for the inline serial path).
    pub workers_spawned: usize,
    /// Items per claimed index range.
    pub range_len: usize,
    /// Items executed by each worker (one entry for the serial path).
    pub per_worker_items: Vec<usize>,
    /// Index ranges claimed by each worker.
    pub per_worker_ranges: Vec<usize>,
    /// Wall-clock seconds each worker spent between spawn and exit.
    pub per_worker_busy_s: Vec<f64>,
    /// Ranges claimed beyond each worker's first — work that a static
    /// contiguous partition would **not** have rebalanced.
    pub steals: usize,
}

impl RunStats {
    /// Total items executed across workers.
    pub fn items(&self) -> usize {
        self.per_worker_items.iter().sum()
    }
}

/// Returns the [`RunStats`] of the most recent top-level parallel call
/// made on this thread, if any.  Nested parallel calls record onto the
/// worker threads that made them, so a caller always observes its own
/// fan-out, not its children's.
pub fn last_run_stats() -> Option<RunStats> {
    LAST_RUN_STATS.with(|s| s.borrow().clone())
}

pub(crate) fn record_run_stats(stats: RunStats) {
    LAST_RUN_STATS.with(|s| *s.borrow_mut() = Some(stats));
}

/// The scheduler mode parallel calls on this thread currently use.
pub fn scheduler_mode() -> SchedulerMode {
    SCHEDULER_MODE.with(Cell::get)
}

/// Runs `op` with parallel calls on this thread using `mode`, restoring
/// the previous mode on exit (panic included).  Worker threads spawned by
/// those calls run nested parallelism under the default mode.
pub fn with_scheduler_mode<R>(mode: SchedulerMode, op: impl FnOnce() -> R) -> R {
    let previous = SCHEDULER_MODE.with(|c| c.replace(mode));
    let guard = ModeRestoreGuard(previous);
    let result = op();
    drop(guard);
    result
}

struct ModeRestoreGuard(SchedulerMode);

impl Drop for ModeRestoreGuard {
    fn drop(&mut self) {
        let previous = self.0;
        SCHEDULER_MODE.with(|c| c.set(previous));
    }
}

/// Sets this thread's worker-count override (used by worker threads to
/// take their share of the spawning call's worker budget).
pub(crate) fn set_installed_num_threads(n: Option<usize>) {
    INSTALLED_THREADS.with(|c| c.set(n));
}

/// Returns the number of worker threads parallel iterators will use on this
/// thread: the installed pool's size if inside [`ThreadPool::install`],
/// otherwise `RAYON_NUM_THREADS`, otherwise the machine's parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim never fails to
/// build, so this is uninhabited in practice but keeps the API shape.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` means "automatic".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped worker-count override mirroring `rayon::ThreadPool`.
///
/// The shim spawns scoped threads per parallel call rather than keeping
/// persistent workers, so the pool only records how many workers its
/// `install` scope should use.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count governing all parallel
    /// iterators invoked (transitively, on this thread) inside it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        let guard = RestoreGuard(previous);
        let result = op();
        drop(guard);
        result
    }

    /// Returns the worker count this pool installs.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads).max(1)
    }
}

struct RestoreGuard(Option<usize>);

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        let previous = self.0;
        INSTALLED_THREADS.with(|c| c.set(previous));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<usize> = (0..1000usize).map(|i| i * i).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn install_scopes_the_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn install_restores_on_exit() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| ());
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn slices_support_par_iter() {
        let data = vec![1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let parallel: Vec<u64> = (0..256u64).into_par_iter().map(|i| i.wrapping_mul(i)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let serial: Vec<u64> =
            pool.install(|| (0..256u64).into_par_iter().map(|i| i.wrapping_mul(i)).collect());
        assert_eq!(parallel, serial);
    }

    #[test]
    fn contiguous_mode_matches_work_stealing_bitwise() {
        let expected: Vec<u64> = (0..333u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for mode in [SchedulerMode::WorkStealing, SchedulerMode::Contiguous] {
            let got: Vec<u64> = with_scheduler_mode(mode, || {
                (0..333u64).into_par_iter().map(|i| i.wrapping_mul(0x9E37)).collect()
            });
            assert_eq!(got, expected, "{mode:?} diverged from the sequential map");
        }
        // The mode override restores on exit.
        assert_eq!(scheduler_mode(), SchedulerMode::WorkStealing);
    }

    #[test]
    fn run_stats_account_for_every_item() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let _: Vec<usize> = pool.install(|| (0..100usize).into_par_iter().map(|i| i).collect());
        let stats = last_run_stats().expect("parallel call must record stats");
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.items(), 100);
        assert_eq!(stats.per_worker_items.len(), stats.workers_spawned);
        assert_eq!(stats.per_worker_ranges.len(), stats.workers_spawned);
        let expected_steals: usize = stats
            .per_worker_ranges
            .iter()
            .map(|r| r.saturating_sub(1))
            .sum();
        assert_eq!(stats.steals, expected_steals);
        // The serial path records stats too.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let _: Vec<usize> = pool.install(|| (0..5usize).into_par_iter().map(|i| i).collect());
        let stats = last_run_stats().unwrap();
        assert_eq!(stats.workers_spawned, 0);
        assert_eq!(stats.per_worker_items, vec![5]);
    }

    #[test]
    fn try_for_each_ordered_streams_in_input_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut seen: Vec<(usize, u64)> = Vec::new();
        pool.install(|| {
            (0..57u64)
                .into_par_iter()
                .map(|i| i * 3)
                .try_for_each_ordered(|index, value| -> Result<(), ()> {
                    seen.push((index, value));
                    Ok(())
                })
        })
        .unwrap();
        let expected: Vec<(usize, u64)> = (0..57u64).map(|i| (i as usize, i * 3)).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn try_for_each_ordered_sink_error_cancels_and_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut emitted = 0usize;
        let err = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|i| i)
                .try_for_each_ordered(|index, _| {
                    if index == 3 {
                        return Err("sink full");
                    }
                    emitted += 1;
                    Ok(())
                })
        });
        assert_eq!(err, Err("sink full"));
        assert_eq!(emitted, 3, "exactly the in-order prefix reaches the sink");
    }
}
