//! Order-preserving parallel iterators over eagerly materialized items.
//!
//! The shim keeps the shape of rayon's API (`into_par_iter().map(..).
//! collect()`) but materializes the item list up front and executes the
//! mapped closure over contiguous chunks on scoped threads. That trades
//! rayon's work-stealing for simplicity while keeping the property the
//! workspace depends on: output order equals input order regardless of the
//! worker count.

use std::ops::Range;

/// Conversion into a parallel iterator (mirrors `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` on borrowed collections (mirrors
/// `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Operations shared by the shim's parallel iterators.
///
/// A trait (rather than inherent methods alone) so `use rayon::prelude::*`
/// brings the combinators into scope exactly like with real rayon.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Maps each element through `f` in parallel, preserving order.
    fn map<U, F>(self, f: F) -> ParMap<Self::Item, U, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<U, F>(self, f: F) -> ParMap<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _output: std::marker::PhantomData,
        }
    }
}

/// The result of [`ParallelIterator::map`]: items plus the mapping closure.
pub struct ParMap<T, U, F> {
    items: Vec<T>,
    f: F,
    _output: std::marker::PhantomData<fn() -> U>,
}

impl<T, U, F> ParMap<T, U, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Executes the map across the current worker count and collects the
    /// results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<U>,
    {
        run_ordered(self.items, self.f).into_iter().collect()
    }

    /// Sums the mapped results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<U>,
    {
        run_ordered(self.items, self.f).into_iter().sum()
    }
}

/// Maps `items` through `f` using the current worker count, returning the
/// results in input order.
fn run_ordered<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: F) -> Vec<U> {
    let workers = crate::current_num_threads().max(1);
    if workers == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Worker threads get an explicit share of this call's worker budget, so
    // nested parallel iterators cannot oversubscribe the machine: a sweep
    // that fans out over N points on W workers leaves each point ~W/N
    // workers for its inner fault-map loop, keeping the total thread count
    // around W (real rayon achieves the same through its shared pool).
    // `ThreadPool::install` is respected transitively for the same reason.
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let child_budget = (workers / chunks.len()).max(1);
    let f = &f;
    let parts: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    crate::set_installed_num_threads(Some(child_budget));
                    chunk.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}
