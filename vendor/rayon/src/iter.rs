//! Order-preserving parallel iterators over a shared-queue, chunked
//! work-stealing scheduler.
//!
//! The shim keeps the shape of rayon's API (`into_par_iter().map(..).
//! collect()`) but replaces rayon's per-thread deques with one shared
//! queue of index ranges: items are parked in a shared slice of take-once
//! slots, workers claim fixed-size index ranges off an atomic counter and
//! ship their results back **index-tagged**, and the calling thread merges
//! parts strictly in input-index order.  Scheduling is therefore dynamic —
//! a worker that finishes a cheap range immediately claims (steals) the
//! next one, so skewed workloads cannot leave cores idle behind a static
//! partition — while the *output* is a pure function of the input: the
//! property the workspace depends on is that order and value of the
//! results never depend on the worker count or on which worker ran which
//! range.  Determinism lives in the merge order, not the execution order.
//!
//! Beyond `collect`/`sum`, [`ParMap::try_for_each_ordered`] streams
//! results to a sink on the calling thread *in input order as they become
//! ready* — the campaign engine uses it to flush finished rows to disk
//! without waiting for the whole grid, even though cells complete out of
//! order under stealing.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use crate::{RunStats, SchedulerMode};

/// How many ranges each worker's fair share is split into under
/// [`SchedulerMode::WorkStealing`]: more ranges per worker means finer
/// rebalancing of skewed items at the cost of more (cheap) claims.
const STEAL_RANGES_PER_WORKER: usize = 8;

/// Conversion into a parallel iterator (mirrors `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` on borrowed collections (mirrors
/// `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Operations shared by the shim's parallel iterators.
///
/// A trait (rather than inherent methods alone) so `use rayon::prelude::*`
/// brings the combinators into scope exactly like with real rayon.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Maps each element through `f` in parallel, preserving order.
    fn map<U, F>(self, f: F) -> ParMap<Self::Item, U, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<U, F>(self, f: F) -> ParMap<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _output: std::marker::PhantomData,
        }
    }
}

/// The result of [`ParallelIterator::map`]: items plus the mapping closure.
pub struct ParMap<T, U, F> {
    items: Vec<T>,
    f: F,
    _output: std::marker::PhantomData<fn() -> U>,
}

impl<T, U, F> ParMap<T, U, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Executes the map across the current worker count and collects the
    /// results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<U>,
    {
        let n = self.items.len();
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        run_scheduler(self.items, &self.f, |start, part| {
            for (offset, value) in part.into_iter().enumerate() {
                out[start + offset] = Some(value);
            }
            true
        });
        out.into_iter()
            .map(|slot| slot.expect("scheduler dropped an item"))
            .collect()
    }

    /// Sums the mapped results (in input order, so floating-point
    /// accumulation is deterministic).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<U>,
    {
        self.collect::<Vec<U>>().into_iter().sum()
    }

    /// Streams every result to `sink` on the calling thread **in input
    /// order**, as results become ready: out-of-order completions are
    /// buffered until their in-order turn, so the sink observes exactly
    /// the sequence `(0, f(items[0])), (1, f(items[1])), …` no matter how
    /// ranges were scheduled.  A sink error cancels the run — workers stop
    /// claiming new ranges, in-flight ranges finish and are discarded —
    /// and is returned to the caller.
    ///
    /// This is a shim extension over real rayon's API: the campaign
    /// engine's resumable streaming path is built on it.
    ///
    /// # Errors
    ///
    /// Returns the first error the sink reports (in input order).
    pub fn try_for_each_ordered<E>(
        self,
        mut sink: impl FnMut(usize, U) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut pending: BTreeMap<usize, Vec<U>> = BTreeMap::new();
        let mut next = 0usize;
        let mut result: Result<(), E> = Ok(());
        run_scheduler(self.items, &self.f, |start, part| {
            if result.is_err() {
                return false;
            }
            pending.insert(start, part);
            while let Some(part) = pending.remove(&next) {
                for value in part {
                    if let Err(e) = sink(next, value) {
                        result = Err(e);
                        return false;
                    }
                    next += 1;
                }
            }
            true
        });
        result
    }
}

/// One index-tagged result range shipped from a worker to the merge loop.
struct Part<U> {
    start: usize,
    values: Vec<U>,
}

/// The shared-queue scheduler: parks `items` in take-once slots, claims
/// index ranges off an atomic counter from `workers` scoped threads, and
/// hands each finished range to `on_part` on the calling thread (tagged
/// with its starting input index, in completion order).  `on_part`
/// returning `false` cancels the run: no further ranges are claimed, and
/// remaining parts are drained without effect.
///
/// Records a [`RunStats`] for this call in the calling thread's
/// `last_run_stats` slot before returning.
fn run_scheduler<T, U, F, P>(items: Vec<T>, f: &F, mut on_part: P)
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
    P: FnMut(usize, Vec<U>) -> bool,
{
    let n = items.len();
    let workers = crate::current_num_threads().max(1);
    let mode = crate::scheduler_mode();
    if workers == 1 || n <= 1 {
        let started = Instant::now();
        let mut processed = 0usize;
        for (index, item) in items.into_iter().enumerate() {
            let keep_going = on_part(index, vec![f(item)]);
            processed += 1;
            if !keep_going {
                break;
            }
        }
        crate::record_run_stats(RunStats {
            mode,
            workers,
            workers_spawned: 0,
            range_len: n.max(1),
            per_worker_items: vec![processed],
            per_worker_ranges: vec![usize::from(processed > 0)],
            per_worker_busy_s: vec![started.elapsed().as_secs_f64()],
            steals: 0,
        });
        return;
    }

    // Range length: contiguous mode reproduces the pre-stealing static
    // partition (one range per worker); stealing mode splits each worker's
    // fair share into STEAL_RANGES_PER_WORKER ranges so a worker stuck on
    // an expensive range sheds the rest of its share to idle peers.
    let range_len = match mode {
        SchedulerMode::Contiguous => n.div_ceil(workers),
        SchedulerMode::WorkStealing => (n / (workers * STEAL_RANGES_PER_WORKER)).max(1),
    };
    let num_ranges = n.div_ceil(range_len);
    let spawned = workers.min(num_ranges);
    // Worker threads get an explicit share of this call's worker budget, so
    // nested parallel iterators cannot oversubscribe the machine: a sweep
    // that fans out over N points on W workers leaves each point ~W/N
    // workers for its inner fault-map loop, keeping the total thread count
    // around W (real rayon achieves the same through its shared pool).
    // `ThreadPool::install` is respected transitively for the same reason.
    let child_budget = (workers / spawned).max(1);

    // The shared slice of take-once slots the ranges index into.  Each
    // index is claimed by exactly one worker (ranges are disjoint), so
    // every lock below is uncontended; the mutex exists to move `T` out of
    // shared storage without `unsafe`.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next_range = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let worker_stats: Mutex<Vec<(usize, usize, f64)>> = Mutex::new(vec![(0, 0, 0.0); spawned]);
    let (tx, rx) = mpsc::channel::<Part<U>>();

    std::thread::scope(|scope| {
        for worker in 0..spawned {
            let tx = tx.clone();
            let slots = &slots;
            let next_range = &next_range;
            let cancelled = &cancelled;
            let worker_stats = &worker_stats;
            scope.spawn(move || {
                crate::set_installed_num_threads(Some(child_budget));
                let started = Instant::now();
                let mut my_items = 0usize;
                let mut my_ranges = 0usize;
                loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let range = next_range.fetch_add(1, Ordering::Relaxed);
                    if range >= num_ranges {
                        break;
                    }
                    let start = range * range_len;
                    let end = ((range + 1) * range_len).min(n);
                    let mut values = Vec::with_capacity(end - start);
                    for slot in &slots[start..end] {
                        let item = slot
                            .lock()
                            .expect("input slot poisoned")
                            .take()
                            .expect("input index claimed twice");
                        values.push(f(item));
                    }
                    my_items += end - start;
                    my_ranges += 1;
                    if tx.send(Part { start, values }).is_err() {
                        break;
                    }
                }
                let mut stats = worker_stats.lock().expect("worker stats poisoned");
                stats[worker] = (my_items, my_ranges, started.elapsed().as_secs_f64());
            });
        }
        drop(tx);
        // Merge loop: runs on the calling thread while workers execute.
        // Keeps draining after a cancel so workers never block on send.
        for part in rx {
            if !on_part(part.start, part.values) {
                cancelled.store(true, Ordering::Relaxed);
            }
        }
    });

    let per_worker = worker_stats.into_inner().expect("worker stats poisoned");
    crate::record_run_stats(RunStats {
        mode,
        workers,
        workers_spawned: spawned,
        range_len,
        per_worker_items: per_worker.iter().map(|&(items, _, _)| items).collect(),
        per_worker_ranges: per_worker.iter().map(|&(_, ranges, _)| ranges).collect(),
        per_worker_busy_s: per_worker.iter().map(|&(_, _, busy)| busy).collect(),
        steals: per_worker
            .iter()
            .map(|&(_, ranges, _)| ranges.saturating_sub(1))
            .sum(),
    });
}
