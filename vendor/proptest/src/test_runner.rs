//! Test-runner configuration and deterministic seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many randomized cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim uses a smaller count so
        // the heavier training-loop properties keep the suite fast.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` randomized cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Builds the deterministic RNG for one property test, seeded from the
/// test's name (FNV-1a) so every run and every machine samples the same
/// inputs.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}
