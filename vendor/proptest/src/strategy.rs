//! The [`Strategy`] trait and its implementations for primitive ranges.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of a type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
