//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// The strategy behind [`ANY`].
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// Generates `true` and `false` with equal probability.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}
