//! Offline shim for the subset of the `proptest` API used by this
//! workspace.
//!
//! Property tests here are deterministic randomized tests: every
//! `proptest!` block runs its body for [`ProptestConfig::cases`] cases with
//! inputs sampled from the bound strategies, using an RNG seeded from the
//! test's name — so failures reproduce exactly across runs and machines.
//! The shim supports range strategies over the primitive numeric types,
//! `proptest::collection::vec`, `proptest::bool::ANY`, `prop_assert!` /
//! `prop_assert_eq!` and `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! What it deliberately does **not** do (relative to real proptest):
//! shrinking of failing inputs, persistence of failure seeds, and the
//! combinator/`prop_map` strategy algebra — none of which the workspace's
//! tests use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property; behaves like `assert!` (the shim has no shrinking,
/// so failing the assertion fails the test at the current case).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality of a property; behaves like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn name(bindings) { body }` item in turn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                )*
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
