//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max_inclusive) = r.into_inner();
        assert!(min <= max_inclusive, "empty size range");
        Self { min, max_inclusive }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
