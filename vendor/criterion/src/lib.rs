//! Offline shim for the subset of the `criterion` API used by this
//! workspace.
//!
//! Implements a simple wall-clock benchmark runner behind criterion's API
//! shape (`Criterion`, `benchmark_group`, `bench_function`, the
//! `criterion_group!` / `criterion_main!` macros). Each benchmark is warmed
//! up for `warm_up_time`, then timed in batches until `measurement_time`
//! elapses, and the mean time per iteration is printed. No statistics,
//! outlier analysis, or HTML reports — just honest timings suitable for
//! spotting order-of-magnitude regressions in an offline environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the nominal number of samples (kept for API compatibility; the
    /// shim times in batches bounded by `measurement_time`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets how long each benchmark is timed.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let warm_up = self.warm_up_time;
        let measurement = self.measurement_time;
        run_benchmark(id, warm_up, measurement, f);
        self
    }

    /// Prints the closing summary (no-op in the shim).
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        run_benchmark(
            &full_id,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `body` `self.iterations` times and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, warm_up: Duration, measurement: Duration, mut f: F) {
    // Warm-up: find an iteration count that takes a meaningful slice of
    // time, doubling from 1.
    let mut iterations: u64 = 1;
    let warm_up_start = Instant::now();
    loop {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if warm_up_start.elapsed() >= warm_up {
            break;
        }
        if bencher.elapsed < Duration::from_millis(10) {
            iterations = iterations.saturating_mul(2);
        }
    }

    // Measurement: run timed batches until the measurement window closes.
    let mut total_iterations: u64 = 0;
    let mut total_elapsed = Duration::ZERO;
    let measurement_start = Instant::now();
    loop {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total_iterations += iterations;
        total_elapsed += bencher.elapsed;
        if measurement_start.elapsed() >= measurement {
            break;
        }
    }

    let mean_ns = if total_iterations == 0 {
        0.0
    } else {
        total_elapsed.as_nanos() as f64 / total_iterations as f64
    };
    println!("{id:<50} {:>14}/iter  ({total_iterations} iterations)", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}
