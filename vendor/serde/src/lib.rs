//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its config and
//! report types so they stay wire-ready, but nothing in the tree actually
//! serializes yet (there is no `serde_json` in the build environment).
//! This shim therefore provides the two derive macros as no-ops: the
//! attribute positions stay valid and the real `serde` can be swapped back
//! in (by editing `[workspace.dependencies]`) the moment the build
//! environment gains registry access, without touching any source file.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
