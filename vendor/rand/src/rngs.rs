//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Unlike the real `rand` crate's ChaCha-based `StdRng` this is not
/// cryptographically secure, but it is fast, passes the statistical checks
/// the test-suite relies on, and produces an identical stream on every
/// platform for a given seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference design).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state would lock xoshiro into the zero stream.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }
}

/// Alias kept for API compatibility with `rand::rngs::SmallRng`.
pub type SmallRng = StdRng;
