//! The standard distributions backing [`crate::Rng::gen`].

use crate::RngCore;

/// A distribution over values of some type.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: `[0, 1)` for floats, the full
/// range for integers, a fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::sample_unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        crate::sample_unit_f32(rng)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
