//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible implementation of the pieces it
//! actually uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (high statistical quality; **not** the cryptographic ChaCha
//!   generator of the real `rand` crate, and not stream-compatible with it),
//! * `gen`, `gen_range` (half-open and inclusive ranges over the primitive
//!   integer and float types) and `gen_bool`.
//!
//! Determinism is the design goal: every generator is seeded explicitly and
//! produces an identical stream on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;

/// The core of a random number generator: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for bools).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        sample_unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`, or `[low, high]` if `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_uniform(rng, low, high, true)
    }
}

fn sample_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniformly random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn sample_unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 uniformly random mantissa bits in [0, 1).
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) as u128 + u128::from(inclusive);
                if span == 0 {
                    // Inclusive range covering the whole domain of the type.
                    return ((rng.next_u64() as u128 as i128) + lo) as $t;
                }
                // Multiply-shift bounded sampling; any residual modulo bias
                // is far below what the statistical tests can resolve.
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = sample_unit_f64(rng);
        let value = low + (high - low) * unit;
        if value < high {
            value
        } else {
            high
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = sample_unit_f32(rng);
        let value = low + (high - low) * unit;
        if value < high {
            value
        } else {
            high
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn dyn_rng_core_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(17);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10usize);
        assert!(v < 10);
    }
}
