//! Quickstart: train a bit-error-robust navigation policy with BERRY and
//! compare its robustness against a classically trained DQN.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `BERRY_SCALE=quick` for a larger (convolutional-policy) run; the
//! default `smoke` scale finishes in well under a minute even in debug
//! builds.

use berry_core::evaluate::{evaluate_error_free, evaluate_under_faults};
use berry_core::experiment::{train_policy_pair, ExperimentScale};
use berry_faults::chip::ChipProfile;
use berry_uav::env::NavigationEnv;
use berry_uav::world::ObstacleDensity;
use rand::SeedableRng;

fn scale_from_env() -> ExperimentScale {
    match std::env::var("BERRY_SCALE").unwrap_or_default().as_str() {
        "quick" => ExperimentScale::Quick,
        "paper" => ExperimentScale::Paper,
        _ => ExperimentScale::Smoke,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2023);

    println!("BERRY quickstart ({scale:?} scale)");
    println!("1. training a Classical DQN and a BERRY error-aware DQN on the navigation task...");
    let env_cfg = scale.navigation_config(ObstacleDensity::Medium);
    let pair = train_policy_pair(&env_cfg, &scale.default_policy(), scale, &mut rng)?;

    println!("2. evaluating both policies error-free and under 0.5 % bit errors...");
    let eval_cfg = scale.evaluation_config();
    let chip = ChipProfile::generic();
    for (name, policy) in [("Classical", &pair.classical), ("BERRY", &pair.berry)] {
        let env = NavigationEnv::new(env_cfg.clone())?;
        let clean = evaluate_error_free(policy, &env, &eval_cfg, &mut rng)?;
        let faulty = evaluate_under_faults(policy, &env, &chip, 0.005, &eval_cfg, &mut rng)?;
        println!(
            "   {name:<10} error-free success {:>5.1} %   under faults {:>5.1} %",
            clean.success_rate * 100.0,
            faulty.success_rate * 100.0
        );
    }
    println!("BERRY should retain much more of its success rate under bit errors.");
    println!("(Larger scales make the gap clearer; see the berry-bench harnesses.)");
    Ok(())
}
