//! Package delivery mission: the paper's motivating scenario.
//!
//! A Crazyflie nano-UAV flies point-to-point "package delivery" missions
//! through a cluttered environment.  This example trains a BERRY policy,
//! then compares the full mission-level quality-of-flight (flight time,
//! flight energy, missions per battery charge) at nominal 1 V operation and
//! at the paper's highlighted 0.77 Vmin low-voltage operating point.
//!
//! ```text
//! cargo run --release --example package_delivery
//! ```

use berry_core::evaluate::{evaluate_mission, MissionContext};
use berry_core::experiment::{train_policy_pair, ExperimentScale};
use berry_uav::env::NavigationEnv;
use berry_uav::world::ObstacleDensity;
use rand::SeedableRng;

fn scale_from_env() -> ExperimentScale {
    match std::env::var("BERRY_SCALE").unwrap_or_default().as_str() {
        "quick" => ExperimentScale::Quick,
        "paper" => ExperimentScale::Paper,
        _ => ExperimentScale::Smoke,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let context = MissionContext::crazyflie_c3f2();

    println!("Package delivery on {} ({scale:?} scale)", context.platform.name());
    let env_cfg = scale.navigation_config(ObstacleDensity::Medium);
    println!("training BERRY policy...");
    let pair = train_policy_pair(&env_cfg, &scale.default_policy(), scale, &mut rng)?;

    let eval_cfg = scale.evaluation_config();
    let nominal_voltage = context.accelerator.domain().nominal_voltage_norm();
    let mut rows = Vec::new();
    for (label, voltage) in [("1 V nominal", nominal_voltage), ("0.77 Vmin", 0.77)] {
        let env = NavigationEnv::new(env_cfg.clone())?;
        let mission = evaluate_mission(&pair.berry, &env, &context, voltage, &eval_cfg, &mut rng)?;
        println!(
            "\n  operating point: {label} ({:.2} Vmin, BER {:.3e} %)",
            mission.voltage_norm,
            mission.ber * 100.0
        );
        println!(
            "    processing energy savings : {:.2}x vs 1 V",
            mission.processing.savings_vs_nominal
        );
        println!(
            "    heatsink mass             : {:.2} g",
            mission.processing.heatsink_mass_g
        );
        println!(
            "    mission success rate      : {:.1} %",
            mission.navigation.success_rate * 100.0
        );
        println!(
            "    flight time / energy      : {:.2} s / {:.2} J",
            mission.quality_of_flight.flight_time_s, mission.quality_of_flight.flight_energy_j
        );
        println!(
            "    missions per charge       : {:.1}",
            mission.quality_of_flight.num_missions
        );
        rows.push(mission.quality_of_flight);
    }
    if rows.len() == 2 {
        println!(
            "\nlow-voltage operation changes flight energy by {:+.1} % and missions by {:+.1} %",
            rows[1].flight_energy_change_vs(&rows[0]) * 100.0,
            rows[1].missions_change_vs(&rows[0]) * 100.0
        );
    }
    Ok(())
}
