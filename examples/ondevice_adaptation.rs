//! On-device adaptation: learn the deployed chip's actual fault pattern.
//!
//! Some UAVs support on-device fine-tuning.  BERRY can then train directly
//! against the persistent bit errors of the specific low-voltage chip it
//! will fly with, which tolerates an even lower supply voltage than the
//! offline-trained policy (paper Table IV).  This example trains both an
//! offline and an on-device policy and deploys each on the *same* chip
//! fault map.
//!
//! ```text
//! cargo run --release --example ondevice_adaptation
//! ```

use berry_core::evaluate::FaultEvaluationConfig;
use berry_core::perturb::NetworkPerturber;
use berry_core::robust::{train_berry_with_fault_map, BerryConfig, LearningMode};
use berry_core::experiment::ExperimentScale;
use berry_nn::network::InferScratch;
use berry_rl::eval::evaluate_policy_batched;
use berry_uav::env::NavigationEnv;
use berry_uav::world::ObstacleDensity;
use rand::{RngCore, SeedableRng};

fn scale_from_env() -> ExperimentScale {
    match std::env::var("BERRY_SCALE").unwrap_or_default().as_str() {
        "quick" => ExperimentScale::Quick,
        "paper" => ExperimentScale::Paper,
        _ => ExperimentScale::Smoke,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let deployment_voltage = 0.72; // aggressive near-threshold point
    let env_cfg = scale.navigation_config(ObstacleDensity::Medium);
    let spec = scale.default_policy();

    println!("On-device adaptation at {deployment_voltage} Vmin ({scale:?} scale)");

    // 1. On-device learning: the trainer perturbs every update with the
    //    persistent fault map of the deployed chip at the target voltage.
    println!("training on-device BERRY policy (learns the chip's actual bit errors)...");
    let ondevice_cfg = BerryConfig {
        trainer: scale.trainer_config(),
        mode: LearningMode::on_device(deployment_voltage),
        ..BerryConfig::default()
    };
    let mut env = NavigationEnv::new(env_cfg.clone())?;
    let ondevice = train_berry_with_fault_map(&mut env, &spec, &ondevice_cfg, &mut rng)?;
    let chip_map = ondevice
        .ondevice_fault_map
        .clone()
        .expect("on-device mode produces a persistent fault map");
    println!(
        "  deployed chip exhibits {} faulty bit cells ({:.4} % of the weight memory)",
        chip_map.len(),
        chip_map.realized_ber() * 100.0
    );

    // 2. Offline learning with random fault maps (no knowledge of the chip).
    println!("training offline BERRY policy (random fault maps)...");
    let offline_cfg = BerryConfig {
        trainer: scale.trainer_config(),
        mode: LearningMode::offline(scale.train_ber()),
        ..BerryConfig::default()
    };
    let mut env = NavigationEnv::new(env_cfg.clone())?;
    let offline = train_berry_with_fault_map(&mut env, &spec, &offline_cfg, &mut rng)?;

    // 3. Deploy both on the same chip: apply the chip's fault map to each
    //    policy's quantized weights and fly greedy missions.
    let eval_cfg = FaultEvaluationConfig {
        quant_bits: 8,
        ..scale.evaluation_config()
    };
    let perturber = NetworkPerturber::new(eval_cfg.quant_bits)?;
    let episodes = eval_cfg.fault_maps * eval_cfg.episodes_per_map;
    // Both deployments roll out on the batched lockstep engine: one warm
    // scratch, `lanes` concurrent missions per forward pass.
    let mut infer = InferScratch::new();
    for (label, outcome) in [("on-device", &ondevice), ("offline", &offline)] {
        let deployed = perturber.perturb_with_map(outcome.agent.q_net(), &chip_map)?;
        let env = NavigationEnv::new(env_cfg.clone())?;
        let stats = evaluate_policy_batched(
            &deployed,
            &env,
            episodes,
            eval_cfg.max_steps,
            eval_cfg.lanes,
            rng.next_u64(),
            &mut infer,
        );
        println!(
            "  {label:<10} success on this chip: {:>5.1} %  (mean path {:.1} m)",
            stats.success_rate * 100.0,
            stats.mean_distance
        );
    }
    println!("On-device learning specializes to the chip and typically wins at very low voltage.");
    Ok(())
}
