//! Campaign tour: execute a miniature scenario-grid campaign and walk
//! through what each row reports.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example campaign_tour
//! ```
//!
//! The example runs the 4-cell smoke grid sharded across workers, then
//! re-runs it serially and verifies the two are bitwise identical — the
//! determinism contract the campaign engine is built around.  Set
//! `BERRY_SCALE=quick` to campaign over the paper's full 72-scenario grid
//! instead (expect many minutes of training), or `BERRY_SCALE=paper` for
//! the 216-cell extended disturbance grid.

use berry_core::campaign::{run_campaign, run_campaign_serial, CampaignConfig, CampaignSummary};
use berry_core::experiment::ExperimentScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Same `BERRY_SCALE` parsing as the harness binaries (case-insensitive,
    // `full` aliases `paper`) — except the example defaults to the smoke
    // grid so a bare `cargo run --example campaign_tour` stays fast.
    let scale = std::env::var("BERRY_SCALE")
        .ok()
        .and_then(|s| berry_bench::parse_scale(&s))
        .unwrap_or(ExperimentScale::Smoke);
    let config = CampaignConfig::at_scale(scale);
    let grid = config.grid();
    println!("BERRY campaign tour ({scale:?} scale)");
    println!(
        "1. campaigning over {} scenarios (sharded across workers)...",
        grid.len()
    );
    let rows = run_campaign(&config)?;

    println!("2. what one row carries (cell 0):");
    let first = &rows[0];
    println!("   scenario:  {}", first.scenario);
    println!(
        "   deploy:    {:.2} Vmin -> BER {:.4} %",
        first.voltage_norm,
        first.ber * 100.0
    );
    println!(
        "   nav:       classical {:.1} % vs BERRY {:.1} % success",
        first.classical_nav.success_rate * 100.0,
        first.berry_nav.success_rate * 100.0
    );
    println!(
        "   hardware:  {:.2}x energy saving, {:.1} µJ/inference",
        first.processing.savings_vs_nominal,
        first.processing.energy_per_inference_j * 1e6
    );
    println!(
        "   mission:   {:.1} J per flight, {:.1} missions per charge",
        first.quality_of_flight.flight_energy_j, first.quality_of_flight.num_missions
    );

    if matches!(scale, ExperimentScale::Smoke) {
        println!("3. re-running serially and checking sharded == serial bitwise...");
        let serial = run_campaign_serial(&config)?;
        assert_eq!(rows, serial, "sharded and serial campaigns must agree");
        println!("   identical — scenario seeding makes scheduling invisible.");
    }

    let summary = CampaignSummary::from_rows(&rows);
    println!(
        "summary: {} cells, mean success classical {:.1} % vs BERRY {:.1} %, \
         mean energy saving {:.2}x",
        summary.scenarios,
        summary.mean_classical_success * 100.0,
        summary.mean_berry_success * 100.0,
        summary.mean_energy_savings
    );
    println!("         best cell {} / worst cell {}", summary.best_cell, summary.worst_cell);
    Ok(())
}
