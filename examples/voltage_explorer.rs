//! Voltage explorer: sweep the operating voltage of a trained BERRY policy
//! and locate the energy-optimal point (the paper's Table II analysis).
//!
//! ```text
//! cargo run --release --example voltage_explorer
//! ```

use berry_core::experiment::voltage::{format_table2, optimal_row, table2_voltage_sweep};
use berry_core::experiment::ExperimentScale;
use berry_core::PolicyStore;
use berry_hw::accelerator::Accelerator;

fn scale_from_env() -> ExperimentScale {
    match std::env::var("BERRY_SCALE").unwrap_or_default().as_str() {
        "quick" => ExperimentScale::Quick,
        "paper" => ExperimentScale::Paper,
        _ => ExperimentScale::Smoke,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let store = PolicyStore::in_memory();

    println!("Voltage explorer ({scale:?} scale)");
    println!("campaigning the medium/Crazyflie/C3F2 cell (the pair trains once, on first use)...");

    // Nominal point first (it becomes the baseline row), then a descent
    // toward the near-threshold region.
    let voltages = vec![
        Accelerator::default_edge_accelerator()
            .domain()
            .nominal_voltage_norm(),
        0.86,
        0.80,
        0.77,
        0.73,
        0.68,
        0.64,
    ];
    let rows = table2_voltage_sweep(&store, &voltages, scale, 11)?;
    println!("{}", format_table2(&rows));
    if let Some(best) = optimal_row(&rows) {
        println!(
            "energy-optimal operating point: {:.2} Vmin — {:+.1} % flight energy, {:+.1} % missions, {:.2}x processing savings",
            best.voltage_norm,
            best.flight_energy_change * 100.0,
            best.missions_change * 100.0,
            best.energy_savings
        );
        println!(
            "(the paper finds the optimum at 0.77 Vmin for the Crazyflie in the medium environment)"
        );
    }
    Ok(())
}
