//! Voltage explorer: sweep the operating voltage of a trained BERRY policy
//! and locate the energy-optimal point (the paper's Table II analysis).
//!
//! ```text
//! cargo run --release --example voltage_explorer
//! ```

use berry_core::evaluate::MissionContext;
use berry_core::experiment::voltage::{format_table2, optimal_row, table2_voltage_sweep};
use berry_core::experiment::{train_policy_pair, ExperimentScale};
use berry_uav::world::ObstacleDensity;
use rand::SeedableRng;

fn scale_from_env() -> ExperimentScale {
    match std::env::var("BERRY_SCALE").unwrap_or_default().as_str() {
        "quick" => ExperimentScale::Quick,
        "paper" => ExperimentScale::Paper,
        _ => ExperimentScale::Smoke,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let context = MissionContext::crazyflie_c3f2();

    println!("Voltage explorer ({scale:?} scale)");
    let env_cfg = scale.navigation_config(ObstacleDensity::Medium);
    println!("training BERRY policy...");
    let pair = train_policy_pair(&env_cfg, &scale.default_policy(), scale, &mut rng)?;

    // Nominal point first (it becomes the baseline row), then a descent
    // toward the near-threshold region.
    let voltages = vec![
        context.accelerator.domain().nominal_voltage_norm(),
        0.86,
        0.80,
        0.77,
        0.73,
        0.68,
        0.64,
    ];
    let rows = table2_voltage_sweep(&pair, &context, &voltages, scale, &mut rng)?;
    println!("{}", format_table2(&rows));
    if let Some(best) = optimal_row(&rows) {
        println!(
            "energy-optimal operating point: {:.2} Vmin — {:+.1} % flight energy, {:+.1} % missions, {:.2}x processing savings",
            best.voltage_norm,
            best.flight_energy_change * 100.0,
            best.missions_change * 100.0,
            best.energy_savings
        );
        println!(
            "(the paper finds the optimum at 0.77 Vmin for the Crazyflie in the medium environment)"
        );
    }
    Ok(())
}
