//! Error type unifying every substrate the BERRY pipeline touches.

use std::fmt;

/// Errors produced by the BERRY training, evaluation and experiment code.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// An internal invariant failed at runtime — a panicking training run
    /// caught at the store boundary, an injected failpoint error, a
    /// panicked engine thread.  Cached and reported like any other error,
    /// but distinguishable so callers can tell "you asked for something
    /// impossible" from "the machinery itself broke".
    Internal(String),
    /// An error from the neural-network substrate.
    Nn(berry_nn::NnError),
    /// An error from the bit-error fault models.
    Faults(berry_faults::FaultError),
    /// An error from the hardware (accelerator) models.
    Hw(berry_hw::HwError),
    /// An error from the RL substrate.
    Rl(berry_rl::RlError),
    /// An error from the UAV simulator or flight models.
    Uav(berry_uav::UavError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Internal(msg) => write!(f, "internal error: {msg}"),
            CoreError::Nn(e) => write!(f, "neural-network error: {e}"),
            CoreError::Faults(e) => write!(f, "fault-model error: {e}"),
            CoreError::Hw(e) => write!(f, "hardware-model error: {e}"),
            CoreError::Rl(e) => write!(f, "reinforcement-learning error: {e}"),
            CoreError::Uav(e) => write!(f, "UAV-simulator error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<berry_nn::NnError> for CoreError {
    fn from(e: berry_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<berry_faults::FaultError> for CoreError {
    fn from(e: berry_faults::FaultError) -> Self {
        CoreError::Faults(e)
    }
}

impl From<berry_hw::HwError> for CoreError {
    fn from(e: berry_hw::HwError) -> Self {
        CoreError::Hw(e)
    }
}

impl From<berry_rl::RlError> for CoreError {
    fn from(e: berry_rl::RlError) -> Self {
        CoreError::Rl(e)
    }
}

impl From<berry_uav::UavError> for CoreError {
    fn from(e: berry_uav::UavError) -> Self {
        CoreError::Uav(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<CoreError> = vec![
            CoreError::InvalidConfig("x".into()),
            CoreError::Internal("y".into()),
            berry_nn::NnError::InvalidArgument("a".into()).into(),
            berry_faults::FaultError::InvalidGeometry("b".into()).into(),
            berry_hw::HwError::InvalidParameter("c".into()).into(),
            berry_rl::RlError::InvalidConfig("d".into()).into(),
            berry_uav::UavError::InvalidConfig("e".into()).into(),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
