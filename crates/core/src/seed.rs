//! The seed registry: every deterministic seed-derivation family in the
//! workspace, in one audited module.
//!
//! All reproducibility guarantees flow through these mixers — parallel
//! and serial evaluation paths agree bitwise *because* they derive each
//! RNG seed with exactly one of these functions. The `seed-registry`
//! lint (see `berry-lint`) forbids the mixing constants below from
//! appearing anywhere else, so a new derivation family cannot be
//! hand-rolled in a leaf crate and silently collide with an existing
//! one.
//!
//! Four disjoint families are derived from the shared SplitMix64
//! finalizer by giving each a distinct add-multiplier/offset pre-mix:
//!
//! | family             | function                         | pre-mix (`mult`, `offset`)        |
//! |--------------------|----------------------------------|-----------------------------------|
//! | fault-map          | [`fault_map_seed`]               | `GOLDEN_GAMMA`, `GOLDEN_GAMMA`    |
//! | episode            | `berry_rl::vecenv::episode_seed` | `MIX1`, `MIX2`                    |
//! | scenario           | [`scenario_seed`]                | `MIX2`, `MIX1`                    |
//! | pair (store)       | [`pair_seed`]                    | `PAIR_MULT`, `PAIR_OFFSET`        |
//!
//! `episode_seed` lives in `berry-rl` because the dependency arrow
//! points the other way (`berry-core` depends on `berry-rl`), but its
//! constants are registered here and its site carries an audited
//! `lint.toml` exception. `tests/parallel_determinism.rs` checks the
//! cross-family no-collision property.

/// SplitMix64 increment ("golden gamma"): `⌊2⁶⁴/φ⌋`, odd.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
/// First SplitMix64 finalizer multiplier (Stafford mix13).
pub const MIX1: u64 = 0xBF58_476D_1CE4_E5B9;
/// Second SplitMix64 finalizer multiplier (Stafford mix13).
pub const MIX2: u64 = 0x94D0_49BB_1331_11EB;
/// Pair-family pre-mix multiplier (distinct from every other family).
pub const PAIR_MULT: u64 = 0xD6E8_FEB8_6659_FD93;
/// Pair-family pre-mix offset.
pub const PAIR_OFFSET: u64 = 0x2545_F491_4F6C_DD1D;
/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The SplitMix64 finalizer over `seed + GOLDEN_GAMMA` — the single
/// generic mixer behind every family, and the deterministic draw used
/// directly by failpoint probability triggers and client backoff jitter.
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(MIX1);
    z = (z ^ (z >> 27)).wrapping_mul(MIX2);
    z ^ (z >> 31)
}

/// Derives the RNG seed of fault map `map_index` from an evaluation's
/// base seed (a SplitMix64-style mix, so neighbouring indices produce
/// unrelated streams).
///
/// Both the parallel and the serial evaluation paths seed each per-map
/// RNG with exactly this function, which is what makes their statistics
/// bitwise identical for a given base seed.
#[must_use]
pub fn fault_map_seed(base_seed: u64, map_index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(map_index.wrapping_mul(GOLDEN_GAMMA))
        .wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(MIX1);
    z = (z ^ (z >> 27)).wrapping_mul(MIX2);
    z ^ (z >> 31)
}

/// Derives the base seed of campaign grid cell `grid_index` (one seed
/// per scenario, so the grid can be evaluated in any order or resumed).
///
/// The add-multiplier/offset pair is distinct from both
/// [`fault_map_seed`] and `berry_rl::vecenv::episode_seed`, keeping the
/// derivation families disjoint.
#[must_use]
pub fn scenario_seed(base_seed: u64, grid_index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(grid_index.wrapping_mul(MIX2))
        .wrapping_add(MIX1);
    z = (z ^ (z >> 30)).wrapping_mul(MIX1);
    z = (z ^ (z >> 27)).wrapping_mul(MIX2);
    z ^ (z >> 31)
}

/// Derives a pair's training seed from a campaign base seed and the
/// request's seedless fingerprint hash.
///
/// A SplitMix64-style mix whose add-multiplier/offset pair is distinct
/// from the fault-map, episode and scenario families, keeping all four
/// derivation families disjoint (`tests/parallel_determinism.rs` checks
/// the no-collision property).
#[must_use]
pub fn pair_seed(base_seed: u64, fingerprint_hash: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(fingerprint_hash.wrapping_mul(PAIR_MULT))
        .wrapping_add(PAIR_OFFSET);
    z = (z ^ (z >> 30)).wrapping_mul(MIX1);
    z = (z ^ (z >> 27)).wrapping_mul(MIX2);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash of a canonical fingerprint string.
#[must_use]
pub fn fnv1a64(s: &str) -> u64 {
    fnv1a64_bytes(s.as_bytes())
}

/// FNV-1a 64-bit hash of raw bytes — the pair record's integrity seal.
#[must_use]
pub fn fnv1a64_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer pins: computed independently from the published
    // SplitMix64/FNV-1a reference algorithms. A change to any value here
    // re-seeds every derived RNG in the workspace and invalidates every
    // golden snapshot — these must never move.
    #[test]
    fn splitmix64_matches_reference_vectors() {
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
        assert_eq!(splitmix64(0xDEAD_BEEF), 0x4adf_b90f_68c9_eb9b);
    }

    #[test]
    fn family_mixers_are_pinned() {
        assert_eq!(fault_map_seed(0, 0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(fault_map_seed(2023, 41), 0x402d_fff1_198e_c205);
        assert_eq!(scenario_seed(0, 0), 0xf2fe_a582_3ed3_a667);
        assert_eq!(scenario_seed(2023, 41), 0xe3ee_da42_5605_a4b2);
        assert_eq!(pair_seed(0, 0), 0x952f_14f1_e8dd_c491);
        assert_eq!(pair_seed(2023, 0xDEAD_BEEF), 0x6857_877b_c11a_b51a);
    }

    #[test]
    fn fnv1a64_is_pinned() {
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("berry"), 0xf89e_635e_9b69_b10f);
        assert_eq!(fnv1a64_bytes(b"berry"), fnv1a64("berry"));
    }

    #[test]
    fn index_zero_of_every_family_is_distinct() {
        // The whole point of disjoint pre-mixes: the same (base, index)
        // never produces the same seed across two families.
        let base = 2023;
        let a = fault_map_seed(base, 0);
        let b = scenario_seed(base, 0);
        let c = pair_seed(base, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Not an accident, an identity: the fault-map family at index 0
        // degenerates to the raw mixer (both finalize base + gamma).
        assert_eq!(splitmix64(base), fault_map_seed(base, 0));
    }
}
