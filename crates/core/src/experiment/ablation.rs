//! Ablation of BERRY's dual-pass gradient (design-choice study).
//!
//! Algorithm 1 updates with the *sum* of the clean gradient `∆` and the
//! perturbed gradient `˜∆`.  Two natural ablations bracket that choice:
//!
//! * **clean-only** — ordinary DQN (the classical baseline); robust to
//!   nothing but the quantization noise floor;
//! * **perturbed-only** — training exclusively through the perturbed
//!   network, which tracks the faults seen during training but degrades
//!   error-free accuracy and destabilizes learning at higher injection
//!   rates;
//! * **dual-pass (BERRY)** — the paper's choice, keeping error-free accuracy
//!   while buying robustness.

use crate::evaluate::{evaluate_error_free_seeded, evaluate_under_faults_seeded};
use crate::experiment::{format_table, ExperimentScale};
use crate::perturb::NetworkPerturber;
use crate::robust::{BerryConfig, LearningMode};
use crate::store::{PairRequest, PolicyStore};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_nn::network::Sequential;
use berry_rl::dqn::{accumulate_td_gradients, DqnAgent};
use berry_rl::env::{Environment, Transition};
use berry_rl::replay::ReplayBuffer;
use berry_uav::env::NavigationEnv;
use berry_uav::world::ObstacleDensity;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// The gradient-composition variants compared by the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradientMode {
    /// Standard DQN: clean gradient only.
    CleanOnly,
    /// Train exclusively through the bit-error-perturbed network.
    PerturbedOnly,
    /// BERRY's dual-pass sum of clean and perturbed gradients.
    DualPass,
}

impl GradientMode {
    /// All variants.
    pub fn all() -> [GradientMode; 3] {
        [
            GradientMode::CleanOnly,
            GradientMode::PerturbedOnly,
            GradientMode::DualPass,
        ]
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            GradientMode::CleanOnly => "clean-only",
            GradientMode::PerturbedOnly => "perturbed-only",
            GradientMode::DualPass => "dual-pass (BERRY)",
        }
    }
}

/// One row of the ablation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which gradient composition was trained.
    pub mode: String,
    /// Error-free success rate (percent).
    pub error_free_success_pct: f64,
    /// Success rate (percent) under bit errors at the evaluation rate.
    pub faulty_success_pct: f64,
}

/// Trains a policy with a perturbed-only gradient (the middle ablation).
///
/// # Errors
///
/// Returns an error if training fails.
fn train_perturbed_only<E: Environment, R: Rng>(
    env: &mut E,
    config: &BerryConfig,
    train_ber: f64,
    rng: &mut R,
) -> Result<Sequential> {
    let spec = berry_rl::policy::QNetworkSpec::mlp(vec![32]);
    let mut agent = DqnAgent::new(
        &spec,
        &env.observation_shape(),
        env.num_actions(),
        config.trainer.dqn,
        rng,
    )?;
    let perturber = NetworkPerturber::new(config.quant_bits)?;
    let chip = ChipProfile::generic();
    let mut buffer = ReplayBuffer::new(config.trainer.buffer_capacity)?;
    let mut env_steps = 0u64;
    let observation_shape = agent.observation_shape().to_vec();
    let num_actions = agent.num_actions();
    let gamma = agent.config().gamma;

    for _ in 0..config.trainer.episodes {
        let mut obs = env.reset(rng);
        for _ in 0..config.trainer.max_steps_per_episode {
            let epsilon = config.trainer.epsilon.value(env_steps);
            let action = agent.act_epsilon(&obs, epsilon, rng);
            let outcome = env.step(action, rng);
            let terminal = outcome.is_terminal();
            buffer.push(Transition {
                state: obs.clone(),
                action,
                reward: outcome.reward,
                next_state: outcome.observation.clone(),
                done: terminal,
            });
            obs = outcome.observation;
            env_steps += 1;
            let ready = buffer.len()
                >= config
                    .trainer
                    .learning_starts
                    .max(config.trainer.dqn.batch_size);
            if ready && env_steps.is_multiple_of(config.trainer.train_every as u64) {
                let batch = buffer.sample(config.trainer.dqn.batch_size, rng)?;
                let map = perturber.sample_fault_map(agent.q_net(), &chip, train_ber, rng)?;
                let mut q_perturbed = perturber.perturb_with_map(agent.q_net(), &map)?;
                let mut t_perturbed = perturber.perturb_with_map(agent.target_net(), &map)?;
                q_perturbed.zero_grad();
                accumulate_td_gradients(
                    &mut q_perturbed,
                    &mut t_perturbed,
                    &batch,
                    &observation_shape,
                    num_actions,
                    gamma,
                )?;
                agent.q_net_mut().zero_grad();
                agent
                    .q_net_mut()
                    .add_gradients_from(&q_perturbed, 1.0)
                    .map_err(crate::CoreError::from)?;
                agent.apply_accumulated_gradients();
            }
            if terminal {
                break;
            }
        }
    }
    Ok(agent.q_net().clone())
}

/// Runs the gradient-composition ablation at a given evaluation bit-error
/// rate (fraction).
///
/// The clean-only and dual-pass variants *are* the Classical/BERRY pair of
/// one store request (trained under identical hyper-parameters), so the
/// ablation shares its training with every other artefact of the same base
/// seed; only the perturbed-only middle variant — which no other
/// experiment uses — trains its bespoke loop here.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn gradient_ablation(
    store: &PolicyStore,
    scale: ExperimentScale,
    eval_ber: f64,
    base_seed: u64,
) -> Result<Vec<AblationRow>> {
    let eval_cfg = scale.evaluation_config();
    let env_cfg = scale.navigation_config(ObstacleDensity::Sparse);
    let trainer = scale.trainer_config();
    let chip = ChipProfile::generic();
    // The ablation uses the MLP policy at every scale: it isolates the
    // gradient-composition question from the architecture question and keeps
    // the three training runs cheap.
    let spec = berry_rl::policy::QNetworkSpec::mlp(vec![32]);

    let request = PairRequest::new(
        spec.clone(),
        env_cfg.clone(),
        trainer.clone(),
        LearningMode::offline(scale.train_ber()),
        chip.clone(),
        8,
        base_seed,
    );
    let pair = store.get_or_train(&request)?;

    // Per-variant seeds, drawn up front in a fixed order.
    let mut seed_rng = StdRng::seed_from_u64(base_seed);
    let perturbed_train_seed = seed_rng.next_u64();
    let eval_seeds: Vec<(u64, u64)> = GradientMode::all()
        .iter()
        .map(|_| (seed_rng.next_u64(), seed_rng.next_u64()))
        .collect();

    let mut rows = Vec::new();
    for (mode, (clean_seed, faulty_seed)) in GradientMode::all().into_iter().zip(eval_seeds) {
        let policy: Sequential = match mode {
            GradientMode::CleanOnly => pair.classical.clone(),
            GradientMode::PerturbedOnly => {
                let config = BerryConfig {
                    trainer: trainer.clone(),
                    mode: LearningMode::offline(scale.train_ber()),
                    ..BerryConfig::default()
                };
                let mut env = NavigationEnv::new(env_cfg.clone())?;
                let mut train_rng = StdRng::seed_from_u64(perturbed_train_seed);
                train_perturbed_only(&mut env, &config, scale.train_ber(), &mut train_rng)?
            }
            GradientMode::DualPass => pair.berry.clone(),
        };
        let env = NavigationEnv::new(env_cfg.clone())?;
        let clean = evaluate_error_free_seeded(&policy, &env, &eval_cfg, clean_seed)?;
        let faulty =
            evaluate_under_faults_seeded(&policy, &env, &chip, eval_ber, &eval_cfg, faulty_seed)?;
        rows.push(AblationRow {
            mode: mode.label().to_string(),
            error_free_success_pct: clean.success_rate * 100.0,
            faulty_success_pct: faulty.success_rate * 100.0,
        });
    }
    Ok(rows)
}

/// Formats the ablation table.
pub fn format_ablation(rows: &[AblationRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.1}", r.error_free_success_pct),
                format!("{:.1}", r.faulty_success_pct),
            ]
        })
        .collect();
    format_table(&["Gradient", "Error-Free %", "Under Faults %"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_produces_all_three_modes() {
        let store = PolicyStore::in_memory();
        let rows = gradient_ablation(&store, ExperimentScale::Smoke, 0.005, 0).unwrap();
        // Clean-only + dual-pass come from one cached pair; only the
        // perturbed-only variant trains outside the store.
        assert_eq!(store.stats().trained, 1);
        assert_eq!(rows.len(), 3);
        let labels: Vec<&str> = rows.iter().map(|r| r.mode.as_str()).collect();
        assert!(labels.contains(&"clean-only"));
        assert!(labels.contains(&"perturbed-only"));
        assert!(labels.contains(&"dual-pass (BERRY)"));
        for r in &rows {
            assert!((0.0..=100.0).contains(&r.error_free_success_pct));
            assert!((0.0..=100.0).contains(&r.faulty_success_pct));
        }
        let text = format_ablation(&rows);
        assert!(text.contains("Gradient"));
    }

    #[test]
    fn gradient_mode_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            GradientMode::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
