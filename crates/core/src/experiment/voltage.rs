//! The Table II voltage sweep: operating and system efficiency.
//!
//! For every operating voltage the paper reports bit-error rate, processing
//! energy savings, navigation success rate, flight distance, flight time,
//! flight energy (with its saving vs 1 V) and the number of missions per
//! battery charge (with its improvement vs 1 V).  This module regenerates
//! that table as a campaign request: one grid cell (medium density,
//! Crazyflie, C3F2) with one mission-level [`EvalAxis`] per voltage row,
//! pulling the BERRY policy from the shared [`PolicyStore`].

use crate::campaign::{run_axes_grid_in, AxisResult, EvalAxis, OperatingPoint, PolicyRole};
use crate::error::CoreError;
use crate::experiment::{artifact_scenario, format_table, ExperimentScale};
use crate::store::PolicyStore;
use crate::Result;
use berry_uav::platform::UavPlatform;
use berry_uav::world::ObstacleDensity;
use serde::{Deserialize, Serialize};

/// The normalized voltages of the paper's Table II rows (plus the nominal
/// 1 V point expressed as 1.43 Vmin for a 0.70 V-Vmin part).
pub fn table2_default_voltages() -> Vec<f64> {
    vec![
        1.4286, 0.86, 0.84, 0.83, 0.81, 0.80, 0.79, 0.77, 0.76, 0.74, 0.73, 0.71, 0.68, 0.64,
    ]
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Normalized operating voltage (Vmin units).
    pub voltage_norm: f64,
    /// Bit error rate in percent.
    pub ber_percent: f64,
    /// Processing energy savings vs nominal 1 V operation.
    pub energy_savings: f64,
    /// Navigation success rate in percent.
    pub success_pct: f64,
    /// Flight distance in metres.
    pub flight_distance_m: f64,
    /// Flight time in seconds.
    pub flight_time_s: f64,
    /// Flight energy in joules.
    pub flight_energy_j: f64,
    /// Flight-energy change vs the nominal row (negative = saving).
    pub flight_energy_change: f64,
    /// Number of missions per battery charge.
    pub num_missions: f64,
    /// Missions change vs the nominal row (positive = improvement).
    pub missions_change: f64,
}

fn row_from_axis(result: &AxisResult, baseline: &AxisResult) -> Result<Table2Row> {
    let qof = super::qof_of(result)?;
    let base_qof = super::qof_of(baseline)?;
    let processing = result.processing.as_ref().ok_or_else(|| {
        CoreError::Internal(format!(
            "axis `{}` carries no processing report (not a mission axis?)",
            result.label
        ))
    })?;
    let voltage_norm = result.voltage_norm.ok_or_else(|| {
        CoreError::Internal(format!(
            "axis `{}` carries no resolved voltage (not a mission axis?)",
            result.label
        ))
    })?;
    Ok(Table2Row {
        voltage_norm,
        ber_percent: result.ber * 100.0,
        energy_savings: processing.savings_vs_nominal,
        success_pct: result.nav.success_rate * 100.0,
        flight_distance_m: qof.flight_distance_m,
        flight_time_s: qof.flight_time_s,
        flight_energy_j: qof.flight_energy_j,
        flight_energy_change: qof.flight_energy_change_vs(base_qof),
        num_missions: qof.num_missions,
        missions_change: qof.missions_change_vs(base_qof),
    })
}

/// Runs the Table II voltage sweep for the BERRY policy of the standard
/// medium/Crazyflie/C3F2 cell.
///
/// The first voltage in `voltages_norm` is treated as the baseline row
/// (nominal operation) against which the percentage changes are computed.
///
/// # Errors
///
/// Returns an error if training or evaluation fails or the voltage list is
/// empty.
pub fn table2_voltage_sweep(
    store: &PolicyStore,
    voltages_norm: &[f64],
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<Table2Row>> {
    if voltages_norm.is_empty() {
        return Err(crate::CoreError::InvalidConfig(
            "table 2 needs at least one voltage".into(),
        ));
    }
    let grid = vec![artifact_scenario(
        ObstacleDensity::Medium,
        &UavPlatform::crazyflie(),
        "C3F2",
    )];
    let axes: Vec<EvalAxis> = voltages_norm
        .iter()
        .map(|&v| {
            EvalAxis::new(
                format!("BERRY:v={v}"),
                PolicyRole::Berry,
                OperatingPoint::MissionAtVoltage(v),
            )
        })
        .collect();
    let rows = run_axes_grid_in(&grid, scale, base_seed, store, &axes)?;
    let results = &rows[0].axis_results;
    let baseline = &results[0];
    results.iter().map(|r| row_from_axis(r, baseline)).collect()
}

/// Finds the row with the lowest flight energy — the "optimal voltage" the
/// paper highlights (0.77 Vmin for the Crazyflie / medium environment).
pub fn optimal_row(rows: &[Table2Row]) -> Option<&Table2Row> {
    // total_cmp agrees with partial_cmp on every finite value (flight
    // energies are), and cannot panic.
    rows.iter()
        .min_by(|a, b| a.flight_energy_j.total_cmp(&b.flight_energy_j))
}

/// Formats Table II like the paper.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.voltage_norm),
                format!("{:.3e}", r.ber_percent),
                format!("{:.2}x", r.energy_savings),
                format!("{:.1}", r.success_pct),
                format!("{:.2}", r.flight_distance_m),
                format!("{:.2}", r.flight_time_s),
                format!("{:.2}", r.flight_energy_j),
                format!("{:+.2}%", r.flight_energy_change * 100.0),
                format!("{:.2}", r.num_missions),
                format!("{:+.2}%", r.missions_change * 100.0),
            ]
        })
        .collect();
    format_table(
        &[
            "V (Vmin)",
            "BER %",
            "E Savings",
            "Success %",
            "Dist (m)",
            "Time (s)",
            "E_flight (J)",
            "dE_flight",
            "Missions",
            "dMissions",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_sweep_produces_one_row_per_voltage() {
        let store = PolicyStore::in_memory();
        let voltages = vec![1.4286, 0.80, 0.70];
        let rows =
            table2_voltage_sweep(&store, &voltages, ExperimentScale::Smoke, 0).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(store.stats().trained, 1);
        // The baseline row has zero change by definition.
        assert!(rows[0].flight_energy_change.abs() < 1e-12);
        assert!(rows[0].missions_change.abs() < 1e-12);
        // BER grows as voltage drops.
        assert!(rows[2].ber_percent > rows[1].ber_percent);
        assert!(rows[1].ber_percent > rows[0].ber_percent);
        // Energy savings grow as voltage drops.
        assert!(rows[2].energy_savings > rows[1].energy_savings);
        let text = format_table2(&rows);
        assert!(text.contains("E_flight"));
        assert!(optimal_row(&rows).is_some());
    }

    #[test]
    fn empty_voltage_list_is_rejected() {
        let store = PolicyStore::in_memory();
        assert!(table2_voltage_sweep(&store, &[], ExperimentScale::Smoke, 1).is_err());
        // The failed request never trained anything.
        assert_eq!(store.stats().trained, 0);
        assert!(optimal_row(&[]).is_none());
    }

    #[test]
    fn default_voltages_match_paper_rows() {
        let v = table2_default_voltages();
        assert_eq!(v.len(), 14);
        assert!(v.contains(&0.77));
        assert!(v.contains(&0.64));
        // First entry is the nominal 1 V point.
        assert!(v[0] > 1.4);
    }
}
