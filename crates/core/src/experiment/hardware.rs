//! Hardware-only experiments: paper Fig. 2 (voltage → BER / SRAM energy)
//! and Figs. 1 & 6 (the cyber-physical voltage → velocity chain).
//!
//! These sweeps involve no learning, so they run in milliseconds at any
//! scale and are also exercised directly by the Criterion benches.

use crate::Result;
use berry_faults::ber::VoltageBerModel;
use berry_hw::accelerator::Accelerator;
use berry_hw::workload::NetworkWorkload;
use berry_uav::physics::{FlightPhysics, PhysicsConfig};
use berry_uav::platform::UavPlatform;
use serde::{Deserialize, Serialize};

/// One point of the Fig. 2 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Normalized operating voltage (Vmin units).
    pub voltage_norm: f64,
    /// Bit error rate in percent.
    pub ber_percent: f64,
    /// SRAM energy per access in nanojoules.
    pub sram_energy_nj: f64,
}

/// Regenerates the Fig. 2 curve over a voltage sweep.
///
/// # Errors
///
/// Returns an error if a voltage falls outside the supported model range.
pub fn fig2_voltage_sweep(voltages_norm: &[f64]) -> Result<Vec<Fig2Row>> {
    let ber_model = VoltageBerModel::from_table2();
    let accel = Accelerator::default_edge_accelerator();
    let mut rows = Vec::with_capacity(voltages_norm.len());
    for &v in voltages_norm {
        rows.push(Fig2Row {
            voltage_norm: v,
            ber_percent: ber_model.ber_percent(v)?,
            sram_energy_nj: accel.sram().energy_per_access_j(v)? * 1.0e9,
        });
    }
    Ok(rows)
}

/// The default voltage grid used for Fig. 2 (0.64–1.0 Vmin, the range the
/// paper's figure covers).
pub fn fig2_default_voltages() -> Vec<f64> {
    (0..=18).map(|i| 0.64 + i as f64 * 0.02).collect()
}

/// One point of the Fig. 6 / Fig. 1 cyber-physical chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Normalized operating voltage (Vmin units).
    pub voltage_norm: f64,
    /// Thermal design power at this voltage (watts).
    pub tdp_w: f64,
    /// Required heatsink mass (grams).
    pub heatsink_mass_g: f64,
    /// Total payload carried (grams).
    pub payload_g: f64,
    /// Achievable acceleration (m/s²).
    pub acceleration_ms2: f64,
    /// Maximum safe velocity (m/s).
    pub max_safe_velocity_ms: f64,
    /// Average mission velocity (m/s).
    pub mission_velocity_ms: f64,
}

/// Regenerates the Fig. 6 chain for a platform over a voltage sweep.
///
/// # Errors
///
/// Returns an error for out-of-range voltages or an overloaded platform.
pub fn fig6_cyber_physical_chain(
    platform: &UavPlatform,
    voltages_norm: &[f64],
) -> Result<Vec<Fig6Row>> {
    let accel = Accelerator::default_edge_accelerator();
    let physics = FlightPhysics::new(platform.clone(), PhysicsConfig::default())?;
    let workload = NetworkWorkload::c3f2();
    let mut rows = Vec::with_capacity(voltages_norm.len());
    for &v in voltages_norm {
        let report = accel.evaluate(&workload, v)?;
        let condition = physics.condition(report.heatsink_mass_g)?;
        rows.push(Fig6Row {
            voltage_norm: v,
            tdp_w: report.tdp_w,
            heatsink_mass_g: report.heatsink_mass_g,
            payload_g: condition.payload_g,
            acceleration_ms2: condition.acceleration_ms2,
            max_safe_velocity_ms: condition.max_safe_velocity_ms,
            mission_velocity_ms: condition.mission_velocity_ms,
        });
    }
    Ok(rows)
}

/// The default voltage grid for Fig. 6 (0.70–1.43 Vmin, i.e. up to the 1 V
/// nominal point of a 0.70 V-Vmin part).
pub fn fig6_default_voltages() -> Vec<f64> {
    (0..=10).map(|i| 0.70 + i as f64 * 0.073).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_ber_grows_and_energy_falls_as_voltage_drops() {
        let rows = fig2_voltage_sweep(&fig2_default_voltages()).unwrap();
        assert!(rows.len() > 10);
        for pair in rows.windows(2) {
            // Voltage increases along the sweep.
            assert!(pair[1].voltage_norm > pair[0].voltage_norm);
            // BER decreases (or stays zero), SRAM energy increases.
            assert!(pair[1].ber_percent <= pair[0].ber_percent + 1e-12);
            assert!(pair[1].sram_energy_nj >= pair[0].sram_energy_nj - 1e-12);
        }
        // End points bracket the paper's reported magnitudes.
        assert!(rows.first().unwrap().ber_percent > 1.0);
        assert!(rows.last().unwrap().ber_percent < 1e-6);
    }

    #[test]
    fn fig6_lower_voltage_means_lighter_and_faster() {
        let rows =
            fig6_cyber_physical_chain(&UavPlatform::crazyflie(), &fig6_default_voltages()).unwrap();
        let first = rows.first().unwrap(); // lowest voltage
        let last = rows.last().unwrap(); // highest voltage (≈ 1 V nominal)
        assert!(first.heatsink_mass_g < last.heatsink_mass_g);
        assert!(first.tdp_w < last.tdp_w);
        assert!(first.acceleration_ms2 > last.acceleration_ms2);
        assert!(first.max_safe_velocity_ms > last.max_safe_velocity_ms);
        // Paper Fig. 6 anchors: ~1.2 g heatsink near 0.79 Vmin and ~3.3 g near 1.28 Vmin.
        let near_079 = rows
            .iter()
            .min_by(|a, b| {
                (a.voltage_norm - 0.79)
                    .abs()
                    .partial_cmp(&(b.voltage_norm - 0.79).abs())
                    .unwrap()
            })
            .unwrap();
        assert!((near_079.heatsink_mass_g - 1.22).abs() < 0.35);
    }

    #[test]
    fn fig6_out_of_range_voltage_is_rejected() {
        assert!(fig6_cyber_physical_chain(&UavPlatform::crazyflie(), &[3.0]).is_err());
        assert!(fig2_voltage_sweep(&[0.1]).is_err());
    }
}
