//! Generalization experiments: paper Fig. 5 (environments), Fig. 7 (UAV
//! platforms and policy architectures) and Table III (profiled chips).

use crate::evaluate::{
    evaluate_mission, evaluate_mission_seeded, evaluate_under_faults, MissionContext,
};
use crate::experiment::{format_table, train_policy_pair, ExperimentScale, PolicyPair};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_rl::policy::QNetworkSpec;
use berry_uav::env::NavigationEnv;
use berry_uav::world::ObstacleDensity;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One (environment, scheme) row of the Fig. 5 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Obstacle density of the environment.
    pub density: String,
    /// "Classical" or "BERRY".
    pub scheme: String,
    /// Success rate (percent) at p = 0.01 %.
    pub success_pct_low_ber: f64,
    /// Success rate (percent) at p = 0.1 %.
    pub success_pct_high_ber: f64,
    /// Single-mission flight energy (J) at the scheme's best low-voltage
    /// operating point.
    pub flight_energy_j: f64,
    /// Missions per battery charge at that operating point.
    pub num_missions: f64,
}

/// Runs the Fig. 5 environment study: trains a Classical/BERRY pair per
/// obstacle density and evaluates robustness and mission efficiency.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn fig5_environment_study<R: Rng>(
    scale: ExperimentScale,
    rng: &mut R,
) -> Result<Vec<Fig5Row>> {
    let eval_cfg = scale.evaluation_config();
    let context = MissionContext::crazyflie_c3f2();
    let mut rows = Vec::new();
    for density in ObstacleDensity::all() {
        let env_cfg = scale.navigation_config(density);
        let pair = train_policy_pair(&env_cfg, &scale.default_policy(), scale, rng)?;
        // Operating points: the paper finds sparse environments tolerate a
        // lower voltage (0.76 Vmin) than dense ones (0.80 Vmin).
        let eval_voltage = match density {
            ObstacleDensity::Sparse => 0.76,
            ObstacleDensity::Medium => 0.77,
            ObstacleDensity::Dense => 0.80,
        };
        for (name, policy) in [("Classical", &pair.classical), ("BERRY", &pair.berry)] {
            let env = NavigationEnv::new(env_cfg.clone())?;
            let low = evaluate_under_faults(policy, &env, &context.chip, 1e-4, &eval_cfg, rng)?;
            let high =
                evaluate_under_faults(policy, &env, &context.chip, 1e-3, &eval_cfg, rng)?;
            let mission =
                evaluate_mission(policy, &env, &context, eval_voltage, &eval_cfg, rng)?;
            rows.push(Fig5Row {
                density: density.label().to_string(),
                scheme: name.to_string(),
                success_pct_low_ber: low.success_rate * 100.0,
                success_pct_high_ber: high.success_rate * 100.0,
                flight_energy_j: mission.quality_of_flight.flight_energy_j,
                num_missions: mission.quality_of_flight.num_missions,
            });
        }
    }
    Ok(rows)
}

/// Formats the Fig. 5 study as a table.
pub fn format_fig5(rows: &[Fig5Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.density.clone(),
                r.scheme.clone(),
                format!("{:.1}", r.success_pct_low_ber),
                format!("{:.1}", r.success_pct_high_ber),
                format!("{:.1}", r.flight_energy_j),
                format!("{:.1}", r.num_missions),
            ]
        })
        .collect();
    format_table(
        &[
            "Environment",
            "Scheme",
            "Succ% p=0.01",
            "Succ% p=0.1",
            "E_flight (J)",
            "Missions",
        ],
        &body,
    )
}

/// One row of the Fig. 7 platform/architecture study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// UAV platform name.
    pub platform: String,
    /// Policy architecture name.
    pub policy: String,
    /// Rotor share of total power at nominal voltage (percent).
    pub rotor_power_pct: f64,
    /// Compute share of total power at nominal voltage (percent).
    pub compute_power_pct: f64,
    /// BERRY flight-energy saving vs nominal operation (percent, positive =
    /// saving).
    pub flight_energy_saving_pct: f64,
    /// BERRY missions improvement vs nominal operation (percent).
    pub missions_improvement_pct: f64,
}

/// Runs the Fig. 7 platform/architecture study.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn fig7_platform_study<R: Rng>(scale: ExperimentScale, rng: &mut R) -> Result<Vec<Fig7Row>> {
    let eval_cfg = scale.evaluation_config();
    // (context, policy architecture used for *navigation training*)
    let cases: Vec<(MissionContext, QNetworkSpec)> = vec![
        (MissionContext::crazyflie_c3f2(), scale.default_policy()),
        (MissionContext::tello_c3f2(), scale.default_policy()),
        (
            MissionContext::tello_c5f4(),
            match scale {
                ExperimentScale::Smoke => scale.default_policy(),
                _ => QNetworkSpec::C5F4,
            },
        ),
    ];
    let env_cfg = scale.navigation_config(ObstacleDensity::Medium);
    let mut rows = Vec::new();
    for (context, spec) in cases {
        let pair = train_policy_pair(&env_cfg, &spec, scale, rng)?;
        let nominal_v = context.accelerator.domain().nominal_voltage_norm();
        let env = NavigationEnv::new(env_cfg.clone())?;
        let nominal = evaluate_mission(&pair.berry, &env, &context, nominal_v, &eval_cfg, rng)?;
        let low = evaluate_mission(&pair.berry, &env, &context, 0.77, &eval_cfg, rng)?;
        let rotor_w = nominal.quality_of_flight.rotor_power_w;
        let compute_w = nominal.quality_of_flight.compute_power_w;
        let total = rotor_w + compute_w;
        rows.push(Fig7Row {
            platform: context.platform.name().to_string(),
            policy: context.workload.name().to_string(),
            rotor_power_pct: 100.0 * rotor_w / total,
            compute_power_pct: 100.0 * compute_w / total,
            flight_energy_saving_pct: -100.0
                * low
                    .quality_of_flight
                    .flight_energy_change_vs(&nominal.quality_of_flight),
            missions_improvement_pct: 100.0
                * low
                    .quality_of_flight
                    .missions_change_vs(&nominal.quality_of_flight),
        });
    }
    Ok(rows)
}

/// Formats the Fig. 7 table like the paper's inset table.
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                r.policy.clone(),
                format!("{:.1}%", r.rotor_power_pct),
                format!("{:.1}%", r.compute_power_pct),
                format!("{:.2}%", r.flight_energy_saving_pct),
                format!("{:.2}%", r.missions_improvement_pct),
            ]
        })
        .collect();
    format_table(
        &[
            "UAV",
            "Policy",
            "Rotor Power",
            "Compute Power",
            "Flight Energy Saving",
            "#Missions Gain",
        ],
        &body,
    )
}

/// One row of the Table III profiled-chip study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Chip profile name.
    pub chip: String,
    /// Bit error rate (percent) evaluated.
    pub ber_percent: f64,
    /// Success rate of the BERRY policy (percent).
    pub success_pct: f64,
    /// Flight energy (J) at the voltage matching this BER.
    pub flight_energy_j: f64,
}

/// Runs the Table III chip-generalization study: a BERRY policy trained at
/// p = 0.5 % on the generic chip is evaluated on other chips' fault
/// patterns at rates both below and above the training rate.
///
/// # Errors
///
/// Returns an error if evaluation fails.
pub fn table3_chip_study<R: Rng>(
    pair: &PolicyPair,
    scale: ExperimentScale,
    rng: &mut R,
) -> Result<Vec<Table3Row>> {
    let eval_cfg = scale.evaluation_config();
    // Paper Table III: chip 1 (random) at p = 0.16 % / 0.74 %, chip 2
    // (column-aligned) at p = 0.067 % / 0.32 %.
    let cases = [
        (ChipProfile::chip1_random(), 0.16),
        (ChipProfile::chip1_random(), 0.74),
        (ChipProfile::chip2_column_aligned(), 0.067),
        (ChipProfile::chip2_column_aligned(), 0.32),
    ];
    let env_proto = NavigationEnv::new(pair.env_config.clone())?;
    let seeded: Vec<((ChipProfile, f64), u64)> = cases
        .into_iter()
        .map(|case| (case, rng.next_u64()))
        .collect();
    seeded
        .into_par_iter()
        .map(|((chip, ber_pct), seed)| {
            let context = MissionContext {
                chip: chip.clone(),
                ..MissionContext::crazyflie_c3f2()
            };
            let voltage = chip.ber_model().min_voltage_for_ber(ber_pct / 100.0)?.max(0.62);
            let mission =
                evaluate_mission_seeded(&pair.berry, &env_proto, &context, voltage, &eval_cfg, seed)?;
            Ok(Table3Row {
                chip: chip.name().to_string(),
                ber_percent: ber_pct,
                success_pct: mission.navigation.success_rate * 100.0,
                flight_energy_j: mission.quality_of_flight.flight_energy_j,
            })
        })
        .collect()
}

/// Formats Table III.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.chip.clone(),
                format!("{:.3}", r.ber_percent),
                format!("{:.1}", r.success_pct),
                format!("{:.1}", r.flight_energy_j),
            ]
        })
        .collect();
    format_table(&["Chip", "BER %", "Success %", "E_flight (J)"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fig5_covers_three_environments_and_two_schemes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let rows = fig5_environment_study(ExperimentScale::Smoke, &mut rng).unwrap();
        assert_eq!(rows.len(), 6);
        for density in ["sparse", "medium", "dense"] {
            assert_eq!(rows.iter().filter(|r| r.density == density).count(), 2);
        }
        assert!(rows.iter().all(|r| r.flight_energy_j > 0.0));
        let text = format_fig5(&rows);
        assert!(text.contains("Environment"));
    }

    #[test]
    fn fig7_reports_power_shares_that_sum_to_100() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rows = fig7_platform_study(ExperimentScale::Smoke, &mut rng).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!((r.rotor_power_pct + r.compute_power_pct - 100.0).abs() < 1e-9);
        }
        // The Tello's rotor share exceeds the Crazyflie's (paper Fig. 7).
        let cf = rows.iter().find(|r| r.platform.contains("Crazyflie")).unwrap();
        let tello = rows
            .iter()
            .find(|r| r.platform.contains("Tello") && r.policy == "C3F2")
            .unwrap();
        assert!(tello.rotor_power_pct > cf.rotor_power_pct);
        let text = format_fig7(&rows);
        assert!(text.contains("Rotor Power"));
    }

    #[test]
    fn table3_evaluates_both_profiled_chips() {
        let scale = ExperimentScale::Smoke;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let env_cfg = scale.navigation_config(ObstacleDensity::Sparse);
        let pair = train_policy_pair(&env_cfg, &scale.default_policy(), scale, &mut rng).unwrap();
        let rows = table3_chip_study(&pair, scale, &mut rng).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.chip.contains("chip1")));
        assert!(rows.iter().any(|r| r.chip.contains("chip2")));
        let text = format_table3(&rows);
        assert!(text.contains("Chip"));
    }
}
