//! Generalization experiments: paper Fig. 5 (environments), Fig. 7 (UAV
//! platforms and policy architectures) and Table III (profiled chips).
//!
//! Each study is a declarative campaign request — a scenario grid slice
//! (one cell per environment for Fig. 5, one per platform/architecture for
//! Fig. 7) plus its evaluation axes — executed through the campaign
//! engine's axes-only path ([`run_axes_grid_in`]) against a shared
//! [`PolicyStore`].

use crate::campaign::{run_axes_grid_in, EvalAxis, OperatingPoint, PolicyRole};
use crate::experiment::{artifact_scenario, format_table, ExperimentScale};
use crate::store::PolicyStore;
use crate::Result;
use berry_hw::accelerator::Accelerator;
use berry_uav::platform::UavPlatform;
use berry_uav::world::ObstacleDensity;
use serde::{Deserialize, Serialize};

/// One (environment, scheme) row of the Fig. 5 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Obstacle density of the environment.
    pub density: String,
    /// "Classical" or "BERRY".
    pub scheme: String,
    /// Success rate (percent) at p = 0.01 %.
    pub success_pct_low_ber: f64,
    /// Success rate (percent) at p = 0.1 %.
    pub success_pct_high_ber: f64,
    /// Single-mission flight energy (J) at the environment's deployment
    /// voltage.
    pub flight_energy_j: f64,
    /// Missions per battery charge at that operating point.
    pub num_missions: f64,
}

/// Runs the Fig. 5 environment study: one campaign cell per obstacle
/// density (the pair trains once per density), with robustness and
/// mission-efficiency axes for both schemes.
///
/// The per-density deployment voltages are the scenarios' own
/// [`crate::Scenario::deploy_voltage_norm`] operating points — the same
/// ones the full campaign grid deploys at.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn fig5_environment_study(
    store: &PolicyStore,
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<Fig5Row>> {
    let grid: Vec<_> = ObstacleDensity::all()
        .into_iter()
        .map(|density| artifact_scenario(density, &UavPlatform::crazyflie(), "C3F2"))
        .collect();
    let mut axes = Vec::new();
    for role in [PolicyRole::Classical, PolicyRole::Berry] {
        axes.push(EvalAxis::new(
            format!("{}:ber=0.01%", role.label()),
            role,
            OperatingPoint::Ber(1e-4),
        ));
        axes.push(EvalAxis::new(
            format!("{}:ber=0.1%", role.label()),
            role,
            OperatingPoint::Ber(1e-3),
        ));
        axes.push(EvalAxis::new(
            format!("{}:deploy", role.label()),
            role,
            OperatingPoint::MissionAtDeployVoltage,
        ));
    }
    let cells = run_axes_grid_in(&grid, scale, base_seed, store, &axes)?;
    let mut rows = Vec::with_capacity(cells.len() * 2);
    for cell in &cells {
        for (i, role) in [PolicyRole::Classical, PolicyRole::Berry].into_iter().enumerate() {
            let chunk = &cell.axis_results[i * 3..(i + 1) * 3];
            let qof = super::qof_of(&chunk[2])?;
            rows.push(Fig5Row {
                density: cell.scenario.density.label().to_string(),
                scheme: role.label().to_string(),
                success_pct_low_ber: chunk[0].nav.success_rate * 100.0,
                success_pct_high_ber: chunk[1].nav.success_rate * 100.0,
                flight_energy_j: qof.flight_energy_j,
                num_missions: qof.num_missions,
            });
        }
    }
    Ok(rows)
}

/// Formats the Fig. 5 study as a table.
pub fn format_fig5(rows: &[Fig5Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.density.clone(),
                r.scheme.clone(),
                format!("{:.1}", r.success_pct_low_ber),
                format!("{:.1}", r.success_pct_high_ber),
                format!("{:.1}", r.flight_energy_j),
                format!("{:.1}", r.num_missions),
            ]
        })
        .collect();
    format_table(
        &[
            "Environment",
            "Scheme",
            "Succ% p=0.01",
            "Succ% p=0.1",
            "E_flight (J)",
            "Missions",
        ],
        &body,
    )
}

/// One row of the Fig. 7 platform/architecture study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// UAV platform name.
    pub platform: String,
    /// Policy architecture name.
    pub policy: String,
    /// Rotor share of total power at nominal voltage (percent).
    pub rotor_power_pct: f64,
    /// Compute share of total power at nominal voltage (percent).
    pub compute_power_pct: f64,
    /// BERRY flight-energy saving vs nominal operation (percent, positive =
    /// saving).
    pub flight_energy_saving_pct: f64,
    /// BERRY missions improvement vs nominal operation (percent).
    pub missions_improvement_pct: f64,
}

/// Runs the Fig. 7 platform/architecture study: one campaign cell per
/// (platform, policy) case on the medium environment, each evaluated at
/// nominal and low voltage.  The campaign engine resolves the mission
/// context — platform, published workload, chip — from the scenario, so
/// the Tello/C5F4 cell is automatically costed as a C5F4 workload.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn fig7_platform_study(
    store: &PolicyStore,
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<Fig7Row>> {
    let grid = vec![
        artifact_scenario(ObstacleDensity::Medium, &UavPlatform::crazyflie(), "C3F2"),
        artifact_scenario(ObstacleDensity::Medium, &UavPlatform::dji_tello(), "C3F2"),
        artifact_scenario(ObstacleDensity::Medium, &UavPlatform::dji_tello(), "C5F4"),
    ];
    let nominal_v = Accelerator::default_edge_accelerator()
        .domain()
        .nominal_voltage_norm();
    let axes = vec![
        EvalAxis::new(
            "BERRY:nominal",
            PolicyRole::Berry,
            OperatingPoint::MissionAtVoltage(nominal_v),
        ),
        EvalAxis::new(
            "BERRY:low",
            PolicyRole::Berry,
            OperatingPoint::MissionAtVoltage(0.77),
        ),
    ];
    let cells = run_axes_grid_in(&grid, scale, base_seed, store, &axes)?;
    cells
        .iter()
        .map(|cell| {
            let nominal = super::qof_of(&cell.axis_results[0])?;
            let low = super::qof_of(&cell.axis_results[1])?;
            let rotor_w = nominal.rotor_power_w;
            let compute_w = nominal.compute_power_w;
            let total = rotor_w + compute_w;
            Ok(Fig7Row {
                platform: cell.scenario.platform.clone(),
                policy: cell.scenario.policy.clone(),
                rotor_power_pct: 100.0 * rotor_w / total,
                compute_power_pct: 100.0 * compute_w / total,
                flight_energy_saving_pct: -100.0 * low.flight_energy_change_vs(nominal),
                missions_improvement_pct: 100.0 * low.missions_change_vs(nominal),
            })
        })
        .collect()
}

/// Formats the Fig. 7 table like the paper's inset table.
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                r.policy.clone(),
                format!("{:.1}%", r.rotor_power_pct),
                format!("{:.1}%", r.compute_power_pct),
                format!("{:.2}%", r.flight_energy_saving_pct),
                format!("{:.2}%", r.missions_improvement_pct),
            ]
        })
        .collect();
    format_table(
        &[
            "UAV",
            "Policy",
            "Rotor Power",
            "Compute Power",
            "Flight Energy Saving",
            "#Missions Gain",
        ],
        &body,
    )
}

/// One row of the Table III profiled-chip study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Chip profile name.
    pub chip: String,
    /// Bit error rate (percent) evaluated.
    pub ber_percent: f64,
    /// Success rate of the BERRY policy (percent).
    pub success_pct: f64,
    /// Flight energy (J) at the voltage matching this BER.
    pub flight_energy_j: f64,
}

/// Runs the Table III chip-generalization study: the BERRY policy of the
/// standard cell (trained at p = 0.5 % on the generic chip) is evaluated
/// on the profiled chips' fault patterns via [`OperatingPoint::MissionOnChip`]
/// axes, at rates both below and above the training rate.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn table3_chip_study(
    store: &PolicyStore,
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<Table3Row>> {
    // Paper Table III: chip 1 (random) at p = 0.16 % / 0.74 %, chip 2
    // (column-aligned) at p = 0.067 % / 0.32 %.
    let cases = [
        ("chip1-random", 0.16),
        ("chip1-random", 0.74),
        ("chip2-column-aligned", 0.067),
        ("chip2-column-aligned", 0.32),
    ];
    let grid = vec![artifact_scenario(
        ObstacleDensity::Medium,
        &UavPlatform::crazyflie(),
        "C3F2",
    )];
    let axes: Vec<EvalAxis> = cases
        .iter()
        .map(|(chip, ber_pct)| {
            EvalAxis::new(
                format!("BERRY:{chip}:ber={ber_pct}%"),
                PolicyRole::Berry,
                OperatingPoint::MissionOnChip {
                    chip: (*chip).to_string(),
                    ber: ber_pct / 100.0,
                },
            )
        })
        .collect();
    let rows = run_axes_grid_in(&grid, scale, base_seed, store, &axes)?;
    rows[0]
        .axis_results
        .iter()
        .zip(cases)
        .map(|(result, (chip, ber_pct))| {
            Ok(Table3Row {
                chip: chip.to_string(),
                ber_percent: ber_pct,
                success_pct: result.nav.success_rate * 100.0,
                flight_energy_j: super::qof_of(result)?.flight_energy_j,
            })
        })
        .collect()
}

/// Formats Table III.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.chip.clone(),
                format!("{:.3}", r.ber_percent),
                format!("{:.1}", r.success_pct),
                format!("{:.1}", r.flight_energy_j),
            ]
        })
        .collect();
    format_table(&["Chip", "BER %", "Success %", "E_flight (J)"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_covers_three_environments_and_two_schemes() {
        let store = PolicyStore::in_memory();
        let rows = fig5_environment_study(&store, ExperimentScale::Smoke, 0).unwrap();
        assert_eq!(rows.len(), 6);
        // One pair trained per density.
        assert_eq!(store.stats().trained, 3);
        for density in ["sparse", "medium", "dense"] {
            assert_eq!(rows.iter().filter(|r| r.density == density).count(), 2);
        }
        assert!(rows.iter().all(|r| r.flight_energy_j > 0.0));
        let text = format_fig5(&rows);
        assert!(text.contains("Environment"));
    }

    #[test]
    fn fig7_reports_power_shares_that_sum_to_100() {
        let store = PolicyStore::in_memory();
        let rows = fig7_platform_study(&store, ExperimentScale::Smoke, 1).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!((r.rotor_power_pct + r.compute_power_pct - 100.0).abs() < 1e-9);
        }
        // The Crazyflie/C3F2 and Tello/C3F2 cells train the same policy;
        // only the Tello/C5F4 cell adds a second architecture.
        assert_eq!(store.stats().trained, 2);
        // The Tello's rotor share exceeds the Crazyflie's (paper Fig. 7).
        let cf = rows.iter().find(|r| r.platform.contains("Crazyflie")).unwrap();
        let tello = rows
            .iter()
            .find(|r| r.platform.contains("Tello") && r.policy == "C3F2")
            .unwrap();
        assert!(tello.rotor_power_pct > cf.rotor_power_pct);
        let text = format_fig7(&rows);
        assert!(text.contains("Rotor Power"));
    }

    #[test]
    fn table3_evaluates_both_profiled_chips() {
        let store = PolicyStore::in_memory();
        let rows = table3_chip_study(&store, ExperimentScale::Smoke, 2).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.chip.contains("chip1")));
        assert!(rows.iter().any(|r| r.chip.contains("chip2")));
        let text = format_table3(&rows);
        assert!(text.contains("Chip"));
    }
}
