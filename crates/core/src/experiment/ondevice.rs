//! Table IV: on-device error-aware robust learning.
//!
//! On-device learning perturbs training with the *actual* fault map of the
//! deployed chip at its operating voltage, which lets the UAV fly at an even
//! lower voltage than the offline-trained policy tolerates — at the cost of
//! the energy spent running the learning steps on board.
//!
//! Unlike the evaluation sweeps, Table IV's rows differ in *training*
//! configuration (learning-step budgets and learning voltages), so the
//! study is expressed directly as [`PairRequest`]s to the shared
//! [`PolicyStore`] — each (steps, voltage) row is one content-addressed
//! training fingerprint, trained at most once — with the deployment
//! evaluations running through the same seeded mission pipeline the
//! campaign engine uses.

use crate::evaluate::{evaluate_mission_seeded, MissionContext};
use crate::experiment::{format_table, ExperimentScale};
use crate::robust::LearningMode;
use crate::store::{PairRequest, PolicyStore};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_rl::trainer::TrainerConfig;
use berry_uav::env::NavigationEnv;
use berry_uav::world::ObstacleDensity;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// "on-device" or "offline".
    pub mode: String,
    /// Number of on-device learning steps (0 for offline rows).
    pub learning_steps: u64,
    /// Normalized operating voltage during learning and deployment.
    pub voltage_norm: f64,
    /// Energy spent on on-device learning (joules; 0 for offline rows).
    pub learning_energy_j: f64,
    /// Processing energy savings vs nominal operation.
    pub energy_savings: f64,
    /// Deployment success rate (percent).
    pub success_pct: f64,
    /// Single-mission flight energy (joules).
    pub flight_energy_j: f64,
    /// Missions per battery charge (not counting learning energy, as in the
    /// paper's footnote).
    pub num_missions: f64,
}

/// Configuration of the on-device study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OndeviceStudyConfig {
    /// Voltages to evaluate (the paper uses 0.77 and 0.70 Vmin).
    pub voltages_norm: Vec<f64>,
    /// On-device learning-step budgets (the paper uses 4000 and 6000).
    pub learning_steps: Vec<u64>,
    /// Energy charged per on-device training step (joules).  The paper's
    /// Table IV implies ≈0.45 J per step (1849 J / 4000 steps), dominated by
    /// the companion computer and memory traffic during replay.
    pub energy_per_learning_step_j: f64,
}

impl Default for OndeviceStudyConfig {
    fn default() -> Self {
        Self {
            voltages_norm: vec![0.77, 0.70],
            learning_steps: vec![4_000, 6_000],
            energy_per_learning_step_j: 0.46,
        }
    }
}

/// Runs the Table IV on-device study on the Tello/C3F2 context (as in the
/// paper, which runs on-device learning on the Tello).
///
/// For each (steps, voltage) combination the store supplies a policy
/// trained on-device against a persistent chip fault map, deployed on the
/// same chip at the same voltage; offline BERRY rows at the same voltages
/// serve as the comparison.  Per-row evaluation seeds are drawn up front
/// from a stream seeded with `base_seed`, so the table is deterministic
/// and cache-warm reruns reproduce it bit for bit.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn table4_ondevice_study(
    store: &PolicyStore,
    study: &OndeviceStudyConfig,
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<Table4Row>> {
    let eval_cfg = scale.evaluation_config();
    let context = MissionContext::tello_c3f2();
    let env_cfg = scale.navigation_config(ObstacleDensity::Medium);
    let spec = scale.default_policy();
    let base_trainer = scale.trainer_config();
    let mut seed_rng = StdRng::seed_from_u64(base_seed);
    let mut rows = Vec::new();

    // On-device rows.
    for &steps in &study.learning_steps {
        for &voltage in &study.voltages_norm {
            let eval_seed = seed_rng.next_u64();
            // Scale the episode budget so the number of optimizer steps is
            // roughly the requested on-device step budget.
            let steps_per_episode = base_trainer.max_steps_per_episode as u64;
            let episodes = ((steps * base_trainer.train_every as u64) / steps_per_episode.max(1))
                .clamp(10, 5_000) as usize;
            let trainer = TrainerConfig {
                episodes,
                ..base_trainer.clone()
            };
            let request = PairRequest::new(
                spec.clone(),
                env_cfg.clone(),
                trainer,
                LearningMode::on_device(voltage),
                ChipProfile::generic(),
                8,
                base_seed,
            );
            let pair = store.get_or_train(&request)?;
            let env = NavigationEnv::new(env_cfg.clone())?;
            let mission = evaluate_mission_seeded(
                &pair.berry,
                &env,
                &context,
                voltage,
                &eval_cfg,
                eval_seed,
            )?;
            rows.push(Table4Row {
                mode: "on-device".to_string(),
                learning_steps: pair.robust_updates,
                voltage_norm: voltage,
                learning_energy_j: pair.robust_updates as f64
                    * study.energy_per_learning_step_j,
                energy_savings: mission.processing.savings_vs_nominal,
                success_pct: mission.navigation.success_rate * 100.0,
                flight_energy_j: mission.quality_of_flight.flight_energy_j,
                num_missions: mission.quality_of_flight.num_missions,
            });
        }
    }

    // Offline BERRY comparison rows at the same voltages (one training,
    // evaluated per voltage).
    let offline_request = PairRequest::new(
        spec,
        env_cfg.clone(),
        base_trainer,
        LearningMode::offline(scale.train_ber()),
        ChipProfile::generic(),
        8,
        base_seed,
    );
    let offline = store.get_or_train(&offline_request)?;
    for &voltage in &study.voltages_norm {
        let eval_seed = seed_rng.next_u64();
        let env = NavigationEnv::new(env_cfg.clone())?;
        let mission = evaluate_mission_seeded(
            &offline.berry,
            &env,
            &context,
            voltage,
            &eval_cfg,
            eval_seed,
        )?;
        rows.push(Table4Row {
            mode: "offline".to_string(),
            learning_steps: 0,
            voltage_norm: voltage,
            learning_energy_j: 0.0,
            energy_savings: mission.processing.savings_vs_nominal,
            success_pct: mission.navigation.success_rate * 100.0,
            flight_energy_j: mission.quality_of_flight.flight_energy_j,
            num_missions: mission.quality_of_flight.num_missions,
        });
    }
    Ok(rows)
}

/// Formats Table IV like the paper.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.learning_steps.to_string(),
                format!("{:.2}", r.voltage_norm),
                format!("{:.0}", r.learning_energy_j),
                format!("{:.2}x", r.energy_savings),
                format!("{:.1}", r.success_pct),
                format!("{:.1}", r.flight_energy_j),
                format!("{:.1}", r.num_missions),
            ]
        })
        .collect();
    format_table(
        &[
            "Mode",
            "Learn Steps",
            "V (Vmin)",
            "Learn E (J)",
            "E Savings",
            "Success %",
            "E_flight (J)",
            "Missions",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ondevice_study_produces_ondevice_and_offline_rows() {
        let store = PolicyStore::in_memory();
        let study = OndeviceStudyConfig {
            voltages_norm: vec![0.77],
            learning_steps: vec![200],
            energy_per_learning_step_j: 0.46,
        };
        let rows =
            table4_ondevice_study(&store, &study, ExperimentScale::Smoke, 0).unwrap();
        assert_eq!(rows.len(), 2);
        // One on-device training plus the offline comparison pair.
        assert_eq!(store.stats().trained, 2);
        let ondevice = rows.iter().find(|r| r.mode == "on-device").unwrap();
        let offline = rows.iter().find(|r| r.mode == "offline").unwrap();
        assert!(ondevice.learning_steps > 0);
        assert!(ondevice.learning_energy_j > 0.0);
        assert_eq!(offline.learning_energy_j, 0.0);
        assert!(ondevice.energy_savings > 1.0);
        let text = format_table4(&rows);
        assert!(text.contains("Learn Steps"));
    }

    #[test]
    fn rerunning_the_study_against_one_store_retrains_nothing() {
        let store = PolicyStore::in_memory();
        let study = OndeviceStudyConfig {
            voltages_norm: vec![0.77],
            learning_steps: vec![150],
            energy_per_learning_step_j: 0.46,
        };
        let first = table4_ondevice_study(&store, &study, ExperimentScale::Smoke, 3).unwrap();
        let trained_once = store.stats().trained;
        let second = table4_ondevice_study(&store, &study, ExperimentScale::Smoke, 3).unwrap();
        assert_eq!(store.stats().trained, trained_once, "warm rerun must not retrain");
        assert_eq!(first, second, "warm rerun must reproduce the rows bit for bit");
    }

    #[test]
    fn default_study_matches_paper_parameters() {
        let study = OndeviceStudyConfig::default();
        assert_eq!(study.voltages_norm, vec![0.77, 0.70]);
        assert_eq!(study.learning_steps, vec![4_000, 6_000]);
        // 4000 steps x 0.46 J ~ 1.8 kJ, the paper's reported learning energy.
        assert!((study.learning_steps[0] as f64 * study.energy_per_learning_step_j - 1840.0).abs() < 100.0);
    }
}
