//! Table IV: on-device error-aware robust learning.
//!
//! On-device learning perturbs training with the *actual* fault map of the
//! deployed chip at its operating voltage, which lets the UAV fly at an even
//! lower voltage than the offline-trained policy tolerates — at the cost of
//! the energy spent running the learning steps on board.

use crate::evaluate::{evaluate_mission, MissionContext};
use crate::experiment::{format_table, ExperimentScale};
use crate::robust::{train_berry_with_fault_map, BerryConfig, LearningMode};
use crate::Result;
use berry_rl::trainer::TrainerConfig;
use berry_uav::env::NavigationEnv;
use berry_uav::world::ObstacleDensity;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// "on-device" or "offline".
    pub mode: String,
    /// Number of on-device learning steps (0 for offline rows).
    pub learning_steps: u64,
    /// Normalized operating voltage during learning and deployment.
    pub voltage_norm: f64,
    /// Energy spent on on-device learning (joules; 0 for offline rows).
    pub learning_energy_j: f64,
    /// Processing energy savings vs nominal operation.
    pub energy_savings: f64,
    /// Deployment success rate (percent).
    pub success_pct: f64,
    /// Single-mission flight energy (joules).
    pub flight_energy_j: f64,
    /// Missions per battery charge (not counting learning energy, as in the
    /// paper's footnote).
    pub num_missions: f64,
}

/// Configuration of the on-device study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OndeviceStudyConfig {
    /// Voltages to evaluate (the paper uses 0.77 and 0.70 Vmin).
    pub voltages_norm: Vec<f64>,
    /// On-device learning-step budgets (the paper uses 4000 and 6000).
    pub learning_steps: Vec<u64>,
    /// Energy charged per on-device training step (joules).  The paper's
    /// Table IV implies ≈0.45 J per step (1849 J / 4000 steps), dominated by
    /// the companion computer and memory traffic during replay.
    pub energy_per_learning_step_j: f64,
}

impl Default for OndeviceStudyConfig {
    fn default() -> Self {
        Self {
            voltages_norm: vec![0.77, 0.70],
            learning_steps: vec![4_000, 6_000],
            energy_per_learning_step_j: 0.46,
        }
    }
}

/// Runs the Table IV on-device study on the Tello/C3F2 context (as in the
/// paper, which runs on-device learning on the Tello).
///
/// For each (steps, voltage) combination a policy is trained on-device
/// against a persistent chip fault map and then deployed on the same map;
/// offline BERRY rows at the same voltages serve as the comparison.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn table4_ondevice_study<R: Rng>(
    study: &OndeviceStudyConfig,
    scale: ExperimentScale,
    rng: &mut R,
) -> Result<Vec<Table4Row>> {
    let eval_cfg = scale.evaluation_config();
    let context = MissionContext::tello_c3f2();
    let env_cfg = scale.navigation_config(ObstacleDensity::Medium);
    let spec = scale.default_policy();
    let base_trainer = scale.trainer_config();
    let mut rows = Vec::new();

    // On-device rows.
    for &steps in &study.learning_steps {
        for &voltage in &study.voltages_norm {
            // Scale the episode budget so the number of optimizer steps is
            // roughly the requested on-device step budget.
            let steps_per_episode = base_trainer.max_steps_per_episode as u64;
            let episodes = ((steps * base_trainer.train_every as u64) / steps_per_episode.max(1))
                .clamp(10, 5_000) as usize;
            let trainer = TrainerConfig {
                episodes,
                ..base_trainer.clone()
            };
            let config = BerryConfig {
                trainer,
                mode: LearningMode::on_device(voltage),
                ..BerryConfig::default()
            };
            let mut env = NavigationEnv::new(env_cfg.clone())?;
            let outcome = train_berry_with_fault_map(&mut env, &spec, &config, rng)?;
            let env = NavigationEnv::new(env_cfg.clone())?;
            let mission = evaluate_mission(
                outcome.agent.q_net(),
                &env,
                &context,
                voltage,
                &eval_cfg,
                rng,
            )?;
            rows.push(Table4Row {
                mode: "on-device".to_string(),
                learning_steps: outcome.robust_updates,
                voltage_norm: voltage,
                learning_energy_j: outcome.robust_updates as f64
                    * study.energy_per_learning_step_j,
                energy_savings: mission.processing.savings_vs_nominal,
                success_pct: mission.navigation.success_rate * 100.0,
                flight_energy_j: mission.quality_of_flight.flight_energy_j,
                num_missions: mission.quality_of_flight.num_missions,
            });
        }
    }

    // Offline BERRY comparison rows at the same voltages.
    let offline_config = BerryConfig {
        trainer: base_trainer,
        mode: LearningMode::offline(scale.train_ber()),
        ..BerryConfig::default()
    };
    let mut env = NavigationEnv::new(env_cfg.clone())?;
    let offline = train_berry_with_fault_map(&mut env, &spec, &offline_config, rng)?;
    for &voltage in &study.voltages_norm {
        let env = NavigationEnv::new(env_cfg.clone())?;
        let mission = evaluate_mission(
            offline.agent.q_net(),
            &env,
            &context,
            voltage,
            &eval_cfg,
            rng,
        )?;
        rows.push(Table4Row {
            mode: "offline".to_string(),
            learning_steps: 0,
            voltage_norm: voltage,
            learning_energy_j: 0.0,
            energy_savings: mission.processing.savings_vs_nominal,
            success_pct: mission.navigation.success_rate * 100.0,
            flight_energy_j: mission.quality_of_flight.flight_energy_j,
            num_missions: mission.quality_of_flight.num_missions,
        });
    }
    Ok(rows)
}

/// Formats Table IV like the paper.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.learning_steps.to_string(),
                format!("{:.2}", r.voltage_norm),
                format!("{:.0}", r.learning_energy_j),
                format!("{:.2}x", r.energy_savings),
                format!("{:.1}", r.success_pct),
                format!("{:.1}", r.flight_energy_j),
                format!("{:.1}", r.num_missions),
            ]
        })
        .collect();
    format_table(
        &[
            "Mode",
            "Learn Steps",
            "V (Vmin)",
            "Learn E (J)",
            "E Savings",
            "Success %",
            "E_flight (J)",
            "Missions",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ondevice_study_produces_ondevice_and_offline_rows() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let study = OndeviceStudyConfig {
            voltages_norm: vec![0.77],
            learning_steps: vec![200],
            energy_per_learning_step_j: 0.46,
        };
        let rows = table4_ondevice_study(&study, ExperimentScale::Smoke, &mut rng).unwrap();
        assert_eq!(rows.len(), 2);
        let ondevice = rows.iter().find(|r| r.mode == "on-device").unwrap();
        let offline = rows.iter().find(|r| r.mode == "offline").unwrap();
        assert!(ondevice.learning_steps > 0);
        assert!(ondevice.learning_energy_j > 0.0);
        assert_eq!(offline.learning_energy_j, 0.0);
        assert!(ondevice.energy_savings > 1.0);
        let text = format_table4(&rows);
        assert!(text.contains("Learn Steps"));
    }

    #[test]
    fn default_study_matches_paper_parameters() {
        let study = OndeviceStudyConfig::default();
        assert_eq!(study.voltages_norm, vec![0.77, 0.70]);
        assert_eq!(study.learning_steps, vec![4_000, 6_000]);
        // 4000 steps x 0.46 J ~ 1.8 kJ, the paper's reported learning energy.
        assert!((study.learning_steps[0] as f64 * study.energy_per_learning_step_j - 1840.0).abs() < 100.0);
    }
}
