//! Experiment runners: one module per table / figure of the paper.
//!
//! | Paper artefact | Module | What it sweeps |
//! |---|---|---|
//! | Fig. 2 | [`hardware`] | voltage → bit-error rate and SRAM energy |
//! | Fig. 6 / Fig. 1 | [`hardware`] | voltage → heatsink → acceleration → velocity chain |
//! | Table I | [`robustness`] | success rate vs bit-error rate, Classical vs BERRY |
//! | Fig. 3 | [`robustness`] | success rate *and* flight energy vs bit-error rate |
//! | Table II | [`voltage`] | full voltage sweep of processing + quality-of-flight |
//! | Fig. 5 | [`generalization`] | sparse / medium / dense environments |
//! | Fig. 7 | [`generalization`] | Crazyflie vs Tello, C3F2 vs C5F4 |
//! | Table III | [`generalization`] | profiled chips (random / column-aligned) |
//! | Table IV | [`ondevice`] | on-device robust learning |
//! | (design ablation) | [`ablation`] | clean-only vs perturbed-only vs dual-pass gradients |
//!
//! Every experiment accepts an [`ExperimentScale`]; `Smoke` keeps unit tests
//! fast, `Quick` regenerates recognizable trends in a couple of minutes on a
//! laptop, and `Paper` approaches the paper's statistical protocol (500
//! fault maps per point).

pub mod ablation;
pub mod generalization;
pub mod hardware;
pub mod ondevice;
pub mod robustness;
pub mod voltage;

use crate::campaign::AxisResult;
use crate::error::CoreError;
use crate::evaluate::FaultEvaluationConfig;
use crate::robust::LearningMode;
use crate::scenario::{Scenario, ScenarioMode};
use crate::store::{PairRequest, PolicyStore};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_nn::network::Sequential;
use berry_rl::dqn::DqnConfig;
use berry_rl::policy::QNetworkSpec;
use berry_rl::schedule::EpsilonSchedule;
use berry_rl::trainer::TrainerConfig;
use berry_uav::env::NavigationConfig;
use berry_uav::platform::UavPlatform;
use berry_uav::world::{ObstacleDensity, WorldVariant};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How much compute an experiment run spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Minimal: tiny MLP policies, a handful of episodes and fault maps.
    /// Only checks that the pipeline runs end to end (unit tests).
    Smoke,
    /// Small convolutional policies on a reduced arena; regenerates the
    /// qualitative trends of every table in minutes.
    Quick,
    /// The paper's protocol: full-size arena, C3F2/C5F4 policies and 500
    /// fault maps per operating point.  Expect hours of CPU time.
    Paper,
}

impl ExperimentScale {
    /// Parses a scale name (`smoke`, `quick`, `paper`/`full`,
    /// case-insensitive).  Returns `None` for anything else so callers can
    /// distinguish "not given" from "given but wrong" — the single parser
    /// behind the harness `BERRY_SCALE` env var, the runner CLI flags and
    /// the `berry-serve` wire protocol.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_lowercase().as_str() {
            "smoke" => Some(ExperimentScale::Smoke),
            "quick" => Some(ExperimentScale::Quick),
            "paper" | "full" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }

    /// The canonical lowercase name [`ExperimentScale::parse`] inverts.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentScale::Smoke => "smoke",
            ExperimentScale::Quick => "quick",
            ExperimentScale::Paper => "paper",
        }
    }

    /// Training configuration for this scale.
    pub fn trainer_config(self) -> TrainerConfig {
        match self {
            ExperimentScale::Smoke => TrainerConfig {
                episodes: 40,
                max_steps_per_episode: 25,
                buffer_capacity: 4_000,
                learning_starts: 64,
                train_every: 1,
                // lint: allow(panic-in-lib) why: constant arguments are valid by inspection; schedule construction cannot fail
                epsilon: EpsilonSchedule::new(1.0, 0.1, 500).expect("valid"),
                dqn: DqnConfig {
                    batch_size: 16,
                    target_sync_every: 100,
                    ..DqnConfig::default()
                },
            },
            ExperimentScale::Quick => TrainerConfig {
                episodes: 220,
                max_steps_per_episode: 40,
                buffer_capacity: 20_000,
                learning_starts: 256,
                train_every: 2,
                // lint: allow(panic-in-lib) why: constant arguments are valid by inspection; schedule construction cannot fail
                epsilon: EpsilonSchedule::new(1.0, 0.05, 3_000).expect("valid"),
                dqn: DqnConfig {
                    batch_size: 32,
                    target_sync_every: 250,
                    ..DqnConfig::default()
                },
            },
            ExperimentScale::Paper => TrainerConfig {
                episodes: 1_500,
                max_steps_per_episode: 60,
                buffer_capacity: 100_000,
                learning_starts: 1_000,
                train_every: 2,
                // lint: allow(panic-in-lib) why: constant arguments are valid by inspection; schedule construction cannot fail
                epsilon: EpsilonSchedule::new(1.0, 0.05, 20_000).expect("valid"),
                dqn: DqnConfig {
                    batch_size: 32,
                    target_sync_every: 500,
                    ..DqnConfig::default()
                },
            },
        }
    }

    /// Navigation-environment configuration for this scale.
    pub fn navigation_config(self, density: ObstacleDensity) -> NavigationConfig {
        match self {
            ExperimentScale::Smoke => NavigationConfig {
                density,
                ..NavigationConfig::smoke_test()
            },
            ExperimentScale::Quick => NavigationConfig {
                arena_size_m: 16.0,
                max_steps: 45,
                density,
                ..NavigationConfig::default()
            },
            ExperimentScale::Paper => NavigationConfig::with_density(density),
        }
    }

    /// Policy architecture used when an experiment does not explicitly sweep
    /// architectures.
    pub fn default_policy(self) -> QNetworkSpec {
        match self {
            ExperimentScale::Smoke => QNetworkSpec::mlp(vec![32]),
            ExperimentScale::Quick | ExperimentScale::Paper => QNetworkSpec::C3F2,
        }
    }

    /// Fault-evaluation protocol for this scale.
    pub fn evaluation_config(self) -> FaultEvaluationConfig {
        match self {
            ExperimentScale::Smoke => FaultEvaluationConfig::smoke_test(),
            ExperimentScale::Quick => FaultEvaluationConfig {
                fault_maps: 25,
                episodes_per_map: 2,
                max_steps: 45,
                ..FaultEvaluationConfig::default()
            },
            ExperimentScale::Paper => FaultEvaluationConfig::paper_scale(),
        }
    }

    /// The bit-error rate injected during BERRY training at this scale
    /// (the paper trains at p = 0.5 %).
    pub fn train_ber(self) -> f64 {
        0.005
    }
}

/// A pair of policies trained on the same task: the classical DQN baseline
/// and the BERRY error-aware policy.
#[derive(Debug, Clone)]
pub struct PolicyPair {
    /// Classically trained policy (no error injection).
    pub classical: Sequential,
    /// BERRY error-aware policy (offline dual-pass training).
    pub berry: Sequential,
    /// The architecture both policies share.
    pub spec: QNetworkSpec,
    /// The environment configuration they were trained on.
    pub env_config: NavigationConfig,
}

/// Trains (or fetches) the Classical / BERRY policy pair used by the
/// examples and integration tests.
///
/// Routes through a one-shot [`PolicyStore`], so this module contains no
/// direct training call site — the store is the single place policies are
/// trained.  Long-lived consumers (the table/figure runners) share a real
/// store instead of using this convenience wrapper.
///
/// # Errors
///
/// Returns an error if environment construction or training fails.
pub fn train_policy_pair<R: Rng>(
    env_config: &NavigationConfig,
    spec: &QNetworkSpec,
    scale: ExperimentScale,
    rng: &mut R,
) -> Result<PolicyPair> {
    let request = PairRequest::new(
        spec.clone(),
        env_config.clone(),
        scale.trainer_config(),
        LearningMode::offline(scale.train_ber()),
        ChipProfile::generic(),
        8,
        rng.next_u64(),
    );
    let pair = PolicyStore::in_memory().get_or_train(&request)?;
    Ok(PolicyPair {
        classical: pair.classical.clone(),
        berry: pair.berry.clone(),
        spec: spec.clone(),
        env_config: env_config.clone(),
    })
}

/// The grid-slice cell most table/figure runners request: offline learning
/// on the generic chip in a calm world, with the density, platform and
/// policy architecture the artefact sweeps.
///
/// Expressed as a [`Scenario`] so every runner goes through the campaign
/// engine's one train → perturb → evaluate pipeline (and shares its policy
/// store) instead of hand-rolling a training loop.
pub fn artifact_scenario(
    density: ObstacleDensity,
    platform: &UavPlatform,
    policy: &str,
) -> Scenario {
    Scenario {
        density,
        platform: platform.name().to_string(),
        policy: policy.to_string(),
        mode: ScenarioMode::Offline,
        chip: ChipProfile::generic().name().to_string(),
        variant: WorldVariant::Calm,
    }
}

/// Extracts a mission axis's quality-of-flight block, which the campaign
/// populates for every mission-level operating point; a missing block
/// means the axis grid and the row builder disagree — a typed internal
/// error, not a panic.
pub(crate) fn qof_of(result: &AxisResult) -> Result<&berry_uav::flight::QualityOfFlight> {
    result.quality_of_flight.as_ref().ok_or_else(|| {
        CoreError::Internal(format!(
            "axis `{}` carries no quality-of-flight block (not a mission axis?)",
            result.label
        ))
    })
}

/// Renders rows of `(label, values…)` as a fixed-width text table — the
/// harness binaries print these to mirror the paper's tables.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scales_produce_valid_configurations() {
        for scale in [
            ExperimentScale::Smoke,
            ExperimentScale::Quick,
            ExperimentScale::Paper,
        ] {
            assert!(scale.trainer_config().validate().is_ok());
            assert!(scale
                .navigation_config(ObstacleDensity::Medium)
                .validate()
                .is_ok());
            assert!(scale.evaluation_config().validate().is_ok());
            assert!(scale.train_ber() > 0.0 && scale.train_ber() < 0.1);
        }
        assert_eq!(ExperimentScale::Smoke.default_policy().name(), "MLP");
        assert_eq!(ExperimentScale::Paper.default_policy().name(), "C3F2");
    }

    #[test]
    fn smoke_policy_pair_trains_end_to_end() {
        let scale = ExperimentScale::Smoke;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let env_cfg = scale.navigation_config(ObstacleDensity::Sparse);
        let pair =
            train_policy_pair(&env_cfg, &scale.default_policy(), scale, &mut rng).unwrap();
        assert_eq!(pair.classical.param_count(), pair.berry.param_count());
        // The two training procedures produce genuinely different policies.
        assert_ne!(pair.classical.to_flat_weights(), pair.berry.to_flat_weights());
    }

    #[test]
    fn format_table_aligns_columns() {
        let table = format_table(
            &["Voltage", "Success"],
            &[
                vec!["1.00".to_string(), "88.4".to_string()],
                vec!["0.77".to_string(), "88.6".to_string()],
            ],
        );
        assert!(table.contains("| Voltage | Success |"));
        assert!(table.lines().count() == 4);
        for line in table.lines() {
            assert!(line.starts_with('|') && line.ends_with('|'));
        }
    }
}
