//! Robustness experiments: paper Table I and Fig. 3.
//!
//! Table I reports the navigation success rate of the classical DQN policy
//! and the BERRY policy at increasing bit-error rates; Fig. 3 extends the
//! same sweep with the mission-level flight energy, showing that robustness
//! to higher error rates is what unlocks the energy-optimal low-voltage
//! operating points.

use crate::evaluate::{
    evaluate_error_free, evaluate_mission_seeded, evaluate_under_faults_seeded, MissionContext,
};
use crate::experiment::{format_table, ExperimentScale, PolicyPair};
use crate::Result;
use berry_uav::env::NavigationEnv;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The bit-error rates (in percent) of the paper's Table I columns.
pub const TABLE1_BER_PERCENTS: [f64; 5] = [0.01, 0.05, 0.1, 0.5, 1.0];

/// One (scheme, bit-error-rate) cell of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// "Classical" or "BERRY".
    pub scheme: String,
    /// Error-free success rate in percent.
    pub error_free_success_pct: f64,
    /// Success rate (percent) at each of [`TABLE1_BER_PERCENTS`].
    pub success_pct_at_ber: Vec<f64>,
}

/// Runs the Table I robustness comparison for an already-trained policy
/// pair.
///
/// The per-BER columns of each scheme fan out across cores (and each
/// column's fault-map averaging fans out further); per-column seeds are
/// drawn from `rng` up front in a fixed order, so the table is identical
/// for any worker count.
///
/// # Errors
///
/// Returns an error if evaluation fails.
pub fn table1_robustness<R: Rng>(
    pair: &PolicyPair,
    scale: ExperimentScale,
    rng: &mut R,
) -> Result<Vec<Table1Row>> {
    let eval_cfg = scale.evaluation_config();
    let context = MissionContext::crazyflie_c3f2();
    let env_proto = NavigationEnv::new(pair.env_config.clone())?;
    let mut rows = Vec::with_capacity(2);
    for (name, policy) in [("Classical", &pair.classical), ("BERRY", &pair.berry)] {
        let env = env_proto.clone();
        let error_free = evaluate_error_free(policy, &env, &eval_cfg, rng)?;
        let points: Vec<(f64, u64)> = TABLE1_BER_PERCENTS
            .iter()
            .map(|&ber_pct| (ber_pct, rng.next_u64()))
            .collect();
        let success_pct_at_ber = points
            .into_par_iter()
            .map(|(ber_pct, seed)| {
                evaluate_under_faults_seeded(
                    policy,
                    &env_proto,
                    &context.chip,
                    ber_pct / 100.0,
                    &eval_cfg,
                    seed,
                )
                .map(|stats| stats.success_rate * 100.0)
            })
            .collect::<Result<Vec<f64>>>()?;
        rows.push(Table1Row {
            scheme: name.to_string(),
            error_free_success_pct: error_free.success_rate * 100.0,
            success_pct_at_ber,
        });
    }
    Ok(rows)
}

/// Formats Table I like the paper.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut headers = vec!["Scheme".to_string(), "Error-Free %".to_string()];
    headers.extend(TABLE1_BER_PERCENTS.iter().map(|p| format!("p={p}%")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![
                r.scheme.clone(),
                format!("{:.1}", r.error_free_success_pct),
            ];
            cells.extend(r.success_pct_at_ber.iter().map(|v| format!("{v:.1}")));
            cells
        })
        .collect();
    format_table(&header_refs, &body)
}

/// One point of the Fig. 3 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// "Classical" or "BERRY".
    pub scheme: String,
    /// Bit error rate in percent.
    pub ber_percent: f64,
    /// Flight success rate in percent.
    pub success_pct: f64,
    /// Single-mission flight energy in joules (at the voltage whose BER
    /// equals `ber_percent` on the evaluation chip, clamped to the model's
    /// minimum supported voltage).
    pub flight_energy_j: f64,
}

/// Runs the Fig. 3 sweep: success rate and flight energy vs bit-error rate.
///
/// All (scheme, BER) points fan out across cores; per-point seeds are drawn
/// from `rng` up front in sweep order, so the series is identical for any
/// worker count.
///
/// # Errors
///
/// Returns an error if evaluation fails.
pub fn fig3_ber_sweep<R: Rng>(
    pair: &PolicyPair,
    ber_percents: &[f64],
    scale: ExperimentScale,
    rng: &mut R,
) -> Result<Vec<Fig3Row>> {
    let eval_cfg = scale.evaluation_config();
    let context = MissionContext::crazyflie_c3f2();
    let env_proto = NavigationEnv::new(pair.env_config.clone())?;
    let points: Vec<(&str, &berry_nn::network::Sequential, f64, u64)> =
        [("Classical", &pair.classical), ("BERRY", &pair.berry)]
            .into_iter()
            .flat_map(|(name, policy)| {
                ber_percents.iter().map(move |&ber_pct| (name, policy, ber_pct))
            })
            .map(|(name, policy, ber_pct)| (name, policy, ber_pct, rng.next_u64()))
            .collect();
    points
        .into_par_iter()
        .map(|(name, policy, ber_pct, seed)| {
            // Find the voltage whose BER matches this point, so that the
            // mission model charges the right processing/heatsink cost.
            let voltage = context
                .chip
                .ber_model()
                .min_voltage_for_ber(ber_pct / 100.0)?
                .max(0.62);
            let mission =
                evaluate_mission_seeded(policy, &env_proto, &context, voltage, &eval_cfg, seed)?;
            Ok(Fig3Row {
                scheme: name.to_string(),
                ber_percent: ber_pct,
                success_pct: mission.navigation.success_rate * 100.0,
                flight_energy_j: mission.quality_of_flight.flight_energy_j,
            })
        })
        .collect()
}

/// The default bit-error-rate grid of Fig. 3 (10⁻³ % … 1 %).
pub fn fig3_default_ber_percents() -> Vec<f64> {
    vec![0.001, 0.01, 0.05, 0.1, 0.5, 1.0]
}

/// Formats the Fig. 3 series as a table.
pub fn format_fig3(rows: &[Fig3Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.3}", r.ber_percent),
                format!("{:.1}", r.success_pct),
                format!("{:.1}", r.flight_energy_j),
            ]
        })
        .collect();
    format_table(
        &["Scheme", "BER %", "Success %", "Flight Energy (J)"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::train_policy_pair;
    use berry_uav::world::ObstacleDensity;
    use rand::SeedableRng;

    fn smoke_pair(seed: u64) -> PolicyPair {
        let scale = ExperimentScale::Smoke;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let env_cfg = scale.navigation_config(ObstacleDensity::Sparse);
        train_policy_pair(&env_cfg, &scale.default_policy(), scale, &mut rng).unwrap()
    }

    #[test]
    fn table1_has_two_schemes_and_all_ber_columns() {
        let pair = smoke_pair(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rows = table1_robustness(&pair, ExperimentScale::Smoke, &mut rng).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.success_pct_at_ber.len(), TABLE1_BER_PERCENTS.len());
            for v in &row.success_pct_at_ber {
                assert!((0.0..=100.0).contains(v));
            }
        }
        let text = format_table1(&rows);
        assert!(text.contains("BERRY"));
        assert!(text.contains("p=0.5%"));
    }

    #[test]
    fn fig3_rows_cover_both_schemes_and_all_points() {
        let pair = smoke_pair(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let points = vec![0.01, 0.5];
        let rows = fig3_ber_sweep(&pair, &points, ExperimentScale::Smoke, &mut rng).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.flight_energy_j > 0.0));
        let text = format_fig3(&rows);
        assert!(text.contains("Flight Energy"));
        assert_eq!(fig3_default_ber_percents().len(), 6);
    }
}
