//! Robustness experiments: paper Table I and Fig. 3.
//!
//! Table I reports the navigation success rate of the classical DQN policy
//! and the BERRY policy at increasing bit-error rates; Fig. 3 extends the
//! same sweep with the mission-level flight energy, showing that robustness
//! to higher error rates is what unlocks the energy-optimal low-voltage
//! operating points.
//!
//! Both artefacts are **declarative campaign requests**: one grid cell
//! (medium density, Crazyflie, C3F2, offline learning, generic chip) plus
//! one [`EvalAxis`] per table column, executed through the campaign
//! engine's axes-only path ([`run_axes_grid_in`]) against a shared
//! [`PolicyStore`] — the policy pair is trained at most once no matter
//! how many artefacts ask for it.

use crate::campaign::{run_axes_grid_in, EvalAxis, OperatingPoint, PolicyRole};
use crate::experiment::{artifact_scenario, format_table, ExperimentScale};
use crate::store::PolicyStore;
use crate::Result;
use berry_uav::platform::UavPlatform;
use berry_uav::world::ObstacleDensity;
use serde::{Deserialize, Serialize};

/// The bit-error rates (in percent) of the paper's Table I columns.
pub const TABLE1_BER_PERCENTS: [f64; 5] = [0.01, 0.05, 0.1, 0.5, 1.0];

/// One (scheme, bit-error-rate) cell of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// "Classical" or "BERRY".
    pub scheme: String,
    /// Error-free success rate in percent.
    pub error_free_success_pct: f64,
    /// Success rate (percent) at each of [`TABLE1_BER_PERCENTS`].
    pub success_pct_at_ber: Vec<f64>,
}

/// Runs the Table I robustness comparison through the campaign engine,
/// pulling the policy pair from `store`.
///
/// Per-axis seeds derive from the cell's seed stream (the existing
/// splitmix families), so the table is identical for any worker count and
/// for a cold or warm store.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn table1_robustness(
    store: &PolicyStore,
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<Table1Row>> {
    let grid = vec![artifact_scenario(
        ObstacleDensity::Medium,
        &UavPlatform::crazyflie(),
        "C3F2",
    )];
    let mut axes = Vec::new();
    for role in [PolicyRole::Classical, PolicyRole::Berry] {
        axes.push(EvalAxis::new(
            format!("{}:error-free", role.label()),
            role,
            OperatingPoint::ErrorFree,
        ));
        for &ber_pct in &TABLE1_BER_PERCENTS {
            axes.push(EvalAxis::new(
                format!("{}:ber={ber_pct}%", role.label()),
                role,
                OperatingPoint::Ber(ber_pct / 100.0),
            ));
        }
    }
    let rows = run_axes_grid_in(&grid, scale, base_seed, store, &axes)?;
    let cell = &rows[0];
    let per_scheme = TABLE1_BER_PERCENTS.len() + 1;
    Ok([PolicyRole::Classical, PolicyRole::Berry]
        .into_iter()
        .enumerate()
        .map(|(i, role)| {
            let chunk = &cell.axis_results[i * per_scheme..(i + 1) * per_scheme];
            Table1Row {
                scheme: role.label().to_string(),
                error_free_success_pct: chunk[0].nav.success_rate * 100.0,
                success_pct_at_ber: chunk[1..]
                    .iter()
                    .map(|r| r.nav.success_rate * 100.0)
                    .collect(),
            }
        })
        .collect())
}

/// Formats Table I like the paper.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut headers = vec!["Scheme".to_string(), "Error-Free %".to_string()];
    headers.extend(TABLE1_BER_PERCENTS.iter().map(|p| format!("p={p}%")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![
                r.scheme.clone(),
                format!("{:.1}", r.error_free_success_pct),
            ];
            cells.extend(r.success_pct_at_ber.iter().map(|v| format!("{v:.1}")));
            cells
        })
        .collect();
    format_table(&header_refs, &body)
}

/// One point of the Fig. 3 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// "Classical" or "BERRY".
    pub scheme: String,
    /// Bit error rate in percent.
    pub ber_percent: f64,
    /// Flight success rate in percent.
    pub success_pct: f64,
    /// Single-mission flight energy in joules (at the voltage whose BER
    /// equals `ber_percent` on the evaluation chip, clamped to the shared
    /// deployment-voltage floor).
    pub flight_energy_j: f64,
}

/// Runs the Fig. 3 sweep — success rate and flight energy vs bit-error
/// rate — as a campaign request: one cell, one mission-level axis per
/// (scheme, BER) point.
///
/// # Errors
///
/// Returns an error if training or evaluation fails.
pub fn fig3_ber_sweep(
    store: &PolicyStore,
    ber_percents: &[f64],
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<Fig3Row>> {
    let grid = vec![artifact_scenario(
        ObstacleDensity::Medium,
        &UavPlatform::crazyflie(),
        "C3F2",
    )];
    let mut axes = Vec::new();
    for role in [PolicyRole::Classical, PolicyRole::Berry] {
        for &ber_pct in ber_percents {
            axes.push(EvalAxis::new(
                format!("{}:ber={ber_pct}%", role.label()),
                role,
                OperatingPoint::MissionAtBer(ber_pct / 100.0),
            ));
        }
    }
    let rows = run_axes_grid_in(&grid, scale, base_seed, store, &axes)?;
    let cell = &rows[0];
    cell.axis_results
        .iter()
        .zip(
            [PolicyRole::Classical, PolicyRole::Berry]
                .into_iter()
                .flat_map(|role| ber_percents.iter().map(move |&p| (role, p))),
        )
        .map(|(result, (role, ber_pct))| {
            Ok(Fig3Row {
                scheme: role.label().to_string(),
                ber_percent: ber_pct,
                success_pct: result.nav.success_rate * 100.0,
                flight_energy_j: super::qof_of(result)?.flight_energy_j,
            })
        })
        .collect()
}

/// The default bit-error-rate grid of Fig. 3 (10⁻³ % … 1 %).
pub fn fig3_default_ber_percents() -> Vec<f64> {
    vec![0.001, 0.01, 0.05, 0.1, 0.5, 1.0]
}

/// Formats the Fig. 3 series as a table.
pub fn format_fig3(rows: &[Fig3Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.3}", r.ber_percent),
                format!("{:.1}", r.success_pct),
                format!("{:.1}", r.flight_energy_j),
            ]
        })
        .collect();
    format_table(
        &["Scheme", "BER %", "Success %", "Flight Energy (J)"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_two_schemes_and_all_ber_columns() {
        let store = PolicyStore::in_memory();
        let rows = table1_robustness(&store, ExperimentScale::Smoke, 2).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(store.stats().trained, 1);
        for row in &rows {
            assert_eq!(row.success_pct_at_ber.len(), TABLE1_BER_PERCENTS.len());
            for v in &row.success_pct_at_ber {
                assert!((0.0..=100.0).contains(v));
            }
        }
        let text = format_table1(&rows);
        assert!(text.contains("BERRY"));
        assert!(text.contains("p=0.5%"));
    }

    #[test]
    fn fig3_rows_cover_both_schemes_and_all_points() {
        let store = PolicyStore::in_memory();
        let points = vec![0.01, 0.5];
        let rows = fig3_ber_sweep(&store, &points, ExperimentScale::Smoke, 4).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.flight_energy_j > 0.0));
        assert_eq!(rows[0].scheme, "Classical");
        assert_eq!(rows[3].scheme, "BERRY");
        assert_eq!(rows[1].ber_percent, 0.5);
        let text = format_fig3(&rows);
        assert!(text.contains("Flight Energy"));
        assert_eq!(fig3_default_ber_percents().len(), 6);
    }

    #[test]
    fn table1_and_fig3_share_one_trained_pair() {
        let store = PolicyStore::in_memory();
        table1_robustness(&store, ExperimentScale::Smoke, 6).unwrap();
        fig3_ber_sweep(&store, &[0.01], ExperimentScale::Smoke, 6).unwrap();
        let stats = store.stats();
        assert_eq!(stats.trained, 1, "the two artefacts must share the pair");
        assert_eq!(stats.memory_hits, 1);
    }
}
