//! # berry-core
//!
//! BERRY: **B**it **E**rror **R**obustness for Energy-Efficient
//! **R**einforcement-Learning-Based Autonomous S**y**stems — a Rust
//! reproduction of the DAC 2023 paper.
//!
//! Low-voltage operation of the on-board accelerator saves a quadratic
//! amount of compute energy and, through the thermal → payload → velocity
//! chain, a significant amount of *flight* energy — but it also flips bits
//! in the SRAM holding the navigation policy's quantized weights, which
//! wrecks the mission success rate of a classically trained DQN.  BERRY
//! fixes this with *error-aware training*: every optimizer step combines the
//! gradient of the clean Q-network with the gradient computed through a
//! bit-error-perturbed copy of the network (the paper's Algorithm 1), either
//! offline with random fault maps (generalizing across chips and voltages)
//! or on-device against the deployed chip's actual fault pattern.
//!
//! The crate is organized as:
//!
//! * [`perturb`] — quantize a policy, inject a fault map into its bytes and
//!   dequantize it back (the `BErr_p(θ)` operator of Algorithm 1 line 15),
//! * [`robust`] — the BERRY trainer (offline and on-device modes) built on
//!   the classical DQN substrate from `berry-rl`,
//! * [`evaluate`] — fault-map-averaged policy evaluation and the full
//!   mission-level (quality-of-flight) evaluation pipeline,
//! * [`scenario`] — the 72-scenario evaluation grid of the paper's
//!   Section V (plus the extended disturbance-variant grid),
//! * [`campaign`] — the sharded, deterministically seeded engine that
//!   trains and fault-evaluates the whole scenario grid end to end,
//! * [`experiment`] — one module per table/figure of the paper's evaluation,
//!   each regenerating its rows from scratch,
//! * [`failpoint`] — deterministic fault injection (chaos testing) for the
//!   store → campaign → serve → client pipeline, compiled to no-ops
//!   unless the `failpoints` feature is on,
//! * [`seed`] — the central registry of every seed-derivation family
//!   (SplitMix64 mixers, FNV-1a hashing); the `seed-registry` house lint
//!   forbids these constants anywhere else.
//!
//! ## Example: robust offline training on the navigation task
//!
//! ```no_run
//! use berry_core::robust::{train_berry, BerryConfig, LearningMode};
//! use berry_rl::policy::QNetworkSpec;
//! use berry_rl::trainer::TrainerConfig;
//! use berry_uav::env::{NavigationConfig, NavigationEnv};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), berry_core::CoreError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut env = NavigationEnv::new(NavigationConfig::default())?;
//! let config = BerryConfig {
//!     trainer: TrainerConfig::default(),
//!     mode: LearningMode::offline(0.005),
//!     ..BerryConfig::default()
//! };
//! let outcome = train_berry(&mut env, &QNetworkSpec::C3F2, &config, &mut rng)?;
//! println!("trained for {} steps", outcome.report.total_train_steps);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod error;
pub mod evaluate;
pub mod experiment;
pub mod failpoint;
pub mod perturb;
pub mod robust;
pub mod rows;
pub mod scenario;
pub mod seed;
pub mod store;

pub use campaign::{
    pair_request_for, plan_cells, run_axes_grid_in, run_campaign, run_campaign_in,
    run_campaign_serial, run_grid, run_grid_resumable_in, run_grid_serial, run_grid_serial_in,
    run_grid_streamed, run_grid_streamed_in, scenario_seed, AxisCell, AxisResult, CampaignConfig,
    CampaignRow,
    CampaignSummary, CellPlan, CompletedSet, EvalAxis, OperatingPoint, PolicyRole, SchedulerStats,
};
pub use rows::{
    encode_json_f64, encode_json_string, load_resume_state, parse_json_line, JsonValue,
    ParsedRow, ResumeState,
};
pub use error::CoreError;
pub use failpoint::Action as FailpointAction;
pub use evaluate::{FaultEvaluationConfig, MissionEvaluation};
pub use perturb::NetworkPerturber;
pub use robust::{train_berry, BerryConfig, BerryOutcome, LearningMode};
pub use scenario::{Scenario, DEPLOY_VOLTAGE_FLOOR_NORM};
pub use store::{PairRequest, PolicyStore, StoreStats, TrainedPair};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
