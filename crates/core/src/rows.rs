//! JSON-lines parsing of campaign row artifacts — the read side of
//! [`crate::campaign::CampaignRow::to_json_line`], which is what makes
//! `--resume` possible.
//!
//! The workspace vendors a serde API shim without a JSON backend, so this
//! module carries a deliberately minimal hand-rolled JSON reader: just the
//! grammar `to_json_line` emits (objects, strings, numbers, arrays),
//! parsed exactly.  Floats round-trip bit-for-bit because the writer uses
//! `{:?}` (shortest-repr) formatting and the reader uses
//! `f64::from_str`, which inverts it — the round-trip tests in this
//! module and `tests/campaign_resume.rs` pin that property, and the CI
//! interrupt-resume job relies on it for byte-identical artifacts.
//!
//! [`load_resume_state`] layers the resume semantics on top: every line of
//! an existing `rows.jsonl` is parsed and validated against the campaign's
//! [`CellPlan`] list, duplicates keep their first occurrence, and a
//! truncated **last** line (the signature of a killed run) is dropped so
//! its cell simply re-runs.  Corruption anywhere else is a hard error —
//! resuming a file that does not match the plan would silently stitch two
//! different campaigns together.

use crate::campaign::{CampaignRow, CellPlan, CompletedSet};
use crate::error::CoreError;
use crate::scenario::Scenario;
use crate::Result;
use berry_hw::accelerator::ProcessingReport;
use berry_rl::eval::EvalStats;
use berry_uav::flight::QualityOfFlight;
use std::collections::BTreeMap;

/// A minimal JSON value — only what campaign row lines contain.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    /// Key/value pairs in source order.
    Object(Vec<(String, JsonValue)>),
    /// Array elements in source order.
    Array(Vec<JsonValue>),
    /// A decoded string.
    String(String),
    /// A number kept as its raw token, parsed on access so integers stay
    /// exact and floats round-trip.
    Number(String),
}

impl JsonValue {
    fn get<'a>(&'a self, key: &str) -> Result<&'a JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| parse_error(format!("missing key `{key}`"))),
            _ => Err(parse_error(format!("expected object looking up `{key}`"))),
        }
    }

    fn str_field(&self, key: &str) -> Result<String> {
        match self.get(key)? {
            JsonValue::String(s) => Ok(s.clone()),
            _ => Err(parse_error(format!("key `{key}` is not a string"))),
        }
    }

    fn f64_field(&self, key: &str) -> Result<f64> {
        match self.get(key)? {
            JsonValue::Number(raw) => raw
                .parse::<f64>()
                .map_err(|_| parse_error(format!("key `{key}`: bad float `{raw}`"))),
            _ => Err(parse_error(format!("key `{key}` is not a number"))),
        }
    }

    fn u64_field(&self, key: &str) -> Result<u64> {
        match self.get(key)? {
            JsonValue::Number(raw) => raw
                .parse::<u64>()
                .map_err(|_| parse_error(format!("key `{key}`: bad integer `{raw}`"))),
            _ => Err(parse_error(format!("key `{key}` is not a number"))),
        }
    }

    fn usize_field(&self, key: &str) -> Result<usize> {
        self.u64_field(key).map(|v| v as usize)
    }
}

fn parse_error(detail: impl std::fmt::Display) -> CoreError {
    CoreError::InvalidConfig(format!("campaign row parse error: {detail}"))
}

/// Recursive-descent reader over one line's bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(parse_error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(_) => self.number(),
            None => Err(parse_error("unexpected end of line")),
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(parse_error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(parse_error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(parse_error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| parse_error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| parse_error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| parse_error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| parse_error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(parse_error(format!("unsupported escape `{other:?}`")))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings are valid UTF-8 by construction of the input
                    // `&str`; copy whole code points.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| parse_error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b',' | b'}' | b']' | b':') || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if start == self.pos {
            return Err(parse_error(format!("expected a number at byte {start}")));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| parse_error("invalid UTF-8 in number"))?;
        // Validate now so garbage fails at parse time, not on field access.
        raw.parse::<f64>()
            .map_err(|_| parse_error(format!("bad number token `{raw}`")))?;
        Ok(JsonValue::Number(raw.to_string()))
    }

    fn finish(mut self, value: JsonValue) -> Result<JsonValue> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(value)
        } else {
            Err(parse_error(format!("trailing bytes at {}", self.pos)))
        }
    }
}

fn eval_stats(value: &JsonValue) -> Result<EvalStats> {
    Ok(EvalStats {
        episodes: value.usize_field("episodes")?,
        success_rate: value.f64_field("success_rate")?,
        collision_rate: value.f64_field("collision_rate")?,
        timeout_rate: value.f64_field("timeout_rate")?,
        mean_return: value.f64_field("mean_return")?,
        mean_steps: value.f64_field("mean_steps")?,
        mean_distance: value.f64_field("mean_distance")?,
        mean_success_distance: value.f64_field("mean_success_distance")?,
    })
}

fn processing_report(value: &JsonValue) -> Result<ProcessingReport> {
    Ok(ProcessingReport {
        voltage_norm: value.f64_field("voltage_norm")?,
        frequency_hz: value.f64_field("frequency_hz")?,
        latency_s: value.f64_field("latency_s")?,
        energy_per_inference_j: value.f64_field("energy_per_inference_j")?,
        compute_power_w: value.f64_field("compute_power_w")?,
        savings_vs_nominal: value.f64_field("savings_vs_nominal")?,
        savings_vs_vmin: value.f64_field("savings_vs_vmin")?,
        tdp_w: value.f64_field("tdp_w")?,
        heatsink_mass_g: value.f64_field("heatsink_mass_g")?,
        utilization: value.f64_field("utilization")?,
    })
}

fn quality_of_flight(value: &JsonValue) -> Result<QualityOfFlight> {
    Ok(QualityOfFlight {
        success_rate: value.f64_field("success_rate")?,
        flight_distance_m: value.f64_field("flight_distance_m")?,
        flight_time_s: value.f64_field("flight_time_s")?,
        flight_energy_j: value.f64_field("flight_energy_j")?,
        rotor_power_w: value.f64_field("rotor_power_w")?,
        compute_power_w: value.f64_field("compute_power_w")?,
        num_missions: value.f64_field("num_missions")?,
    })
}

/// One campaign row decoded from its JSON line — everything
/// [`CampaignRow::to_json_line`] wrote, minus the [`Scenario`] struct
/// itself (the line carries the scenario's labels; the full struct comes
/// from the [`CellPlan`] at [`ParsedRow::into_row`] time).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRow {
    /// Position of the scenario in the campaign grid.
    pub index: usize,
    /// The scenario identifier recorded on the line.
    pub id: String,
    /// Scenario label fields, in `to_json_line` order: density, platform,
    /// policy, mode, chip, variant.
    pub labels: [String; 6],
    /// The per-scenario RNG seed recorded on the line.
    pub seed: u64,
    /// Deployment voltage in Vmin units.
    pub voltage_norm: f64,
    /// Bit error rate at that voltage.
    pub ber: f64,
    /// Classical trailing-window training success.
    pub classical_train_success: f64,
    /// BERRY trailing-window training success.
    pub berry_train_success: f64,
    /// Number of BERRY dual-pass optimizer updates.
    pub robust_updates: u64,
    /// Deploy-point navigation statistics of the classical baseline.
    pub classical_nav: EvalStats,
    /// Deploy-point navigation statistics of the BERRY policy.
    pub berry_nav: EvalStats,
    /// Accelerator processing figures.
    pub processing: ProcessingReport,
    /// Mission-level quality-of-flight metrics.
    pub quality_of_flight: QualityOfFlight,
}

impl ParsedRow {
    /// Parses one `rows.jsonl` line.
    ///
    /// # Errors
    ///
    /// Returns an error if the line is not a complete row record — a
    /// truncated line fails here, which is how [`load_resume_state`]
    /// detects a killed run's final partial write.
    pub fn parse(line: &str) -> Result<Self> {
        let mut reader = Reader::new(line);
        let value = reader.value()?;
        let value = reader.finish(value)?;
        Ok(Self {
            index: value.usize_field("index")?,
            id: value.str_field("id")?,
            labels: [
                value.str_field("density")?,
                value.str_field("platform")?,
                value.str_field("policy")?,
                value.str_field("mode")?,
                value.str_field("chip")?,
                value.str_field("variant")?,
            ],
            seed: value.u64_field("seed")?,
            voltage_norm: value.f64_field("voltage_norm")?,
            ber: value.f64_field("ber")?,
            classical_train_success: value.f64_field("classical_train_success")?,
            berry_train_success: value.f64_field("berry_train_success")?,
            robust_updates: value.u64_field("robust_updates")?,
            classical_nav: eval_stats(value.get("classical_nav")?)?,
            berry_nav: eval_stats(value.get("berry_nav")?)?,
            processing: processing_report(value.get("processing")?)?,
            quality_of_flight: quality_of_flight(value.get("quality_of_flight")?)?,
        })
    }

    /// Checks that this row belongs to `cell` of the current campaign
    /// plan: same grid index, scenario id, labels, and seed.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first mismatching field — resuming a
    /// `rows.jsonl` from a different grid or base seed must fail loudly.
    pub fn matches(&self, cell: &CellPlan) -> Result<()> {
        let mismatch = |what: &str, got: &str, want: &str| {
            Err(CoreError::InvalidConfig(format!(
                "resume row {} does not match the campaign plan: {what} is `{got}`, \
                 the plan says `{want}` (different grid or base seed?)",
                self.index
            )))
        };
        if self.index != cell.index {
            return mismatch("index", &self.index.to_string(), &cell.index.to_string());
        }
        if self.id != cell.scenario.id() {
            return mismatch("id", &self.id, &cell.scenario.id());
        }
        if self.seed != cell.seed {
            return mismatch("seed", &self.seed.to_string(), &cell.seed.to_string());
        }
        let expected = [
            cell.scenario.density.label().to_string(),
            cell.scenario.platform.clone(),
            cell.scenario.policy.clone(),
            cell.scenario.mode.label().to_string(),
            cell.scenario.chip.clone(),
            cell.scenario.variant.label().to_string(),
        ];
        for ((name, got), want) in ["density", "platform", "policy", "mode", "chip", "variant"]
            .iter()
            .zip(&self.labels)
            .zip(&expected)
        {
            if got != want {
                return mismatch(name, got, want);
            }
        }
        Ok(())
    }

    /// Reassembles the full [`CampaignRow`], attaching the scenario struct
    /// from the plan.  Campaign row lines never carry axis results, so the
    /// reconstructed row has none — exactly like the row that wrote the
    /// line.
    #[must_use]
    pub fn into_row(self, scenario: &Scenario) -> CampaignRow {
        CampaignRow {
            index: self.index,
            id: self.id,
            scenario: scenario.clone(),
            seed: self.seed,
            voltage_norm: self.voltage_norm,
            ber: self.ber,
            classical_train_success: self.classical_train_success,
            berry_train_success: self.berry_train_success,
            robust_updates: self.robust_updates,
            classical_nav: self.classical_nav,
            berry_nav: self.berry_nav,
            processing: self.processing,
            quality_of_flight: self.quality_of_flight,
            axis_results: Vec::new(),
        }
    }
}

/// The validated contents of an existing `rows.jsonl`, ready to seed a
/// resumed campaign run.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    rows: BTreeMap<usize, (String, CampaignRow)>,
    /// Whether the file's last line was dropped as truncated (the
    /// signature of a killed run's final partial write) — its cell simply
    /// re-runs.
    pub dropped_truncated: bool,
    /// Number of duplicate row lines ignored (first occurrence wins).
    pub duplicates: usize,
}

impl ResumeState {
    /// The empty state — resuming a missing or empty file is a fresh run.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Grid indices that already have rows, as the engine's filter.
    pub fn completed(&self) -> CompletedSet {
        self.rows.keys().copied().collect()
    }

    /// Number of resumed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were resumed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The verbatim artifact line of a resumed cell — rewritten outputs
    /// reuse these bytes rather than reserializing, so a resumed artifact
    /// can only ever contain bytes some campaign run actually wrote.
    pub fn line(&self, index: usize) -> Option<&str> {
        self.rows.get(&index).map(|(line, _)| line.as_str())
    }

    /// The reconstructed row of a resumed cell.
    pub fn row(&self, index: usize) -> Option<&CampaignRow> {
        self.rows.get(&index).map(|(_, row)| row)
    }

    /// Resumed rows in grid order.
    pub fn rows_in_order(&self) -> impl Iterator<Item = &CampaignRow> {
        self.rows.values().map(|(_, row)| row)
    }
}

/// Parses and validates an existing `rows.jsonl` against the campaign
/// plan.
///
/// Semantics, in order of appearance:
/// * blank lines are skipped,
/// * every parsed row must [`ParsedRow::matches`] its plan cell,
/// * duplicate indices keep the **first** occurrence (later duplicates
///   must be byte-identical, else the file is corrupt),
/// * a final line that fails to parse is dropped as the truncated tail of
///   a killed run ([`ResumeState::dropped_truncated`]); a non-final parse
///   failure is a hard error.
///
/// # Errors
///
/// Returns an error on mid-file corruption, rows whose index is outside
/// the plan, plan mismatches, or conflicting duplicates.
pub fn load_resume_state(text: &str, plan: &[CellPlan]) -> Result<ResumeState> {
    let mut state = ResumeState::empty();
    let lines: Vec<&str> = text.lines().collect();
    let last_non_blank = lines.iter().rposition(|l| !l.trim().is_empty());
    for (lineno, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match ParsedRow::parse(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                if Some(lineno) == last_non_blank {
                    state.dropped_truncated = true;
                    continue;
                }
                return Err(CoreError::InvalidConfig(format!(
                    "rows file line {}: {e}",
                    lineno + 1
                )));
            }
        };
        let cell = plan.get(parsed.index).ok_or_else(|| {
            CoreError::InvalidConfig(format!(
                "rows file line {}: row index {} is outside the {}-cell campaign plan",
                lineno + 1,
                parsed.index,
                plan.len()
            ))
        })?;
        parsed.matches(cell)?;
        if let Some((first_line, _)) = state.rows.get(&parsed.index) {
            if first_line != line {
                return Err(CoreError::InvalidConfig(format!(
                    "rows file line {}: conflicting duplicate of row {}",
                    lineno + 1,
                    parsed.index
                )));
            }
            state.duplicates += 1;
            continue;
        }
        let row = parsed.into_row(&cell.scenario);
        state.rows.insert(row.index, (line.to_string(), row));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{plan_cells, run_scenario_in, scenario_seed};
    use crate::experiment::ExperimentScale;
    use crate::store::PolicyStore;

    fn smoke_plan() -> (Vec<Scenario>, Vec<CellPlan>) {
        let grid: Vec<Scenario> = Scenario::smoke_grid().into_iter().take(2).collect();
        let plan = plan_cells(&grid, 5);
        (grid, plan)
    }

    fn smoke_row(plan: &[CellPlan], index: usize) -> CampaignRow {
        run_scenario_in(
            &plan[index].scenario,
            index,
            ExperimentScale::Smoke,
            plan[index].seed,
            5,
            &PolicyStore::in_memory(),
            &[],
        )
        .unwrap()
    }

    #[test]
    fn a_real_row_round_trips_bit_for_bit() {
        let (_, plan) = smoke_plan();
        let row = smoke_row(&plan, 0);
        let line = row.to_json_line();
        let parsed = ParsedRow::parse(&line).unwrap();
        parsed.matches(&plan[0]).unwrap();
        let rebuilt = parsed.into_row(&plan[0].scenario);
        assert_eq!(rebuilt, row);
        assert_eq!(rebuilt.to_json_line(), line, "byte-exact round trip");
    }

    #[test]
    fn parser_handles_escapes_and_scientific_notation() {
        let value = Reader::new(r#"{"a":"q\"uo\\te\nnl	tab","b":1.5e-7,"c":[1,2]}"#)
            .value()
            .unwrap();
        assert_eq!(value.str_field("a").unwrap(), "q\"uo\\te\nnl\ttab");
        assert_eq!(value.f64_field("b").unwrap(), 1.5e-7);
        assert_eq!(
            value.get("c").unwrap(),
            &JsonValue::Array(vec![
                JsonValue::Number("1".into()),
                JsonValue::Number("2".into())
            ])
        );
        // Exact integer fields stay exact at u64 range.
        let value = Reader::new("{\"seed\":18446744073709551615}").value().unwrap();
        assert_eq!(value.u64_field("seed").unwrap(), u64::MAX);
    }

    #[test]
    fn parse_rejects_truncated_and_trailing_garbage() {
        let (_, plan) = smoke_plan();
        let line = smoke_row(&plan, 0).to_json_line();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(
                ParsedRow::parse(&line[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
        assert!(ParsedRow::parse(&format!("{line}garbage")).is_err());
        assert!(ParsedRow::parse("{}").is_err(), "missing keys must not parse");
    }

    #[test]
    fn matches_rejects_other_campaigns() {
        let (_, plan) = smoke_plan();
        let row = smoke_row(&plan, 0);
        let parsed = ParsedRow::parse(&row.to_json_line()).unwrap();
        // Same line against the other cell: index mismatch.
        assert!(parsed.matches(&plan[1]).is_err());
        // A different base seed changes the planned seed.
        let other_seed_plan = plan_cells(&[plan[0].scenario.clone()], 6);
        let err = parsed.matches(&other_seed_plan[0]).unwrap_err();
        assert!(err.to_string().contains("seed"), "got: {err}");
    }

    #[test]
    fn resume_state_drops_only_a_truncated_last_line() {
        let (_, plan) = smoke_plan();
        let line0 = smoke_row(&plan, 0).to_json_line();
        let line1 = smoke_row(&plan, 1).to_json_line();

        // Fresh-equivalent inputs.
        for text in ["", "\n", "  \n\n"] {
            let state = load_resume_state(text, &plan).unwrap();
            assert!(state.is_empty());
            assert!(!state.dropped_truncated);
        }

        // A killed run's partial final write: last line truncated.
        let text = format!("{line0}\n{}", &line1[..line1.len() / 2]);
        let state = load_resume_state(&text, &plan).unwrap();
        assert_eq!(state.len(), 1);
        assert!(state.dropped_truncated);
        assert_eq!(state.completed().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(state.line(0), Some(line0.as_str()));
        assert_eq!(state.row(0).unwrap().index, 0);

        // The same truncation mid-file is corruption, not a resume point.
        let text = format!("{}\n{line1}", &line0[..line0.len() / 2]);
        assert!(load_resume_state(&text, &plan).is_err());

        // Duplicates: identical lines are counted and ignored...
        let text = format!("{line0}\n{line0}\n{line1}");
        let state = load_resume_state(&text, &plan).unwrap();
        assert_eq!(state.len(), 2);
        assert_eq!(state.duplicates, 1);
        assert_eq!(state.rows_in_order().map(|r| r.index).collect::<Vec<_>>(), vec![0, 1]);
        // ...but conflicting duplicates are corruption.
        let conflicting = line0.replace("\"index\":0,", "\"index\":0, ");
        assert!(ParsedRow::parse(&conflicting).is_ok(), "still valid JSON");
        let text = format!("{line0}\n{conflicting}");
        assert!(load_resume_state(&text, &plan).is_err());

        // Rows from outside the plan are rejected.
        let state = load_resume_state(&line1, &plan[..1]).map(|_| ());
        assert!(state.is_err());
    }

    #[test]
    fn resume_rows_reproduce_the_seed_protocol() {
        // A resumed row and a freshly computed row of the same cell are
        // the same row — the parser is a pure inverse, not a re-run.
        let (_, plan) = smoke_plan();
        let row = smoke_row(&plan, 1);
        let state = load_resume_state(&row.to_json_line(), &plan).unwrap();
        assert_eq!(state.row(1).unwrap(), &row);
        assert_eq!(state.row(1).unwrap().seed, scenario_seed(5, 1));
    }
}
