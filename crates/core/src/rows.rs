//! JSON-lines parsing of campaign row artifacts — the read side of
//! [`crate::campaign::CampaignRow::to_json_line`], which is what makes
//! `--resume` possible.
//!
//! The workspace vendors a serde API shim without a JSON backend, so this
//! module carries a deliberately minimal hand-rolled JSON reader: just the
//! grammar `to_json_line` emits (objects, strings, numbers, arrays, and
//! the `null`/`true`/`false` literals), parsed exactly.  Finite floats
//! round-trip bit-for-bit because the writer uses `{:?}` (shortest-repr)
//! formatting and the reader uses `f64::from_str`, which inverts it; a
//! **non-finite** float is written as `null` (valid JSON, unlike the
//! `NaN`/`inf` tokens `{:?}` would produce) and decodes back to
//! `f64::NAN`, so artifacts stay parseable by external JSON consumers and
//! the *line bytes* still round-trip exactly.  The round-trip tests in
//! this module and `tests/campaign_resume.rs` pin those properties, and
//! the CI interrupt-resume job relies on them for byte-identical
//! artifacts.
//!
//! Number tokens are validated against the JSON number grammar at scan
//! time — `inf`, `nan`, `+1.0`, `01` and friends are parse errors, not
//! values that break downstream — and the reader is exposed as
//! [`JsonValue`] / [`parse_json_line`] so other consumers (the
//! `berry-serve` wire protocol, the service client's row re-validation)
//! share one JSON reader instead of growing their own.
//!
//! [`load_resume_state`] layers the resume semantics on top: every line of
//! an existing `rows.jsonl` is parsed and validated against the campaign's
//! [`CellPlan`] list, duplicates keep their first occurrence, and a
//! truncated **last** line (the signature of a killed run) is dropped so
//! its cell simply re-runs.  Corruption anywhere else is a hard error —
//! resuming a file that does not match the plan would silently stitch two
//! different campaigns together.

// lint: codec — wire/persist format: length and index conversions must be overflow-checked

use crate::campaign::{CampaignRow, CellPlan, CompletedSet};
use crate::error::CoreError;
use crate::scenario::Scenario;
use crate::Result;
use berry_hw::accelerator::ProcessingReport;
use berry_rl::eval::EvalStats;
use berry_uav::flight::QualityOfFlight;
use std::collections::BTreeMap;

/// A minimal JSON value — the grammar campaign artifacts and the
/// `berry-serve` wire protocol are written in.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Key/value pairs in source order.
    Object(Vec<(String, JsonValue)>),
    /// Array elements in source order.
    Array(Vec<JsonValue>),
    /// A decoded string.
    String(String),
    /// A number kept as its raw token, parsed on access so integers stay
    /// exact and floats round-trip.
    Number(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null` — how the row writer spells a non-finite float.
    Null,
}

impl JsonValue {
    /// Looks up `key` in an object, erroring if absent (or not an object).
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks `key`.
    pub fn get<'a>(&'a self, key: &str) -> Result<&'a JsonValue> {
        self.key(key)
            .ok_or_else(|| parse_error(format!("missing key `{key}`")))
    }

    /// Looks up `key` in an object, returning `None` if absent — the
    /// accessor for optional protocol fields.
    pub fn key<'a>(&'a self, key: &str) -> Option<&'a JsonValue> {
        match self {
            JsonValue::Object(pairs) => {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Whether `self` is an object carrying `key` (used to sniff terminal
    /// status lines out of a row stream).
    pub fn has_key(&self, key: &str) -> bool {
        self.key(key).is_some()
    }

    /// The value as a string.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err(parse_error("expected a string")),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not an array.
    pub fn as_array(&self) -> Result<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err(parse_error("expected an array")),
        }
    }

    /// The value as a `u64` (exact integer tokens only).
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not an unsigned-integer number.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            JsonValue::Number(raw) => raw
                .parse::<u64>()
                .map_err(|_| parse_error(format!("bad integer `{raw}`"))),
            _ => Err(parse_error("expected a number")),
        }
    }

    /// The value as an `f64`; JSON `null` decodes to [`f64::NAN`] — the
    /// read-side inverse of the writer emitting `null` for non-finite
    /// floats.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not a number or `null`.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            JsonValue::Number(raw) => raw
                .parse::<f64>()
                .map_err(|_| parse_error(format!("bad float `{raw}`"))),
            JsonValue::Null => Ok(f64::NAN),
            _ => Err(parse_error("expected a number or null")),
        }
    }

    /// String field of an object.
    ///
    /// # Errors
    ///
    /// Returns an error if `key` is absent or not a string.
    pub fn str_field(&self, key: &str) -> Result<String> {
        self.get(key)?
            .as_str()
            .map(str::to_string)
            .map_err(|_| parse_error(format!("key `{key}` is not a string")))
    }

    /// Float field of an object (`null` → NaN, see [`JsonValue::as_f64`]).
    ///
    /// # Errors
    ///
    /// Returns an error if `key` is absent or neither number nor `null`.
    pub fn f64_field(&self, key: &str) -> Result<f64> {
        self.get(key)?
            .as_f64()
            .map_err(|_| parse_error(format!("key `{key}` is not a number")))
    }

    /// Unsigned-integer field of an object.
    ///
    /// # Errors
    ///
    /// Returns an error if `key` is absent or not an unsigned integer.
    pub fn u64_field(&self, key: &str) -> Result<u64> {
        self.get(key)?
            .as_u64()
            .map_err(|_| parse_error(format!("key `{key}` is not an integer")))
    }

    /// [`JsonValue::u64_field`] narrowed to `usize`.
    ///
    /// # Errors
    ///
    /// Returns an error if `key` is absent or not an unsigned integer.
    pub fn usize_field(&self, key: &str) -> Result<usize> {
        let v = self.u64_field(key)?;
        usize::try_from(v).map_err(|_| parse_error(format!("field `{key}` exceeds usize range")))
    }
}

/// Parses one complete JSON line (value plus end-of-input check) — the
/// shared entry point of every JSON-lines consumer in the workspace.
///
/// # Errors
///
/// Returns an error if the text is not exactly one JSON value.
pub fn parse_json_line(text: &str) -> Result<JsonValue> {
    let mut reader = Reader::new(text);
    let value = reader.value()?;
    reader.finish(value)
}

/// Serializes a string as a JSON string token (quotes, escapes) — the
/// write-side twin of the reader's string decoding.
#[must_use]
pub fn encode_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            // lint: allow(unchecked-len-cast) why: char to u32 is lossless by definition, not a length narrowing
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes an `f64` as a JSON number token: `{:?}` (shortest
/// round-trip repr) for finite values, `null` for NaN/infinities — `{:?}`
/// would emit the invalid tokens `NaN` / `inf` and silently corrupt the
/// artifact for any standards-conforming consumer.
#[must_use]
pub fn encode_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn parse_error(detail: impl std::fmt::Display) -> CoreError {
    CoreError::InvalidConfig(format!("campaign row parse error: {detail}"))
}

/// Recursive-descent reader over one line's bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(parse_error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(_) => self.number(),
            None => Err(parse_error("unexpected end of line")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(parse_error(format!(
                "expected `{word}` at byte {}",
                self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(parse_error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(parse_error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(parse_error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| parse_error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| parse_error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| parse_error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| parse_error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(parse_error(format!("unsupported escape `{other:?}`")))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings are valid UTF-8 by construction of the input
                    // `&str`; copy whole code points.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| parse_error("invalid UTF-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| parse_error("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b',' | b'}' | b']' | b':') || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if start == self.pos {
            return Err(parse_error(format!("expected a number at byte {start}")));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| parse_error("invalid UTF-8 in number"))?;
        // Validate against the JSON number grammar now, so garbage fails at
        // parse time, not on field access.  A bare `f64::from_str` check
        // would wave through `inf`, `nan`, `+1.0` and leading zeros — all
        // invalid JSON that only breaks downstream consumers.
        if !is_json_number(raw) {
            return Err(parse_error(format!("bad number token `{raw}`")));
        }
        Ok(JsonValue::Number(raw.to_string()))
    }

    fn finish(mut self, value: JsonValue) -> Result<JsonValue> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(value)
        } else {
            Err(parse_error(format!("trailing bytes at {}", self.pos)))
        }
    }
}

/// Whether `raw` matches the JSON number grammar:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
///
/// Strictly narrower than what `f64::from_str` accepts — no `inf`, `nan`,
/// leading `+`, leading zeros, trailing dot or bare exponent.
fn is_json_number(raw: &str) -> bool {
    let b = raw.as_bytes();
    let mut i = 0;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    // Integer part: `0` alone, or a nonzero digit followed by any digits.
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
        }
        _ => return false,
    }
    // Optional fraction: `.` followed by at least one digit.
    if b.get(i) == Some(&b'.') {
        i += 1;
        if !b.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
    }
    // Optional exponent: `e`/`E`, optional sign, at least one digit.
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !b.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
    }
    i == b.len()
}

fn eval_stats(value: &JsonValue) -> Result<EvalStats> {
    Ok(EvalStats {
        episodes: value.usize_field("episodes")?,
        success_rate: value.f64_field("success_rate")?,
        collision_rate: value.f64_field("collision_rate")?,
        timeout_rate: value.f64_field("timeout_rate")?,
        mean_return: value.f64_field("mean_return")?,
        mean_steps: value.f64_field("mean_steps")?,
        mean_distance: value.f64_field("mean_distance")?,
        mean_success_distance: value.f64_field("mean_success_distance")?,
    })
}

fn processing_report(value: &JsonValue) -> Result<ProcessingReport> {
    Ok(ProcessingReport {
        voltage_norm: value.f64_field("voltage_norm")?,
        frequency_hz: value.f64_field("frequency_hz")?,
        latency_s: value.f64_field("latency_s")?,
        energy_per_inference_j: value.f64_field("energy_per_inference_j")?,
        compute_power_w: value.f64_field("compute_power_w")?,
        savings_vs_nominal: value.f64_field("savings_vs_nominal")?,
        savings_vs_vmin: value.f64_field("savings_vs_vmin")?,
        tdp_w: value.f64_field("tdp_w")?,
        heatsink_mass_g: value.f64_field("heatsink_mass_g")?,
        utilization: value.f64_field("utilization")?,
    })
}

fn quality_of_flight(value: &JsonValue) -> Result<QualityOfFlight> {
    Ok(QualityOfFlight {
        success_rate: value.f64_field("success_rate")?,
        flight_distance_m: value.f64_field("flight_distance_m")?,
        flight_time_s: value.f64_field("flight_time_s")?,
        flight_energy_j: value.f64_field("flight_energy_j")?,
        rotor_power_w: value.f64_field("rotor_power_w")?,
        compute_power_w: value.f64_field("compute_power_w")?,
        num_missions: value.f64_field("num_missions")?,
    })
}

/// One campaign row decoded from its JSON line — everything
/// [`CampaignRow::to_json_line`] wrote, minus the [`Scenario`] struct
/// itself (the line carries the scenario's labels; the full struct comes
/// from the [`CellPlan`] at [`ParsedRow::into_row`] time).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRow {
    /// Position of the scenario in the campaign grid.
    pub index: usize,
    /// The scenario identifier recorded on the line.
    pub id: String,
    /// Scenario label fields, in `to_json_line` order: density, platform,
    /// policy, mode, chip, variant.
    pub labels: [String; 6],
    /// The per-scenario RNG seed recorded on the line.
    pub seed: u64,
    /// Deployment voltage in Vmin units.
    pub voltage_norm: f64,
    /// Bit error rate at that voltage.
    pub ber: f64,
    /// Classical trailing-window training success.
    pub classical_train_success: f64,
    /// BERRY trailing-window training success.
    pub berry_train_success: f64,
    /// Number of BERRY dual-pass optimizer updates.
    pub robust_updates: u64,
    /// Deploy-point navigation statistics of the classical baseline.
    pub classical_nav: EvalStats,
    /// Deploy-point navigation statistics of the BERRY policy.
    pub berry_nav: EvalStats,
    /// Accelerator processing figures.
    pub processing: ProcessingReport,
    /// Mission-level quality-of-flight metrics.
    pub quality_of_flight: QualityOfFlight,
}

impl ParsedRow {
    /// Parses one `rows.jsonl` line.
    ///
    /// # Errors
    ///
    /// Returns an error if the line is not a complete row record — a
    /// truncated line fails here, which is how [`load_resume_state`]
    /// detects a killed run's final partial write.
    pub fn parse(line: &str) -> Result<Self> {
        let value = parse_json_line(line)?;
        Ok(Self {
            index: value.usize_field("index")?,
            id: value.str_field("id")?,
            labels: [
                value.str_field("density")?,
                value.str_field("platform")?,
                value.str_field("policy")?,
                value.str_field("mode")?,
                value.str_field("chip")?,
                value.str_field("variant")?,
            ],
            seed: value.u64_field("seed")?,
            voltage_norm: value.f64_field("voltage_norm")?,
            ber: value.f64_field("ber")?,
            classical_train_success: value.f64_field("classical_train_success")?,
            berry_train_success: value.f64_field("berry_train_success")?,
            robust_updates: value.u64_field("robust_updates")?,
            classical_nav: eval_stats(value.get("classical_nav")?)?,
            berry_nav: eval_stats(value.get("berry_nav")?)?,
            processing: processing_report(value.get("processing")?)?,
            quality_of_flight: quality_of_flight(value.get("quality_of_flight")?)?,
        })
    }

    /// Checks that this row belongs to `cell` of the current campaign
    /// plan: same grid index, scenario id, labels, and seed.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first mismatching field — resuming a
    /// `rows.jsonl` from a different grid or base seed must fail loudly.
    pub fn matches(&self, cell: &CellPlan) -> Result<()> {
        let mismatch = |what: &str, got: &str, want: &str| {
            Err(CoreError::InvalidConfig(format!(
                "resume row {} does not match the campaign plan: {what} is `{got}`, \
                 the plan says `{want}` (different grid or base seed?)",
                self.index
            )))
        };
        if self.index != cell.index {
            return mismatch("index", &self.index.to_string(), &cell.index.to_string());
        }
        if self.id != cell.scenario.id() {
            return mismatch("id", &self.id, &cell.scenario.id());
        }
        if self.seed != cell.seed {
            return mismatch("seed", &self.seed.to_string(), &cell.seed.to_string());
        }
        let expected = [
            cell.scenario.density.label().to_string(),
            cell.scenario.platform.clone(),
            cell.scenario.policy.clone(),
            cell.scenario.mode.label().to_string(),
            cell.scenario.chip.clone(),
            cell.scenario.variant.label().to_string(),
        ];
        for ((name, got), want) in ["density", "platform", "policy", "mode", "chip", "variant"]
            .iter()
            .zip(&self.labels)
            .zip(&expected)
        {
            if got != want {
                return mismatch(name, got, want);
            }
        }
        Ok(())
    }

    /// Reassembles the full [`CampaignRow`], attaching the scenario struct
    /// from the plan.  Campaign row lines never carry axis results, so the
    /// reconstructed row has none — exactly like the row that wrote the
    /// line.
    #[must_use]
    pub fn into_row(self, scenario: &Scenario) -> CampaignRow {
        CampaignRow {
            index: self.index,
            id: self.id,
            scenario: scenario.clone(),
            seed: self.seed,
            voltage_norm: self.voltage_norm,
            ber: self.ber,
            classical_train_success: self.classical_train_success,
            berry_train_success: self.berry_train_success,
            robust_updates: self.robust_updates,
            classical_nav: self.classical_nav,
            berry_nav: self.berry_nav,
            processing: self.processing,
            quality_of_flight: self.quality_of_flight,
            axis_results: Vec::new(),
        }
    }
}

/// The validated contents of an existing `rows.jsonl`, ready to seed a
/// resumed campaign run.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    rows: BTreeMap<usize, (String, CampaignRow)>,
    /// Whether the file's last line was dropped as truncated (the
    /// signature of a killed run's final partial write) — its cell simply
    /// re-runs.
    pub dropped_truncated: bool,
    /// Number of duplicate row lines ignored (first occurrence wins).
    pub duplicates: usize,
}

impl ResumeState {
    /// The empty state — resuming a missing or empty file is a fresh run.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Grid indices that already have rows, as the engine's filter.
    pub fn completed(&self) -> CompletedSet {
        self.rows.keys().copied().collect()
    }

    /// Number of resumed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were resumed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The verbatim artifact line of a resumed cell — rewritten outputs
    /// reuse these bytes rather than reserializing, so a resumed artifact
    /// can only ever contain bytes some campaign run actually wrote.
    pub fn line(&self, index: usize) -> Option<&str> {
        self.rows.get(&index).map(|(line, _)| line.as_str())
    }

    /// The reconstructed row of a resumed cell.
    pub fn row(&self, index: usize) -> Option<&CampaignRow> {
        self.rows.get(&index).map(|(_, row)| row)
    }

    /// Resumed rows in grid order.
    pub fn rows_in_order(&self) -> impl Iterator<Item = &CampaignRow> {
        self.rows.values().map(|(_, row)| row)
    }
}

/// Parses and validates an existing `rows.jsonl` against the campaign
/// plan.
///
/// Semantics, in order of appearance:
/// * blank lines are skipped,
/// * every parsed row must [`ParsedRow::matches`] its plan cell,
/// * duplicate indices keep the **first** occurrence (later duplicates
///   must be byte-identical, else the file is corrupt),
/// * a final line that fails to parse is dropped as the truncated tail of
///   a killed run ([`ResumeState::dropped_truncated`]); a non-final parse
///   failure is a hard error.
///
/// # Errors
///
/// Returns an error on mid-file corruption, rows whose index is outside
/// the plan, plan mismatches, or conflicting duplicates.
pub fn load_resume_state(text: &str, plan: &[CellPlan]) -> Result<ResumeState> {
    let mut state = ResumeState::empty();
    let lines: Vec<&str> = text.lines().collect();
    let last_non_blank = lines.iter().rposition(|l| !l.trim().is_empty());
    for (lineno, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match ParsedRow::parse(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                if Some(lineno) == last_non_blank {
                    state.dropped_truncated = true;
                    continue;
                }
                return Err(CoreError::InvalidConfig(format!(
                    "rows file line {}: {e}",
                    lineno + 1
                )));
            }
        };
        let cell = plan.get(parsed.index).ok_or_else(|| {
            CoreError::InvalidConfig(format!(
                "rows file line {}: row index {} is outside the {}-cell campaign plan",
                lineno + 1,
                parsed.index,
                plan.len()
            ))
        })?;
        parsed.matches(cell)?;
        if let Some((first_line, _)) = state.rows.get(&parsed.index) {
            if first_line != line {
                return Err(CoreError::InvalidConfig(format!(
                    "rows file line {}: conflicting duplicate of row {}",
                    lineno + 1,
                    parsed.index
                )));
            }
            state.duplicates += 1;
            continue;
        }
        let row = parsed.into_row(&cell.scenario);
        state.rows.insert(row.index, (line.to_string(), row));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{plan_cells, run_scenario_in, scenario_seed};
    use crate::experiment::ExperimentScale;
    use crate::store::PolicyStore;

    fn smoke_plan() -> (Vec<Scenario>, Vec<CellPlan>) {
        let grid: Vec<Scenario> = Scenario::smoke_grid().into_iter().take(2).collect();
        let plan = plan_cells(&grid, 5);
        (grid, plan)
    }

    fn smoke_row(plan: &[CellPlan], index: usize) -> CampaignRow {
        run_scenario_in(
            &plan[index].scenario,
            index,
            ExperimentScale::Smoke,
            plan[index].seed,
            5,
            &PolicyStore::in_memory(),
            &[],
            berry_nn::gemm::Precision::Reference,
        )
        .unwrap()
    }

    #[test]
    fn a_real_row_round_trips_bit_for_bit() {
        let (_, plan) = smoke_plan();
        let row = smoke_row(&plan, 0);
        let line = row.to_json_line();
        let parsed = ParsedRow::parse(&line).unwrap();
        parsed.matches(&plan[0]).unwrap();
        let rebuilt = parsed.into_row(&plan[0].scenario);
        assert_eq!(rebuilt, row);
        assert_eq!(rebuilt.to_json_line(), line, "byte-exact round trip");
    }

    #[test]
    fn parser_handles_escapes_and_scientific_notation() {
        let value = Reader::new(r#"{"a":"q\"uo\\te\nnl	tab","b":1.5e-7,"c":[1,2]}"#)
            .value()
            .unwrap();
        assert_eq!(value.str_field("a").unwrap(), "q\"uo\\te\nnl\ttab");
        assert_eq!(value.f64_field("b").unwrap(), 1.5e-7);
        assert_eq!(
            value.get("c").unwrap(),
            &JsonValue::Array(vec![
                JsonValue::Number("1".into()),
                JsonValue::Number("2".into())
            ])
        );
        // Exact integer fields stay exact at u64 range.
        let value = Reader::new("{\"seed\":18446744073709551615}").value().unwrap();
        assert_eq!(value.u64_field("seed").unwrap(), u64::MAX);
    }

    #[test]
    fn number_tokens_follow_the_json_grammar() {
        for good in [
            "0", "-0", "7", "-7", "10", "0.5", "-0.5", "3.25", "1e9", "1E9", "1e+9", "1e-9",
            "-3.25e-7", "0.0001", "18446744073709551615",
        ] {
            assert!(is_json_number(good), "`{good}` must be accepted");
            assert!(
                Reader::new(good).value().is_ok(),
                "`{good}` must scan as a number"
            );
        }
        // Everything here parses under bare `f64::from_str` (the old
        // validator) but is NOT a JSON number — it must fail at scan time.
        for bad in [
            "inf", "-inf", "infinity", "+1.0", "1.", ".5", "01", "-01", "00", "1e", "1e+", "5.",
            "+5", "--1", "-", "1.2.3", "0x10",
        ] {
            assert!(!is_json_number(bad), "`{bad}` must be rejected");
            let mut reader = Reader::new(bad);
            let outcome = reader.value().and_then(|v| reader.finish(v));
            assert!(outcome.is_err(), "`{bad}` must not parse as a value");
        }
        // `nan`/`NaN` now collide with the `null` literal path or the
        // number scanner — either way they are parse errors, not values.
        for bad in ["nan", "NaN", "-nan"] {
            assert!(parse_json_line(bad).is_err(), "`{bad}` must not parse");
        }
        // Embedded in an object the rejection still happens at parse time.
        assert!(parse_json_line("{\"x\":inf}").is_err());
        assert!(parse_json_line("{\"x\":+1.0}").is_err());
    }

    #[test]
    fn literals_parse_and_null_decodes_to_nan() {
        let value = parse_json_line(r#"{"a":null,"b":true,"c":false}"#).unwrap();
        assert_eq!(value.get("a").unwrap(), &JsonValue::Null);
        assert_eq!(value.get("b").unwrap(), &JsonValue::Bool(true));
        assert_eq!(value.get("c").unwrap(), &JsonValue::Bool(false));
        assert!(value.f64_field("a").unwrap().is_nan());
        // Truncated/misspelled literals are errors, not numbers.
        for bad in ["nul", "nulll", "True", "fals"] {
            assert!(parse_json_line(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn zero_success_rows_round_trip_through_null() {
        // A cell where no evaluation episode succeeds has no defined mean
        // success distance; force the NaN the aggregation would produce and
        // pin the whole writer→parser round trip.  Before the fix the line
        // contained the bare token `NaN` — invalid JSON that any external
        // consumer (and this parser) rejects.
        let (_, plan) = smoke_plan();
        let mut row = smoke_row(&plan, 0);
        row.classical_nav.mean_success_distance = f64::NAN;
        row.quality_of_flight.flight_distance_m = f64::NEG_INFINITY;
        let line = row.to_json_line();
        // `{:?}` would print the tokens right after the key's colon (the
        // bare substring "inf" also appears in "energy_per_inference_j").
        assert!(
            !line.contains(":NaN") && !line.contains(":inf") && !line.contains(":-inf"),
            "non-finite floats must not leak raw {{:?}} tokens: {line}"
        );
        assert!(line.contains("\"mean_success_distance\":null"));
        let parsed = ParsedRow::parse(&line).unwrap();
        assert!(parsed.classical_nav.mean_success_distance.is_nan());
        // Infinities also decode as NaN: `null` is deliberately lossy
        // about *which* non-finite value was written.
        assert!(parsed.quality_of_flight.flight_distance_m.is_nan());
        // The artifact bytes still round-trip exactly (NaN re-encodes as
        // null), which is what `--resume`'s verbatim rewrite relies on.
        let rebuilt = parsed.into_row(&plan[0].scenario);
        // flight_distance was -inf on the way in, NaN on the way out —
        // both spell `null`, so the bytes must already match.
        assert_eq!(rebuilt.to_json_line(), line, "byte-exact round trip through null");
        // And the resume loader accepts the row.
        let state = load_resume_state(&line, &plan).unwrap();
        assert!(state.row(0).unwrap().classical_nav.mean_success_distance.is_nan());
        assert_eq!(state.line(0), Some(line.as_str()));
    }

    #[test]
    fn parse_rejects_truncated_and_trailing_garbage() {
        let (_, plan) = smoke_plan();
        let line = smoke_row(&plan, 0).to_json_line();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(
                ParsedRow::parse(&line[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
        assert!(ParsedRow::parse(&format!("{line}garbage")).is_err());
        assert!(ParsedRow::parse("{}").is_err(), "missing keys must not parse");
    }

    #[test]
    fn matches_rejects_other_campaigns() {
        let (_, plan) = smoke_plan();
        let row = smoke_row(&plan, 0);
        let parsed = ParsedRow::parse(&row.to_json_line()).unwrap();
        // Same line against the other cell: index mismatch.
        assert!(parsed.matches(&plan[1]).is_err());
        // A different base seed changes the planned seed.
        let other_seed_plan = plan_cells(&[plan[0].scenario.clone()], 6);
        let err = parsed.matches(&other_seed_plan[0]).unwrap_err();
        assert!(err.to_string().contains("seed"), "got: {err}");
    }

    #[test]
    fn resume_state_drops_only_a_truncated_last_line() {
        let (_, plan) = smoke_plan();
        let line0 = smoke_row(&plan, 0).to_json_line();
        let line1 = smoke_row(&plan, 1).to_json_line();

        // Fresh-equivalent inputs.
        for text in ["", "\n", "  \n\n"] {
            let state = load_resume_state(text, &plan).unwrap();
            assert!(state.is_empty());
            assert!(!state.dropped_truncated);
        }

        // A killed run's partial final write: last line truncated.
        let text = format!("{line0}\n{}", &line1[..line1.len() / 2]);
        let state = load_resume_state(&text, &plan).unwrap();
        assert_eq!(state.len(), 1);
        assert!(state.dropped_truncated);
        assert_eq!(state.completed().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(state.line(0), Some(line0.as_str()));
        assert_eq!(state.row(0).unwrap().index, 0);

        // The same truncation mid-file is corruption, not a resume point.
        let text = format!("{}\n{line1}", &line0[..line0.len() / 2]);
        assert!(load_resume_state(&text, &plan).is_err());

        // Duplicates: identical lines are counted and ignored...
        let text = format!("{line0}\n{line0}\n{line1}");
        let state = load_resume_state(&text, &plan).unwrap();
        assert_eq!(state.len(), 2);
        assert_eq!(state.duplicates, 1);
        assert_eq!(state.rows_in_order().map(|r| r.index).collect::<Vec<_>>(), vec![0, 1]);
        // ...but conflicting duplicates are corruption.
        let conflicting = line0.replace("\"index\":0,", "\"index\":0, ");
        assert!(ParsedRow::parse(&conflicting).is_ok(), "still valid JSON");
        let text = format!("{line0}\n{conflicting}");
        assert!(load_resume_state(&text, &plan).is_err());

        // Rows from outside the plan are rejected.
        let state = load_resume_state(&line1, &plan[..1]).map(|_| ());
        assert!(state.is_err());
    }

    #[test]
    fn resume_rows_reproduce_the_seed_protocol() {
        // A resumed row and a freshly computed row of the same cell are
        // the same row — the parser is a pure inverse, not a re-run.
        let (_, plan) = smoke_plan();
        let row = smoke_row(&plan, 1);
        let state = load_resume_state(&row.to_json_line(), &plan).unwrap();
        assert_eq!(state.row(1).unwrap(), &row);
        assert_eq!(state.row(1).unwrap().seed, scenario_seed(5, 1));
    }
}
