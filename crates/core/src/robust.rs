//! The BERRY robust error-aware training framework (paper Algorithm 1).
//!
//! Every optimizer step runs two passes over the same replay mini-batch:
//!
//! 1. a **clean pass** — the standard DQN TD loss through the unperturbed
//!    Q-network `θ` and target network `θ⁻`, producing gradient `∆`;
//! 2. a **perturbed pass** — the same loss through bit-error-perturbed
//!    copies `˜θ = BErr_p(θ)` and `˜θ⁻ = BErr_p(θ⁻)`, producing gradient
//!    `˜∆`;
//!
//! and then applies a single update `θ ← θ − α(∆ + ˜∆)` (line 19).  In the
//! paper's **offline** mode a fresh random fault map at training rate `p`
//! is drawn every step (so the policy generalizes across chips and
//! voltages); in the **on-device** mode the *same* persistent fault map —
//! the one the deployed chip actually exhibits at its operating voltage —
//! is used for every step, specializing the policy to that chip.

use crate::error::CoreError;
use crate::perturb::{NetworkPerturber, PerturbContext, PerturbScratch};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_faults::fault_map::FaultMap;
use berry_nn::network::Sequential;
use berry_rl::dqn::{accumulate_td_gradients, DqnAgent};
use berry_rl::env::{Environment, Transition};
use berry_rl::policy::QNetworkSpec;
use berry_rl::replay::ReplayBuffer;
use berry_rl::trainer::{TrainerConfig, TrainingReport};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where the bit errors injected during training come from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LearningMode {
    /// Offline learning on error-free hardware: inject a *fresh random*
    /// fault map at bit-error rate `train_ber` each step (paper Fig. 4,
    /// left).
    Offline {
        /// Training bit-error rate as a fraction (the paper trains at
        /// `p = 0.5 %`, i.e. `0.005`).
        train_ber: f64,
    },
    /// On-device learning on the low-voltage chip itself: the same
    /// persistent fault map (drawn once from the chip at `voltage_norm`)
    /// perturbs every step (paper Fig. 4, right).
    OnDevice {
        /// Normalized operating voltage (Vmin units) of the device during
        /// learning and deployment.
        voltage_norm: f64,
    },
}

impl LearningMode {
    /// Convenience constructor for offline learning.
    pub fn offline(train_ber: f64) -> Self {
        LearningMode::Offline { train_ber }
    }

    /// Convenience constructor for on-device learning.
    pub fn on_device(voltage_norm: f64) -> Self {
        LearningMode::OnDevice { voltage_norm }
    }

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            LearningMode::Offline { .. } => "offline",
            LearningMode::OnDevice { .. } => "on-device",
        }
    }
}

/// Configuration of a BERRY training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BerryConfig {
    /// Episode-level training hyper-parameters (shared with the classical
    /// baseline so comparisons are apples-to-apples).
    pub trainer: TrainerConfig,
    /// Offline vs on-device learning.
    pub mode: LearningMode,
    /// Chip profile supplying the spatial fault pattern and flip bias.
    pub chip: ChipProfile,
    /// Quantization width used for fault injection (the paper uses 8).
    pub quant_bits: u8,
}

impl Default for BerryConfig {
    fn default() -> Self {
        Self {
            trainer: TrainerConfig::default(),
            mode: LearningMode::offline(0.005),
            chip: ChipProfile::generic(),
            quant_bits: 8,
        }
    }
}

impl BerryConfig {
    /// A small configuration for fast tests and smoke runs.
    pub fn smoke_test() -> Self {
        Self {
            trainer: TrainerConfig::smoke_test(),
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid rates, voltages or
    /// trainer settings.
    pub fn validate(&self) -> Result<()> {
        self.trainer.validate().map_err(CoreError::from)?;
        match self.mode {
            LearningMode::Offline { train_ber } => {
                if !(0.0..=1.0).contains(&train_ber) || !train_ber.is_finite() {
                    return Err(CoreError::InvalidConfig(format!(
                        "training bit-error rate must lie in [0, 1], got {train_ber}"
                    )));
                }
            }
            LearningMode::OnDevice { voltage_norm } => {
                // Validate through the chip's BER curve.
                self.chip
                    .ber_at_voltage(voltage_norm)
                    .map_err(CoreError::from)?;
            }
        }
        if self.quant_bits == 0 || self.quant_bits > 8 {
            return Err(CoreError::InvalidConfig(format!(
                "quantization width must be in 1..=8, got {}",
                self.quant_bits
            )));
        }
        Ok(())
    }
}

/// The result of a BERRY training run.
#[derive(Debug, Clone)]
pub struct BerryOutcome {
    /// The trained agent (clean weights; quantize/perturb for deployment).
    pub agent: DqnAgent,
    /// Episode-level training statistics.
    pub report: TrainingReport,
    /// The persistent fault map used during on-device learning, if any —
    /// deployment on the *same* chip should reuse it.
    pub ondevice_fault_map: Option<FaultMap>,
    /// Number of dual-pass optimizer steps performed (equals the number of
    /// perturbed forward/backward passes).
    pub robust_updates: u64,
}

/// Reusable quantize/perturb state for the dual-pass update: one
/// quantize-once [`PerturbContext`] (plus its scratch network) per network
/// being perturbed.
///
/// The trainer's weights change between optimizer steps, so each step still
/// pays one re-quantization per network — but through
/// [`PerturbContext::refresh`] the byte images, scratch `Sequential`s and
/// activation buffers are all reused instead of being reallocated on every
/// one of the run's thousands of updates.
#[derive(Debug, Default)]
pub struct DualPassScratch {
    q: Option<(PerturbContext, PerturbScratch)>,
    target: Option<(PerturbContext, PerturbScratch)>,
}

impl DualPassScratch {
    /// Creates an empty scratch; contexts are built on the first update.
    pub fn new() -> Self {
        Self::default()
    }

    /// Refreshes one slot's context from the current clean weights and
    /// injects the fault map into its scratch network.
    fn perturb_slot(
        slot: &mut Option<(PerturbContext, PerturbScratch)>,
        net: &Sequential,
        bits: u8,
        map: &FaultMap,
    ) -> Result<()> {
        if let Some((context, scratch)) = slot {
            context.refresh(net)?;
            context.perturb_map_into(map, scratch)?;
        } else {
            let context = PerturbContext::new(net, bits)?;
            let mut scratch = context.checkout();
            context.perturb_map_into(map, &mut scratch)?;
            *slot = Some((context, scratch));
        }
        Ok(())
    }
}

/// One BERRY dual-pass gradient update on a replay mini-batch.
///
/// Exposed so ablation studies can call it directly; regular users should
/// prefer [`train_berry`].  This convenience wrapper allocates its own
/// [`DualPassScratch`]; the training loop reuses one across all updates via
/// [`berry_update_step_with_scratch`].
///
/// # Errors
///
/// Returns an error if the batch is malformed or perturbation fails.
pub fn berry_update_step(
    agent: &mut DqnAgent,
    batch: &[Transition],
    perturber: &NetworkPerturber,
    fault_map: &FaultMap,
) -> Result<(f32, f32)> {
    let mut scratch = DualPassScratch::new();
    berry_update_step_with_scratch(agent, batch, perturber, fault_map, &mut scratch)
}

/// [`berry_update_step`] with caller-owned quantize/perturb scratch, so the
/// per-step perturbed copies `˜θ` and `˜θ⁻` reuse their byte images and
/// networks across updates.
///
/// # Errors
///
/// Returns an error if the batch is malformed or perturbation fails.
pub fn berry_update_step_with_scratch(
    agent: &mut DqnAgent,
    batch: &[Transition],
    perturber: &NetworkPerturber,
    fault_map: &FaultMap,
    scratch: &mut DualPassScratch,
) -> Result<(f32, f32)> {
    let observation_shape = agent.observation_shape().to_vec();
    let num_actions = agent.num_actions();
    let gamma = agent.config().gamma;

    // Perturbed copies ˜θ and ˜θ⁻ (line 15), through the quantize-once
    // byte-image pipeline (refreshed because the weights moved last step).
    DualPassScratch::perturb_slot(&mut scratch.q, agent.q_net(), perturber.bits(), fault_map)?;
    DualPassScratch::perturb_slot(
        &mut scratch.target,
        agent.target_net(),
        perturber.bits(),
        fault_map,
    )?;

    // Clean pass: accumulate ∆ in the agent's Q-network (lines 11-13).
    agent.q_net_mut().zero_grad();
    let clean_loss = {
        let (q_net, target_net) = agent.nets_mut();
        accumulate_td_gradients(q_net, target_net, batch, &observation_shape, num_actions, gamma)?
    };

    // Perturbed pass: accumulate ˜∆ in the perturbed copy (lines 14-17).
    let (_, q_scratch) = scratch
        .q
        .as_mut()
        .ok_or_else(|| CoreError::Internal("q scratch slot not prepared".to_string()))?;
    let (_, target_scratch) = scratch
        .target
        .as_mut()
        .ok_or_else(|| CoreError::Internal("target scratch slot not prepared".to_string()))?;
    let q_perturbed = q_scratch.network_mut();
    let target_perturbed = target_scratch.network_mut();
    q_perturbed.zero_grad();
    let perturbed_loss = accumulate_td_gradients(
        q_perturbed,
        target_perturbed,
        batch,
        &observation_shape,
        num_actions,
        gamma,
    )?;

    // θ ← θ − α(∆ + ˜∆) (line 19); target sync every C steps (line 21).
    agent
        .q_net_mut()
        .add_gradients_from(q_perturbed, 1.0)
        .map_err(CoreError::from)?;
    agent.apply_accumulated_gradients();
    Ok((clean_loss, perturbed_loss))
}

/// Trains a bit-error-robust DQN policy with BERRY's dual-pass update.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or training fails.
pub fn train_berry<E: Environment, R: Rng>(
    env: &mut E,
    spec: &QNetworkSpec,
    config: &BerryConfig,
    rng: &mut R,
) -> Result<BerryOutcome> {
    train_berry_with_fault_map(env, spec, config, rng)
}

/// Continues BERRY training on an existing agent.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or training fails.
pub fn continue_berry_training<E: Environment, R: Rng>(
    env: &mut E,
    agent: &mut DqnAgent,
    config: &BerryConfig,
    rng: &mut R,
) -> Result<TrainingReport> {
    Ok(run_berry_loop(env, agent, config, rng)?.0)
}

/// Trains with BERRY and also returns the persistent on-device fault map
/// (when the mode is on-device), so deployment can target the same chip.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or training fails.
pub fn train_berry_with_fault_map<E: Environment, R: Rng>(
    env: &mut E,
    spec: &QNetworkSpec,
    config: &BerryConfig,
    rng: &mut R,
) -> Result<BerryOutcome> {
    config.validate()?;
    let mut agent = DqnAgent::new(
        spec,
        &env.observation_shape(),
        env.num_actions(),
        config.trainer.dqn,
        rng,
    )?;
    let (report, map) = run_berry_loop(env, &mut agent, config, rng)?;
    Ok(BerryOutcome {
        robust_updates: agent.train_steps(),
        report,
        ondevice_fault_map: map,
        agent,
    })
}

fn run_berry_loop<E: Environment, R: Rng>(
    env: &mut E,
    agent: &mut DqnAgent,
    config: &BerryConfig,
    rng: &mut R,
) -> Result<(TrainingReport, Option<FaultMap>)> {
    config.validate()?;
    let perturber = NetworkPerturber::new(config.quant_bits)?;
    let memory_bits = perturber.memory_bits(agent.q_net());

    // On-device mode: one persistent fault map for the whole run.
    let persistent_map = match config.mode {
        LearningMode::OnDevice { voltage_norm } => Some(
            config
                .chip
                .fault_map_at_voltage(rng, memory_bits, voltage_norm)?,
        ),
        LearningMode::Offline { .. } => None,
    };

    let mut buffer = ReplayBuffer::new(config.trainer.buffer_capacity)?;
    let mut dual_scratch = DualPassScratch::new();
    // One warm scratch for every ε-greedy action selection of the run; the
    // dual-pass scratch already covers the perturbed training passes.
    let mut infer_scratch = berry_nn::network::InferScratch::new();
    let mut episode_returns = Vec::with_capacity(config.trainer.episodes);
    let mut episode_successes = Vec::with_capacity(config.trainer.episodes);
    let mut losses = Vec::new();
    let mut env_steps = 0u64;

    for _ in 0..config.trainer.episodes {
        let mut obs = env.reset(rng);
        let mut episode_return = 0.0f32;
        let mut success = false;
        for _ in 0..config.trainer.max_steps_per_episode {
            let epsilon = config.trainer.epsilon.value(env_steps);
            let action = agent.act_epsilon_with_scratch(&obs, epsilon, rng, &mut infer_scratch);
            let outcome = env.step(action, rng);
            episode_return += outcome.reward;
            buffer.push(Transition {
                state: obs.clone(),
                action,
                reward: outcome.reward,
                next_state: outcome.observation.clone(),
                done: outcome.is_terminal(),
            });
            obs = outcome.observation;
            env_steps += 1;

            let ready = buffer.len()
                >= config
                    .trainer
                    .learning_starts
                    .max(config.trainer.dqn.batch_size);
            if ready && env_steps.is_multiple_of(config.trainer.train_every as u64) {
                let batch = buffer.sample(config.trainer.dqn.batch_size, rng)?;
                let fault_map = match (&config.mode, &persistent_map) {
                    (LearningMode::Offline { train_ber }, _) => {
                        perturber.sample_fault_map(agent.q_net(), &config.chip, *train_ber, rng)?
                    }
                    (LearningMode::OnDevice { .. }, Some(map)) => map.clone(),
                    (LearningMode::OnDevice { .. }, None) => {
                        return Err(CoreError::Internal(
                            "on-device mode reached a train step with no persistent fault map"
                                .to_string(),
                        ))
                    }
                };
                let (clean_loss, perturbed_loss) = berry_update_step_with_scratch(
                    agent,
                    &batch,
                    &perturber,
                    &fault_map,
                    &mut dual_scratch,
                )?;
                losses.push(0.5 * (clean_loss + perturbed_loss));
            }

            if let Some(terminal) = outcome.terminal {
                success = terminal.is_success();
                break;
            }
        }
        episode_returns.push(episode_return);
        episode_successes.push(success);
    }

    Ok((
        TrainingReport {
            episode_returns,
            episode_successes,
            losses,
            total_env_steps: env_steps,
            total_train_steps: agent.train_steps(),
        },
        persistent_map,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use berry_nn::tensor::Tensor;
    use berry_rl::schedule::EpsilonSchedule;
    // The shared corridor fixture from `berry_rl::testenv` (this file's
    // historical copy used a 30-step episode budget, preserved here so the
    // training dynamics of these tests are unchanged).
    use berry_rl::testenv::Corridor;
    use rand::SeedableRng;

    fn corridor(length: i32) -> Corridor {
        Corridor::with_timeout(length, 30)
    }

    fn small_config(mode: LearningMode, episodes: usize) -> BerryConfig {
        BerryConfig {
            trainer: TrainerConfig {
                episodes,
                max_steps_per_episode: 30,
                buffer_capacity: 4_000,
                learning_starts: 48,
                train_every: 1,
                epsilon: EpsilonSchedule::new(1.0, 0.05, 600).unwrap(),
                dqn: berry_rl::dqn::DqnConfig {
                    gamma: 0.9,
                    learning_rate: 2e-3,
                    batch_size: 16,
                    target_sync_every: 50,
                    grad_clip: 1.0,
                },
            },
            mode,
            chip: ChipProfile::generic(),
            quant_bits: 8,
        }
    }

    #[test]
    fn config_validation_catches_bad_values() {
        assert!(BerryConfig::default().validate().is_ok());
        assert!(BerryConfig {
            mode: LearningMode::offline(1.5),
            ..BerryConfig::default()
        }
        .validate()
        .is_err());
        assert!(BerryConfig {
            mode: LearningMode::on_device(0.1),
            ..BerryConfig::default()
        }
        .validate()
        .is_err());
        assert!(BerryConfig {
            quant_bits: 0,
            ..BerryConfig::default()
        }
        .validate()
        .is_err());
        assert_eq!(LearningMode::offline(0.01).label(), "offline");
        assert_eq!(LearningMode::on_device(0.8).label(), "on-device");
    }

    #[test]
    fn offline_berry_learns_the_corridor() {
        let mut env = corridor(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let config = small_config(LearningMode::offline(0.005), 120);
        let outcome =
            train_berry(&mut env, &QNetworkSpec::mlp(vec![24]), &config, &mut rng).unwrap();
        assert!(outcome.robust_updates > 0);
        assert!(!outcome.report.losses.is_empty());
        // The greedy policy solves the corridor.
        let agent = outcome.agent;
        let mut eval_env = corridor(4);
        let mut obs = eval_env.reset(&mut rng);
        let mut reached = false;
        for _ in 0..10 {
            let action = agent.act_greedy(&obs);
            let o = eval_env.step(action, &mut rng);
            obs = o.observation;
            if let Some(t) = o.terminal {
                reached = t.is_success();
                break;
            }
        }
        assert!(reached, "BERRY-trained policy failed the corridor");
    }

    #[test]
    fn ondevice_mode_returns_a_persistent_fault_map() {
        let mut env = corridor(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let config = small_config(LearningMode::on_device(0.72), 40);
        let outcome = train_berry_with_fault_map(
            &mut env,
            &QNetworkSpec::mlp(vec![16]),
            &config,
            &mut rng,
        )
        .unwrap();
        let map = outcome.ondevice_fault_map.expect("on-device map present");
        assert!(!map.is_empty(), "0.72 Vmin should produce bit errors");
        assert_eq!(
            map.total_bits(),
            outcome.agent.q_net().param_count() * 8
        );
    }

    #[test]
    fn offline_mode_has_no_persistent_fault_map() {
        let mut env = corridor(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let config = small_config(LearningMode::offline(0.01), 30);
        let outcome = train_berry_with_fault_map(
            &mut env,
            &QNetworkSpec::mlp(vec![16]),
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(outcome.ondevice_fault_map.is_none());
    }

    #[test]
    fn berry_update_step_changes_weights_and_reports_two_losses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut agent = DqnAgent::new(
            &QNetworkSpec::mlp(vec![16]),
            &[1],
            2,
            berry_rl::dqn::DqnConfig::default(),
            &mut rng,
        )
        .unwrap();
        let perturber = NetworkPerturber::new(8).unwrap();
        let map = perturber
            .sample_fault_map(agent.q_net(), &ChipProfile::generic(), 0.02, &mut rng)
            .unwrap();
        let batch: Vec<Transition> = (0..8)
            .map(|i| Transition {
                state: Tensor::from_vec(vec![1], vec![i as f32 / 8.0]).unwrap(),
                action: i % 2,
                reward: if i % 2 == 0 { 1.0 } else { -1.0 },
                next_state: Tensor::from_vec(vec![1], vec![(i + 1) as f32 / 8.0]).unwrap(),
                done: i == 7,
            })
            .collect();
        let before = agent.q_net().to_flat_weights();
        let (clean, perturbed) = berry_update_step(&mut agent, &batch, &perturber, &map).unwrap();
        assert!(clean.is_finite() && perturbed.is_finite());
        assert_ne!(agent.q_net().to_flat_weights(), before);
        assert_eq!(agent.train_steps(), 1);
    }

    #[test]
    fn smoke_test_config_is_valid() {
        assert!(BerryConfig::smoke_test().validate().is_ok());
    }
}
