//! The train-once policy store: a content-addressed cache of trained
//! Classical/BERRY policy pairs.
//!
//! Every table and figure of the paper evaluates the *same* trained policy
//! pairs under different fault conditions, yet each runner used to retrain
//! its pairs from scratch.  [`PolicyStore`] amortizes that cost the way
//! Stutz et al.'s bit-error robustness study amortizes one trained model
//! across an entire voltage/BER sweep: training is keyed by a
//! **fingerprint** of everything the trained weights are a function of —
//! network spec, environment (density + disturbance variant), trainer
//! hyper-parameters, learning mode, chip fault profile, quantization width
//! and the derived training seed — and each fingerprint is trained at most
//! once per store (and, with the on-disk layer, at most once per machine).
//!
//! # Determinism
//!
//! A [`PairRequest`]'s training seed is derived from the campaign base seed
//! and the request's *seedless* fingerprint hash via [`pair_seed`] — a
//! fourth SplitMix64-style family, disjoint from
//! [`crate::evaluate::fault_map_seed`], `berry_rl::vecenv::episode_seed`
//! and [`crate::campaign::scenario_seed`].  Training is a pure function of
//! the request, so a cache hit (memory or disk) returns **bitwise** the
//! weights a miss would have trained; downstream evaluation rows therefore
//! cannot tell whether the store was warm.  Notably the seed does *not*
//! depend on any grid index: two campaign cells (or two different runner
//! binaries sharing one store and base seed) that need the same pair
//! resolve to the same fingerprint and share one training run.
//!
//! # On-disk layer
//!
//! [`PolicyStore::with_dir`] adds a directory layer: each pair is stored as
//! `<hash>.pair` (a little-endian binary record of the fingerprint string,
//! training metadata and both flat-weight vectors — f32 bits are preserved
//! exactly — sealed by an FNV-1a checksum of every preceding byte) plus a
//! human-readable `<hash>.fingerprint.json` sidecar.  Loads verify the
//! checksum, the embedded fingerprint string and the sidecar against the
//! request, so a hash collision, a stale file, a torn write or a flipped
//! bit degrades to a retrain, never to wrong weights.
//!
//! # Crash safety
//!
//! The store is built to survive its own failures, not just serve hits:
//!
//! * **Persist errors are counted, never fatal.**  A full disk degrades
//!   the cache (the pair stays served from memory); the first failure is
//!   logged to stderr and every one is counted in
//!   [`StoreStats::persist_errors`].
//! * **Corrupt records are quarantined, not retrained over silently.**  A
//!   `.pair` file that exists but fails to decode — truncated, bit-flipped,
//!   undecodable, missing or garbled sidecar — is renamed to
//!   `<hash>.pair.corrupt` (sidecar to `<hash>.fingerprint.json.corrupt`),
//!   counted in [`StoreStats::corrupt_quarantined`], and the pair retrains;
//!   the evidence stays on disk for a post-mortem.
//! * **A panicking training marks only its own slot failed.**  The panic
//!   is caught at the store boundary, cached as that fingerprint's error
//!   ([`StoreStats::training_panics`]) and the slots mutex recovers from
//!   poisoning — one broken cell can never brick every later request of a
//!   resident server.
//!
//! Chaos tests drive these paths deterministically through the
//! [`crate::failpoint`] sites `store.persist` (return/torn-write),
//! `store.load` (treat a good record as corrupt) and `store.train`
//! (panic/error mid-training).

// lint: codec — wire/persist format: length and index conversions must be overflow-checked

use crate::error::CoreError;
use crate::robust::{train_berry_with_fault_map, BerryConfig, LearningMode};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_nn::network::Sequential;
use berry_rl::env::Environment;
use berry_rl::policy::QNetworkSpec;
use berry_rl::trainer::{train_classical, TrainerConfig};
use berry_uav::env::{NavigationConfig, NavigationEnv};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Episode window used for the cached train-success metadata (matches the
/// campaign's "trained at all" signal).
pub const TRAIN_SUCCESS_WINDOW: usize = 20;

/// Magic prefix of the on-disk pair record (versioned: bump on layout
/// change so stale caches degrade to retrains; `PS2` added the trailing
/// FNV-1a checksum that catches torn writes and flipped payload bits).
const PAIR_MAGIC: &[u8; 8] = b"BERRYPS2";

// The pair seed family and the fingerprint hash live in the central seed
// registry; the historical path `store::pair_seed` stays valid via this
// re-export.
pub use crate::seed::pair_seed;

use crate::seed::fnv1a64;

/// Everything a Classical/BERRY pair training run is a function of.
///
/// The classical baseline and the BERRY policy train sequentially off one
/// RNG stream seeded with [`PairRequest::seed`], exactly as the campaign
/// engine always trained its cells — the pair is the cache unit because
/// splitting it would change the BERRY policy's stream.
#[derive(Debug, Clone)]
pub struct PairRequest {
    /// Q-network architecture to train.
    pub spec: QNetworkSpec,
    /// Navigation-environment configuration (density, arena, disturbance
    /// variant, …) both policies train on.
    pub env: NavigationConfig,
    /// Episode-level training hyper-parameters shared by both policies.
    pub trainer: TrainerConfig,
    /// BERRY learning mode (offline train-BER or on-device voltage).
    pub mode: LearningMode,
    /// Chip profile supplying the spatial fault pattern during BERRY
    /// training.
    pub chip: ChipProfile,
    /// Quantization width used for fault injection.
    pub quant_bits: u8,
    /// The derived training seed (see [`PairRequest::new`]).
    pub seed: u64,
}

impl PairRequest {
    /// Builds a request whose training seed is derived from `base_seed` and
    /// the request's own (seedless) fingerprint via [`pair_seed`] — the
    /// canonical constructor: every consumer that derives seeds this way
    /// shares cache entries for identical training work.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec: QNetworkSpec,
        env: NavigationConfig,
        trainer: TrainerConfig,
        mode: LearningMode,
        chip: ChipProfile,
        quant_bits: u8,
        base_seed: u64,
    ) -> Self {
        let mut request = Self {
            spec,
            env,
            trainer,
            mode,
            chip,
            quant_bits,
            seed: 0,
        };
        request.seed = pair_seed(base_seed, fnv1a64(&request.fingerprint_body()));
        request
    }

    /// The canonical fingerprint text *without* the seed — what the seed
    /// derivation hashes over.
    fn fingerprint_body(&self) -> String {
        format!(
            "berry-pair-v1;spec={:?};env={:?};trainer={:?};mode={:?};chip={:?};quant_bits={}",
            self.spec, self.env, self.trainer, self.mode, self.chip, self.quant_bits
        )
    }

    /// The full canonical fingerprint (cache key) of this request.
    pub fn fingerprint(&self) -> String {
        format!("{};seed={}", self.fingerprint_body(), self.seed)
    }

    /// 64-bit content hash of the fingerprint (used for file names).
    pub fn fingerprint_hash(&self) -> u64 {
        fnv1a64(&self.fingerprint())
    }
}

/// A cached Classical/BERRY policy pair plus the training metadata the
/// campaign rows report.
#[derive(Debug, Clone)]
pub struct TrainedPair {
    /// The architecture both policies share.
    pub spec: QNetworkSpec,
    /// Classically trained policy (no error injection).
    pub classical: Sequential,
    /// BERRY error-aware policy.
    pub berry: Sequential,
    /// Classical success rate over the last [`TRAIN_SUCCESS_WINDOW`]
    /// training episodes.
    pub classical_train_success: f64,
    /// BERRY success rate over the last [`TRAIN_SUCCESS_WINDOW`] training
    /// episodes.
    pub berry_train_success: f64,
    /// Number of BERRY dual-pass optimizer updates performed.
    pub robust_updates: u64,
}

/// Hit/miss counters of a [`PolicyStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Pairs trained from scratch by this store instance.
    pub trained: u64,
    /// Requests served from the in-memory map (including in-flight joins).
    pub memory_hits: u64,
    /// Requests served from the on-disk layer.
    pub disk_hits: u64,
    /// The subset of `memory_hits` that arrived while the pair was still
    /// **being trained** and blocked on the in-flight run instead of
    /// retraining — the dedup signal `berry-serve` reports when N
    /// concurrent clients request the same cell.
    pub inflight_joins: u64,
    /// On-disk persists that failed (full disk, injected fault, torn
    /// write).  The pair stays served from memory; only the cache layer
    /// degraded.
    pub persist_errors: u64,
    /// Corrupt `.pair` records (truncated, bit-flipped, bad sidecar)
    /// renamed to `<hash>.pair.corrupt` instead of silently retrained
    /// over.
    pub corrupt_quarantined: u64,
    /// Training runs that panicked and were caught at the store boundary,
    /// failing only their own fingerprint slot.
    pub training_panics: u64,
}

type Slot = Arc<OnceLock<std::result::Result<Arc<TrainedPair>, CoreError>>>;

/// A content-addressed cache of trained policy pairs: an in-memory map
/// (always) plus an optional on-disk layer.
///
/// Thread-safe: campaign cells sharded across rayon workers can request
/// pairs concurrently; two workers racing on the same fingerprint
/// deduplicate onto one training run (the second blocks on the first's
/// `OnceLock` instead of retraining).
#[derive(Debug)]
pub struct PolicyStore {
    slots: Mutex<HashMap<String, Slot>>,
    dir: Option<PathBuf>,
    trained: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    inflight_joins: AtomicU64,
    persist_errors: AtomicU64,
    corrupt_quarantined: AtomicU64,
    training_panics: AtomicU64,
    /// Whether the one-time persist-failure stderr notice has been
    /// printed (later failures only count, so a dying disk cannot flood
    /// the log at one line per trained pair).
    persist_error_logged: std::sync::atomic::AtomicBool,
}

impl Default for PolicyStore {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl PolicyStore {
    /// A purely in-memory store (the default for one-shot runs and tests).
    pub fn in_memory() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            dir: None,
            trained: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            inflight_joins: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
            corrupt_quarantined: AtomicU64::new(0),
            training_panics: AtomicU64::new(0),
            persist_error_logged: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// A store backed by `dir`: misses consult (and populate) flat-weight
    /// records on disk, so repeated runs — even across processes — retrain
    /// nothing.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            CoreError::InvalidConfig(format!(
                "cannot create policy-store directory {}: {e}",
                dir.display()
            ))
        })?;
        Ok(Self {
            dir: Some(dir),
            ..Self::in_memory()
        })
    }

    /// The on-disk layer's directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            trained: self.trained.load(Ordering::Relaxed),
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            inflight_joins: self.inflight_joins.load(Ordering::Relaxed),
            persist_errors: self.persist_errors.load(Ordering::Relaxed),
            corrupt_quarantined: self.corrupt_quarantined.load(Ordering::Relaxed),
            training_panics: self.training_panics.load(Ordering::Relaxed),
        }
    }

    /// The fingerprints of every resident slot, **sorted** — the slot map
    /// hashes its keys, so any emitted ordering (status lines, debug
    /// dumps) must be imposed here rather than inherited from HashMap
    /// iteration order (house rule: `hashmap-iteration`).
    pub fn cached_fingerprints(&self) -> Vec<String> {
        let slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // lint: allow(hashmap-iteration) why: the only slot-map traversal; the collected keys are sorted on the next line before anything observes them
        let mut keys: Vec<String> = slots.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Returns the trained pair for `request`, training it (at most once
    /// per fingerprint) on a miss.
    ///
    /// # Errors
    ///
    /// Returns an error if training fails *or panics* (the panic is caught
    /// here, so it poisons nothing); either way the error is cached, so
    /// concurrent requesters of the same broken fingerprint all observe it
    /// without retraining — and requests for other fingerprints are
    /// entirely unaffected.
    pub fn get_or_train(&self, request: &PairRequest) -> Result<Arc<TrainedPair>> {
        let key = request.fingerprint();
        let slot = {
            // Recover the map from a poisoned lock: the map itself is
            // only ever mutated by `entry().or_default()`, which cannot
            // leave it half-written, so the inner value is always safe to
            // take — a panicked requester must not brick the whole store.
            let mut slots = self
                .slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(slots.entry(key).or_default())
        };
        // Distinguish a hit on a *finished* slot from joining a training
        // still in flight: the join blocks inside `get_or_init` until the
        // initializing thread finishes, sharing its single training run.
        let was_complete = slot.get().is_some();
        let mut initialized = false;
        let outcome = slot.get_or_init(|| {
            initialized = true;
            if let Some(pair) = self.load_from_disk(request) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::new(pair));
            }
            match self.train_pair_caught(request) {
                Ok(pair) => {
                    self.trained.fetch_add(1, Ordering::Relaxed);
                    let pair = Arc::new(pair);
                    self.persist(request, &pair);
                    Ok(pair)
                }
                Err(e) => Err(e),
            }
        });
        if !initialized {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            if !was_complete {
                self.inflight_joins.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome.clone()
    }

    /// Runs the training behind a panic guard: a panicking trainer fails
    /// only this fingerprint's slot (with a cached, descriptive error)
    /// instead of unwinding through the `OnceLock` and every thread
    /// blocked on it.
    fn train_pair_caught(&self, request: &PairRequest) -> Result<TrainedPair> {
        let guarded = || -> Result<TrainedPair> {
            // The `store.train` site lives inside the guard on purpose:
            // an injected panic exercises exactly the isolation path a
            // real trainer panic would take.
            if let Some(action) = crate::failpoint::hit("store.train") {
                match action {
                    crate::failpoint::Action::ReturnError(msg) => {
                        return Err(CoreError::Internal(format!("failpoint store.train: {msg}")));
                    }
                    crate::failpoint::Action::Delay(d) => std::thread::sleep(d),
                    crate::failpoint::Action::Panic => {
                        // lint: allow(panic-in-lib) why: injected panic is the point — it exercises the catch_unwind isolation below
                        panic!("failpoint `store.train`: injected panic")
                    }
                    _ => {}
                }
            }
            train_pair(request)
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(guarded)) {
            Ok(outcome) => outcome,
            Err(payload) => {
                self.training_panics.fetch_add(1, Ordering::Relaxed);
                let msg = crate::failpoint::panic_message(&*payload);
                eprintln!(
                    "store: training panicked for fingerprint {:016x} \
                     (only this slot is marked failed): {msg}",
                    request.fingerprint_hash()
                );
                Err(CoreError::Internal(format!(
                    "training panicked for fingerprint {:016x}: {msg}",
                    request.fingerprint_hash()
                )))
            }
        }
    }

    fn pair_path(&self, request: &PairRequest) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.pair", request.fingerprint_hash())))
    }

    /// Writes the binary pair record and its JSON sidecar (best effort: a
    /// full disk degrades the cache, it does not fail the run — but the
    /// failure is **counted** in [`StoreStats::persist_errors`] and the
    /// first one is logged to stderr, never silently swallowed).
    fn persist(&self, request: &PairRequest, pair: &TrainedPair) {
        let Some(path) = self.pair_path(request) else {
            return;
        };
        let bytes = encode_pair(&request.fingerprint(), pair);
        if let Err(e) = self.persist_record(&path, &bytes, request) {
            self.persist_errors.fetch_add(1, Ordering::Relaxed);
            if !self
                .persist_error_logged
                .swap(true, std::sync::atomic::Ordering::Relaxed)
            {
                eprintln!(
                    "store: failed to persist {}: {e} (pair stays served from \
                     memory; counting later persist errors silently)",
                    path.display()
                );
            }
        }
    }

    /// The fallible body of [`Self::persist`], with the `store.persist`
    /// failpoint threaded through: `return` fails the write outright,
    /// `torn(K)` leaves a truncated record at the **final** path — exactly
    /// the wreckage a crash mid-write leaves — for the next load to
    /// quarantine.
    fn persist_record(
        &self,
        path: &Path,
        bytes: &[u8],
        request: &PairRequest,
    ) -> std::io::Result<()> {
        match crate::failpoint::hit("store.persist") {
            Some(crate::failpoint::Action::ReturnError(msg)) => {
                return Err(std::io::Error::other(format!(
                    "failpoint store.persist: {msg}"
                )));
            }
            Some(crate::failpoint::Action::TornWrite(n)) => {
                let n = n.min(bytes.len());
                std::fs::write(path, &bytes[..n])?;
                return Err(std::io::Error::other(format!(
                    "failpoint store.persist: torn write ({n} of {} bytes)",
                    bytes.len()
                )));
            }
            Some(crate::failpoint::Action::Delay(d)) => std::thread::sleep(d),
            _ => {}
        }
        write_atomically(path, bytes)?;
        let sidecar = path.with_extension("fingerprint.json");
        write_atomically(&sidecar, fingerprint_json(request).as_bytes())
    }

    /// Renames a corrupt on-disk record (and its sidecar) to `.corrupt`
    /// siblings so the evidence survives the retrain that overwrites the
    /// live paths.
    fn quarantine(&self, path: &Path, why: &str) {
        self.corrupt_quarantined.fetch_add(1, Ordering::Relaxed);
        let dest = path.with_extension("pair.corrupt");
        let renamed = std::fs::rename(path, &dest);
        let sidecar = path.with_extension("fingerprint.json");
        if sidecar.exists() {
            let _ = std::fs::rename(&sidecar, path.with_extension("fingerprint.json.corrupt"));
        }
        eprintln!(
            "store: corrupt pair record {} ({why}); {} — the pair will retrain",
            path.display(),
            match renamed {
                Ok(()) => format!("quarantined to {}", dest.display()),
                Err(e) => format!("quarantine rename failed: {e}"),
            }
        );
    }

    /// Attempts to load `request` from the on-disk layer.
    ///
    /// A *missing* file (or a valid record for a different fingerprint —
    /// a hash collision) is a plain miss.  A file that **exists but is
    /// broken** — truncated, checksum-failed, undecodable, inconsistent
    /// with its sidecar, or weights that no longer fit the architecture —
    /// is quarantined to `<hash>.pair.corrupt` and then missed, so the
    /// retrain never silently papers over disk corruption.
    fn load_from_disk(&self, request: &PairRequest) -> Option<TrainedPair> {
        let path = self.pair_path(request)?;
        let mut bytes = Vec::new();
        match std::fs::File::open(&path) {
            Ok(mut file) => file.read_to_end(&mut bytes).ok()?,
            Err(_) => return None,
        };
        if let Some(crate::failpoint::Action::ReturnError(msg)) =
            crate::failpoint::hit("store.load")
        {
            self.quarantine(&path, &format!("failpoint store.load: {msg}"));
            return None;
        }
        let Some(record) = decode_pair(&bytes) else {
            self.quarantine(&path, "record does not decode (truncated or bit-flipped)");
            return None;
        };
        if record.fingerprint != request.fingerprint() {
            // Self-consistent record for some other request: stale hash
            // collision, not corruption.  Plain miss; the retrain
            // overwrites it.
            return None;
        }
        // The sidecar is part of the record's integrity story: a pair
        // whose human-readable identity vanished or no longer matches is
        // evidence of a half-destroyed cache directory.
        let sidecar = path.with_extension("fingerprint.json");
        let hash_line = format!("\"hash\": \"{:016x}\"", request.fingerprint_hash());
        match std::fs::read_to_string(&sidecar) {
            Ok(text) if text.contains(&hash_line) => {}
            Ok(_) => {
                self.quarantine(&path, "sidecar does not match the record");
                return None;
            }
            Err(_) => {
                self.quarantine(&path, "sidecar missing or unreadable");
                return None;
            }
        }
        // Rebuild the networks through the spec → flat-weights round trip;
        // the environment supplies the observation/action geometry.
        let env = NavigationEnv::new(request.env.clone()).ok()?;
        let shape = env.observation_shape();
        let actions = env.num_actions();
        let built = request
            .spec
            .build_with_flat_weights(&shape, actions, &record.classical)
            .and_then(|classical| {
                let berry = request
                    .spec
                    .build_with_flat_weights(&shape, actions, &record.berry)?;
                Ok((classical, berry))
            });
        let (classical, berry) = match built {
            Ok(pair) => pair,
            Err(_) => {
                self.quarantine(&path, "weights do not fit the requested architecture");
                return None;
            }
        };
        Some(TrainedPair {
            spec: request.spec.clone(),
            classical,
            berry,
            classical_train_success: record.classical_train_success,
            berry_train_success: record.berry_train_success,
            robust_updates: record.robust_updates,
        })
    }
}

/// Trains the Classical/BERRY pair for a request — the single training
/// call site every runner now funnels through.  Classical first, BERRY
/// second, both off one stream seeded by the request (the structure the
/// campaign engine has always used for its cells).
fn train_pair(request: &PairRequest) -> Result<TrainedPair> {
    let mut rng = StdRng::seed_from_u64(request.seed);
    let mut env = NavigationEnv::new(request.env.clone())?;
    let (classical_agent, classical_report) =
        train_classical(&mut env, &request.spec, &request.trainer, &mut rng)?;
    let berry_config = BerryConfig {
        trainer: request.trainer.clone(),
        mode: request.mode,
        chip: request.chip.clone(),
        quant_bits: request.quant_bits,
    };
    let mut env = NavigationEnv::new(request.env.clone())?;
    let outcome = train_berry_with_fault_map(&mut env, &request.spec, &berry_config, &mut rng)?;
    Ok(TrainedPair {
        spec: request.spec.clone(),
        classical: classical_agent.q_net().clone(),
        berry: outcome.agent.q_net().clone(),
        classical_train_success: classical_report.recent_success_rate(TRAIN_SUCCESS_WINDOW),
        berry_train_success: outcome.report.recent_success_rate(TRAIN_SUCCESS_WINDOW),
        robust_updates: outcome.robust_updates,
    })
}

// ---------------------------------------------------------------------------
// On-disk record encoding (little-endian, exact f32/f64 bit preservation).
// ---------------------------------------------------------------------------

struct PairRecord {
    fingerprint: String,
    classical_train_success: f64,
    berry_train_success: f64,
    robust_updates: u64,
    classical: Vec<f32>,
    berry: Vec<f32>,
}

// The pair record's integrity seal — FNV-1a over raw bytes, from the
// central seed registry.
use crate::seed::fnv1a64_bytes;

fn encode_pair(fingerprint: &str, pair: &TrainedPair) -> Vec<u8> {
    let classical = pair.classical.to_flat_weights();
    let berry = pair.berry.to_flat_weights();
    let mut out = Vec::with_capacity(72 + fingerprint.len() + 4 * (classical.len() + berry.len()));
    out.extend_from_slice(PAIR_MAGIC);
    out.extend_from_slice(&(fingerprint.len() as u64).to_le_bytes());
    out.extend_from_slice(fingerprint.as_bytes());
    out.extend_from_slice(&pair.classical_train_success.to_bits().to_le_bytes());
    out.extend_from_slice(&pair.berry_train_success.to_bits().to_le_bytes());
    out.extend_from_slice(&pair.robust_updates.to_le_bytes());
    for weights in [&classical, &berry] {
        out.extend_from_slice(&(weights.len() as u64).to_le_bytes());
        for w in weights.iter() {
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
    }
    // Trailing checksum over every preceding byte: a torn write or a
    // flipped payload bit is detected at load, not trained over.
    let checksum = fnv1a64_bytes(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn decode_pair(bytes: &[u8]) -> Option<PairRecord> {
    // The checksum guards everything before it; verify first so decoding
    // below never touches corrupted lengths.
    let body_len = bytes.len().checked_sub(8)?;
    let (body, seal) = bytes.split_at(body_len);
    let stored = u64::from_le_bytes(seal.try_into().ok()?);
    if fnv1a64_bytes(body) != stored {
        return None;
    }
    let bytes = body;
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Option<&[u8]> {
        let end = cursor.checked_add(n)?;
        let slice = bytes.get(*cursor..end)?;
        *cursor = end;
        Some(slice)
    };
    let take_u64 = |cursor: &mut usize| -> Option<u64> {
        Some(u64::from_le_bytes(take(cursor, 8)?.try_into().ok()?))
    };
    if take(&mut cursor, PAIR_MAGIC.len())? != PAIR_MAGIC {
        return None;
    }
    let fp_len = usize::try_from(take_u64(&mut cursor)?).ok()?;
    let fingerprint = std::str::from_utf8(take(&mut cursor, fp_len)?).ok()?.to_string();
    let classical_train_success = f64::from_bits(take_u64(&mut cursor)?);
    let berry_train_success = f64::from_bits(take_u64(&mut cursor)?);
    let robust_updates = take_u64(&mut cursor)?;
    let read_weights = |cursor: &mut usize| -> Option<Vec<f32>> {
        let count = usize::try_from(take_u64(cursor)?).ok()?;
        let raw = take(cursor, count.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                .collect(),
        )
    };
    let classical = read_weights(&mut cursor)?;
    let berry = read_weights(&mut cursor)?;
    if cursor != bytes.len() {
        return None;
    }
    Some(PairRecord {
        fingerprint,
        classical_train_success,
        berry_train_success,
        robust_updates,
        classical,
        berry,
    })
}

fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Minimal JSON escaping for the sidecar.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            // lint: allow(unchecked-len-cast) why: char to u32 is lossless by definition, not a length narrowing
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The human-readable fingerprint sidecar written next to each pair record.
fn fingerprint_json(request: &PairRequest) -> String {
    format!(
        "{{\n  \"hash\": \"{:016x}\",\n  \"spec\": \"{}\",\n  \"density\": \"{}\",\n  \
         \"variant\": \"{}\",\n  \"mode\": \"{}\",\n  \"chip\": \"{}\",\n  \
         \"quant_bits\": {},\n  \"seed\": {},\n  \"fingerprint\": \"{}\"\n}}\n",
        request.fingerprint_hash(),
        request.spec.name(),
        request.env.density.label(),
        request.env.variant.label(),
        request.mode.label(),
        json_escape(request.chip.name()),
        request.quant_bits,
        request.seed,
        json_escape(&request.fingerprint()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use berry_uav::world::ObstacleDensity;

    fn smoke_request(base_seed: u64) -> PairRequest {
        let scale = crate::experiment::ExperimentScale::Smoke;
        PairRequest::new(
            QNetworkSpec::mlp(vec![16]),
            scale.navigation_config(ObstacleDensity::Sparse),
            TrainerConfig::smoke_test(),
            LearningMode::offline(0.005),
            ChipProfile::generic(),
            8,
            base_seed,
        )
    }

    #[test]
    fn cached_fingerprints_are_sorted_regardless_of_insertion_order() {
        // The slot map is a HashMap; the listing must not leak its
        // iteration order.
        let keys = ["fp=charlie", "fp=alpha", "fp=bravo"];
        let forward = PolicyStore::in_memory();
        let reverse = PolicyStore::in_memory();
        for key in keys {
            forward.slots.lock().unwrap().entry(key.to_string()).or_default();
        }
        for key in keys.iter().rev() {
            reverse.slots.lock().unwrap().entry(key.to_string()).or_default();
        }
        let listed = forward.cached_fingerprints();
        assert_eq!(listed, ["fp=alpha", "fp=bravo", "fp=charlie"]);
        assert_eq!(listed, reverse.cached_fingerprints());
    }

    #[test]
    fn fingerprints_are_canonical_and_seed_sensitive() {
        let a = smoke_request(1);
        let b = smoke_request(1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.seed, b.seed);
        let c = smoke_request(2);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.seed, c.seed);
        // Any training-relevant field moves the fingerprint.
        let mut d = smoke_request(1);
        d.quant_bits = 4;
        assert_ne!(a.fingerprint(), d.fingerprint());
        let e = PairRequest::new(
            QNetworkSpec::mlp(vec![17]),
            a.env.clone(),
            a.trainer.clone(),
            a.mode,
            a.chip.clone(),
            a.quant_bits,
            1,
        );
        assert_ne!(a.fingerprint(), e.fingerprint());
        assert_ne!(a.seed, e.seed, "spec must shift the derived seed");
    }

    #[test]
    fn pair_seed_family_mixes_and_differs_from_identity() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|h| pair_seed(2023, h)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(pair_seed(2023, 0), 2023);
        assert_ne!(pair_seed(1, 9), pair_seed(2, 9));
    }

    #[test]
    fn memory_store_trains_once_and_serves_hits() {
        let store = PolicyStore::in_memory();
        let request = smoke_request(7);
        let first = store.get_or_train(&request).unwrap();
        let second = store.get_or_train(&request).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = store.stats();
        assert_eq!(stats.trained, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.disk_hits, 0);
        // The cached pair is a real trained pair.
        assert_eq!(first.classical.param_count(), first.berry.param_count());
        assert_ne!(first.classical.to_flat_weights(), first.berry.to_flat_weights());
        assert!(first.robust_updates > 0);
    }

    #[test]
    fn concurrent_requests_share_one_training_and_count_joins() {
        let store = PolicyStore::in_memory();
        let request = smoke_request(21);
        const CLIENTS: usize = 4;
        let pairs: Vec<Arc<TrainedPair>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| scope.spawn(|| store.get_or_train(&request).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in &pairs[1..] {
            assert!(Arc::ptr_eq(&pairs[0], pair));
        }
        let stats = store.stats();
        assert_eq!(stats.trained, 1, "duplicates must share one training");
        assert_eq!(stats.memory_hits as usize, CLIENTS - 1);
        // Every non-training client either joined in flight or hit the
        // finished slot; joins never exceed the hit count.
        assert!(stats.inflight_joins <= stats.memory_hits);
        // A request after completion is a plain hit, not a join.
        let joins_before = stats.inflight_joins;
        store.get_or_train(&request).unwrap();
        let after = store.stats();
        assert_eq!(after.memory_hits as usize, CLIENTS);
        assert_eq!(after.inflight_joins, joins_before);
    }

    #[test]
    fn training_is_a_pure_function_of_the_request() {
        let request = smoke_request(11);
        let a = PolicyStore::in_memory().get_or_train(&request).unwrap();
        let b = PolicyStore::in_memory().get_or_train(&request).unwrap();
        assert_eq!(a.classical.to_flat_weights(), b.classical.to_flat_weights());
        assert_eq!(a.berry.to_flat_weights(), b.berry.to_flat_weights());
        assert_eq!(a.classical_train_success.to_bits(), b.classical_train_success.to_bits());
        assert_eq!(a.robust_updates, b.robust_updates);
    }

    #[test]
    fn disk_layer_round_trips_bitwise_and_counts_disk_hits() {
        let dir = std::env::temp_dir().join(format!(
            "berry-policy-store-test-{}-{:x}",
            std::process::id(),
            pair_seed(0xD15C, 0)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let request = smoke_request(13);

        let cold = PolicyStore::with_dir(&dir).unwrap();
        let trained = cold.get_or_train(&request).unwrap();
        assert_eq!(cold.stats().trained, 1);
        // Both the record and its JSON sidecar exist.
        let pair_file = dir.join(format!("{:016x}.pair", request.fingerprint_hash()));
        assert!(pair_file.exists());
        assert!(pair_file.with_extension("fingerprint.json").exists());
        let sidecar =
            std::fs::read_to_string(pair_file.with_extension("fingerprint.json")).unwrap();
        assert!(sidecar.contains("\"spec\": \"MLP\""));
        assert!(sidecar.contains("\"mode\": \"offline\""));

        // A fresh store over the same directory loads instead of training.
        let warm = PolicyStore::with_dir(&dir).unwrap();
        let loaded = warm.get_or_train(&request).unwrap();
        let stats = warm.stats();
        assert_eq!(stats.trained, 0, "warm store must not retrain");
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(loaded.classical.to_flat_weights(), trained.classical.to_flat_weights());
        assert_eq!(loaded.berry.to_flat_weights(), trained.berry.to_flat_weights());
        assert_eq!(
            loaded.classical_train_success.to_bits(),
            trained.classical_train_success.to_bits()
        );
        assert_eq!(
            loaded.berry_train_success.to_bits(),
            trained.berry_train_success.to_bits()
        );
        assert_eq!(loaded.robust_updates, trained.robust_updates);

        // A different request misses the stale file and trains its own pair.
        let other = smoke_request(14);
        warm.get_or_train(&other).unwrap();
        assert_eq!(warm.stats().trained, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_records_degrade_to_retrains() {
        let record = encode_pair("fp", &TrainedPair {
            spec: QNetworkSpec::mlp(vec![4]),
            classical: QNetworkSpec::mlp(vec![4])
                .build(&[2], 2, &mut StdRng::seed_from_u64(0))
                .unwrap(),
            berry: QNetworkSpec::mlp(vec![4])
                .build(&[2], 2, &mut StdRng::seed_from_u64(1))
                .unwrap(),
            classical_train_success: 0.5,
            berry_train_success: 0.25,
            robust_updates: 3,
        });
        assert!(decode_pair(&record).is_some());
        // Truncation, trailing junk and a foreign magic are all rejected.
        assert!(decode_pair(&record[..record.len() - 1]).is_none());
        let mut long = record.clone();
        long.push(0);
        assert!(decode_pair(&long).is_none());
        let mut bad_magic = record.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode_pair(&bad_magic).is_none());
        assert!(decode_pair(b"").is_none());
    }

    #[test]
    fn encode_decode_preserves_every_bit() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = QNetworkSpec::mlp(vec![8, 4]);
        let pair = TrainedPair {
            spec: spec.clone(),
            classical: spec.build(&[3], 5, &mut rng).unwrap(),
            berry: spec.build(&[3], 5, &mut rng).unwrap(),
            classical_train_success: 0.123_456_789,
            berry_train_success: f64::from_bits(0x3FE5_5555_5555_5555),
            robust_updates: 42,
        };
        let bytes = encode_pair("some fingerprint", &pair);
        let record = decode_pair(&bytes).unwrap();
        assert_eq!(record.fingerprint, "some fingerprint");
        assert_eq!(record.classical, pair.classical.to_flat_weights());
        assert_eq!(record.berry, pair.berry.to_flat_weights());
        assert_eq!(
            record.classical_train_success.to_bits(),
            pair.classical_train_success.to_bits()
        );
        assert_eq!(
            record.berry_train_success.to_bits(),
            pair.berry_train_success.to_bits()
        );
        assert_eq!(record.robust_updates, 42);
    }

    #[test]
    fn checksum_catches_any_single_flipped_bit() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = QNetworkSpec::mlp(vec![4]);
        let pair = TrainedPair {
            spec: spec.clone(),
            classical: spec.build(&[2], 2, &mut rng).unwrap(),
            berry: spec.build(&[2], 2, &mut rng).unwrap(),
            classical_train_success: 0.5,
            berry_train_success: 0.5,
            robust_updates: 1,
        };
        let bytes = encode_pair("fp", &pair);
        // Every byte position — header, fingerprint, floats, lengths,
        // weights and the seal itself — must be covered.
        for pos in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x40;
            assert!(
                decode_pair(&flipped).is_none(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    // -- crash-safety: the satellite corruption matrix ---------------------

    /// Trains one pair into a fresh scratch directory and returns the
    /// pieces the corruption matrix mutates.
    fn seeded_disk_store(tag: u64) -> (PathBuf, PairRequest, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "berry-store-corrupt-{}-{:x}",
            std::process::id(),
            pair_seed(0xC0DE, tag)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let request = smoke_request(40 + tag);
        let cold = PolicyStore::with_dir(&dir).unwrap();
        cold.get_or_train(&request).unwrap();
        assert_eq!(cold.stats().trained, 1);
        let pair_file = dir.join(format!("{:016x}.pair", request.fingerprint_hash()));
        assert!(pair_file.exists());
        (dir, request, pair_file)
    }

    /// The common second half of every corruption-matrix test: a warm
    /// store over the damaged directory quarantines the evidence,
    /// retrains, and re-persists a record the *next* store hits cleanly.
    fn assert_quarantined_and_retrained(dir: &Path, request: &PairRequest, pair_file: &Path) {
        let warm = PolicyStore::with_dir(dir).unwrap();
        warm.get_or_train(request).unwrap();
        let stats = warm.stats();
        assert_eq!(stats.corrupt_quarantined, 1, "must quarantine exactly once");
        assert_eq!(stats.trained, 1, "a corrupt record must retrain");
        assert_eq!(stats.disk_hits, 0);
        assert!(
            pair_file.with_extension("pair.corrupt").exists(),
            "the corrupt record must survive as evidence"
        );
        let healed = PolicyStore::with_dir(dir).unwrap();
        healed.get_or_train(request).unwrap();
        let healed_stats = healed.stats();
        assert_eq!(healed_stats.trained, 0, "the retrain must have re-persisted");
        assert_eq!(healed_stats.disk_hits, 1);
        assert_eq!(healed_stats.corrupt_quarantined, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn truncated_pair_record_is_quarantined_and_retrained() {
        let (dir, request, pair_file) = seeded_disk_store(1);
        let bytes = std::fs::read(&pair_file).unwrap();
        std::fs::write(&pair_file, &bytes[..bytes.len() / 2]).unwrap();
        assert_quarantined_and_retrained(&dir, &request, &pair_file);
    }

    #[test]
    fn bit_flipped_pair_record_is_quarantined_and_retrained() {
        let (dir, request, pair_file) = seeded_disk_store(2);
        let mut bytes = std::fs::read(&pair_file).unwrap();
        let target = bytes.len() * 3 / 4; // deep in the weight payload
        bytes[target] ^= 0x01;
        std::fs::write(&pair_file, &bytes).unwrap();
        assert_quarantined_and_retrained(&dir, &request, &pair_file);
    }

    #[test]
    fn missing_sidecar_is_quarantined_and_retrained() {
        let (dir, request, pair_file) = seeded_disk_store(3);
        std::fs::remove_file(pair_file.with_extension("fingerprint.json")).unwrap();
        assert_quarantined_and_retrained(&dir, &request, &pair_file);
    }

    #[test]
    fn garbled_sidecar_is_quarantined_and_retrained() {
        let (dir, request, pair_file) = seeded_disk_store(4);
        std::fs::write(
            pair_file.with_extension("fingerprint.json"),
            "{\"hash\": \"0000000000000000\"}\n",
        )
        .unwrap();
        assert_quarantined_and_retrained(&dir, &request, &pair_file);
    }

    #[test]
    fn poisoned_slots_mutex_recovers() {
        let store = PolicyStore::in_memory();
        let request = smoke_request(31);
        store.get_or_train(&request).unwrap();
        // Panic while holding the slots lock — the canonical way a mutex
        // gets poisoned in production.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = store.slots.lock().unwrap();
            panic!("poison the slots mutex");
        }));
        assert!(store.slots.is_poisoned());
        // The store still serves hits and still trains new fingerprints.
        store.get_or_train(&request).unwrap();
        assert_eq!(store.stats().memory_hits, 1);
        let other = smoke_request(32);
        store.get_or_train(&other).unwrap();
        assert_eq!(store.stats().trained, 2);
    }

    /// The failpoint-driven chaos pass: one sequential test (sites are
    /// process-global, so splitting these into parallel tests would race
    /// on the registry).
    #[test]
    #[cfg(feature = "failpoints")]
    fn failpoints_drive_persist_torn_write_and_train_panic() {
        use crate::failpoint;

        let dir = std::env::temp_dir().join(format!(
            "berry-store-chaos-{}-{:x}",
            std::process::id(),
            pair_seed(0xFA11, 0)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Phase 1: every persist fails outright.  The run still succeeds
        // from memory; the error is counted and nothing lands on disk.
        failpoint::arm("store.persist", "return(disk gone)").unwrap();
        let store = PolicyStore::with_dir(&dir).unwrap();
        let request = smoke_request(60);
        store.get_or_train(&request).unwrap();
        assert_eq!(store.stats().persist_errors, 1);
        assert_eq!(store.stats().trained, 1);
        let pair_file = dir.join(format!("{:016x}.pair", request.fingerprint_hash()));
        assert!(!pair_file.exists(), "a failed persist must leave no record");

        // Phase 2: a torn write leaves a truncated record at the final
        // path; the next store quarantines it and retrains.
        failpoint::arm("store.persist", "torn(24)").unwrap();
        let torn = PolicyStore::with_dir(&dir).unwrap();
        torn.get_or_train(&request).unwrap();
        assert_eq!(torn.stats().persist_errors, 1);
        assert_eq!(std::fs::read(&pair_file).unwrap().len(), 24);
        failpoint::disarm("store.persist");
        let recovering = PolicyStore::with_dir(&dir).unwrap();
        recovering.get_or_train(&request).unwrap();
        let stats = recovering.stats();
        assert_eq!(stats.corrupt_quarantined, 1);
        assert_eq!(stats.trained, 1);
        assert!(pair_file.with_extension("pair.corrupt").exists());

        // Phase 3: an injected training panic fails only its own slot and
        // is cached; a different fingerprint trains fine afterwards.
        failpoint::arm("store.train", "times(1)*panic").unwrap();
        let isolated = PolicyStore::in_memory();
        let doomed = smoke_request(61);
        let err = isolated.get_or_train(&doomed).unwrap_err();
        assert!(matches!(err, CoreError::Internal(_)), "got {err}");
        assert!(err.to_string().contains("panicked"));
        assert_eq!(isolated.stats().training_panics, 1);
        // The cached error is returned without re-running training.
        let again = isolated.get_or_train(&doomed).unwrap_err();
        assert_eq!(err, again);
        assert_eq!(isolated.stats().training_panics, 1);
        // Other fingerprints are unaffected.
        isolated.get_or_train(&smoke_request(62)).unwrap();
        assert_eq!(isolated.stats().trained, 1);
        failpoint::disarm("store.train");

        // Phase 4: an injected load error quarantines a perfectly good
        // record (the "reads are lying" scenario).
        failpoint::arm("store.load", "return(read smeared)").unwrap();
        let distrusting = PolicyStore::with_dir(&dir).unwrap();
        distrusting.get_or_train(&request).unwrap();
        assert_eq!(distrusting.stats().corrupt_quarantined, 1);
        assert_eq!(distrusting.stats().trained, 1);
        failpoint::disarm("store.load");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
