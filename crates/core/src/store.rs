//! The train-once policy store: a content-addressed cache of trained
//! Classical/BERRY policy pairs.
//!
//! Every table and figure of the paper evaluates the *same* trained policy
//! pairs under different fault conditions, yet each runner used to retrain
//! its pairs from scratch.  [`PolicyStore`] amortizes that cost the way
//! Stutz et al.'s bit-error robustness study amortizes one trained model
//! across an entire voltage/BER sweep: training is keyed by a
//! **fingerprint** of everything the trained weights are a function of —
//! network spec, environment (density + disturbance variant), trainer
//! hyper-parameters, learning mode, chip fault profile, quantization width
//! and the derived training seed — and each fingerprint is trained at most
//! once per store (and, with the on-disk layer, at most once per machine).
//!
//! # Determinism
//!
//! A [`PairRequest`]'s training seed is derived from the campaign base seed
//! and the request's *seedless* fingerprint hash via [`pair_seed`] — a
//! fourth SplitMix64-style family, disjoint from
//! [`crate::evaluate::fault_map_seed`], `berry_rl::vecenv::episode_seed`
//! and [`crate::campaign::scenario_seed`].  Training is a pure function of
//! the request, so a cache hit (memory or disk) returns **bitwise** the
//! weights a miss would have trained; downstream evaluation rows therefore
//! cannot tell whether the store was warm.  Notably the seed does *not*
//! depend on any grid index: two campaign cells (or two different runner
//! binaries sharing one store and base seed) that need the same pair
//! resolve to the same fingerprint and share one training run.
//!
//! # On-disk layer
//!
//! [`PolicyStore::with_dir`] adds a directory layer: each pair is stored as
//! `<hash>.pair` (a little-endian binary record of the fingerprint string,
//! training metadata and both flat-weight vectors — f32 bits are preserved
//! exactly) plus a human-readable `<hash>.fingerprint.json` sidecar.  Loads
//! verify the embedded fingerprint string against the request, so a hash
//! collision or a stale file degrades to a retrain, never to wrong weights.

use crate::error::CoreError;
use crate::robust::{train_berry_with_fault_map, BerryConfig, LearningMode};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_nn::network::Sequential;
use berry_rl::env::Environment;
use berry_rl::policy::QNetworkSpec;
use berry_rl::trainer::{train_classical, TrainerConfig};
use berry_uav::env::{NavigationConfig, NavigationEnv};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Episode window used for the cached train-success metadata (matches the
/// campaign's "trained at all" signal).
pub const TRAIN_SUCCESS_WINDOW: usize = 20;

/// Magic prefix of the on-disk pair record (versioned: bump on layout
/// change so stale caches degrade to retrains).
const PAIR_MAGIC: &[u8; 8] = b"BERRYPS1";

/// Derives a pair's training seed from a campaign base seed and the
/// request's seedless fingerprint hash.
///
/// A SplitMix64-style mix whose add-multiplier/offset pair is distinct
/// from the fault-map, episode and scenario families, keeping all four
/// derivation families disjoint (`tests/parallel_determinism.rs` checks
/// the no-collision property).
#[must_use]
pub fn pair_seed(base_seed: u64, fingerprint_hash: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(fingerprint_hash.wrapping_mul(0xD6E8_FEB8_6659_FD93))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash of a canonical fingerprint string.
fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a Classical/BERRY pair training run is a function of.
///
/// The classical baseline and the BERRY policy train sequentially off one
/// RNG stream seeded with [`PairRequest::seed`], exactly as the campaign
/// engine always trained its cells — the pair is the cache unit because
/// splitting it would change the BERRY policy's stream.
#[derive(Debug, Clone)]
pub struct PairRequest {
    /// Q-network architecture to train.
    pub spec: QNetworkSpec,
    /// Navigation-environment configuration (density, arena, disturbance
    /// variant, …) both policies train on.
    pub env: NavigationConfig,
    /// Episode-level training hyper-parameters shared by both policies.
    pub trainer: TrainerConfig,
    /// BERRY learning mode (offline train-BER or on-device voltage).
    pub mode: LearningMode,
    /// Chip profile supplying the spatial fault pattern during BERRY
    /// training.
    pub chip: ChipProfile,
    /// Quantization width used for fault injection.
    pub quant_bits: u8,
    /// The derived training seed (see [`PairRequest::new`]).
    pub seed: u64,
}

impl PairRequest {
    /// Builds a request whose training seed is derived from `base_seed` and
    /// the request's own (seedless) fingerprint via [`pair_seed`] — the
    /// canonical constructor: every consumer that derives seeds this way
    /// shares cache entries for identical training work.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec: QNetworkSpec,
        env: NavigationConfig,
        trainer: TrainerConfig,
        mode: LearningMode,
        chip: ChipProfile,
        quant_bits: u8,
        base_seed: u64,
    ) -> Self {
        let mut request = Self {
            spec,
            env,
            trainer,
            mode,
            chip,
            quant_bits,
            seed: 0,
        };
        request.seed = pair_seed(base_seed, fnv1a64(&request.fingerprint_body()));
        request
    }

    /// The canonical fingerprint text *without* the seed — what the seed
    /// derivation hashes over.
    fn fingerprint_body(&self) -> String {
        format!(
            "berry-pair-v1;spec={:?};env={:?};trainer={:?};mode={:?};chip={:?};quant_bits={}",
            self.spec, self.env, self.trainer, self.mode, self.chip, self.quant_bits
        )
    }

    /// The full canonical fingerprint (cache key) of this request.
    pub fn fingerprint(&self) -> String {
        format!("{};seed={}", self.fingerprint_body(), self.seed)
    }

    /// 64-bit content hash of the fingerprint (used for file names).
    pub fn fingerprint_hash(&self) -> u64 {
        fnv1a64(&self.fingerprint())
    }
}

/// A cached Classical/BERRY policy pair plus the training metadata the
/// campaign rows report.
#[derive(Debug, Clone)]
pub struct TrainedPair {
    /// The architecture both policies share.
    pub spec: QNetworkSpec,
    /// Classically trained policy (no error injection).
    pub classical: Sequential,
    /// BERRY error-aware policy.
    pub berry: Sequential,
    /// Classical success rate over the last [`TRAIN_SUCCESS_WINDOW`]
    /// training episodes.
    pub classical_train_success: f64,
    /// BERRY success rate over the last [`TRAIN_SUCCESS_WINDOW`] training
    /// episodes.
    pub berry_train_success: f64,
    /// Number of BERRY dual-pass optimizer updates performed.
    pub robust_updates: u64,
}

/// Hit/miss counters of a [`PolicyStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Pairs trained from scratch by this store instance.
    pub trained: u64,
    /// Requests served from the in-memory map (including in-flight joins).
    pub memory_hits: u64,
    /// Requests served from the on-disk layer.
    pub disk_hits: u64,
    /// The subset of `memory_hits` that arrived while the pair was still
    /// **being trained** and blocked on the in-flight run instead of
    /// retraining — the dedup signal `berry-serve` reports when N
    /// concurrent clients request the same cell.
    pub inflight_joins: u64,
}

type Slot = Arc<OnceLock<std::result::Result<Arc<TrainedPair>, CoreError>>>;

/// A content-addressed cache of trained policy pairs: an in-memory map
/// (always) plus an optional on-disk layer.
///
/// Thread-safe: campaign cells sharded across rayon workers can request
/// pairs concurrently; two workers racing on the same fingerprint
/// deduplicate onto one training run (the second blocks on the first's
/// `OnceLock` instead of retraining).
#[derive(Debug)]
pub struct PolicyStore {
    slots: Mutex<HashMap<String, Slot>>,
    dir: Option<PathBuf>,
    trained: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    inflight_joins: AtomicU64,
}

impl Default for PolicyStore {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl PolicyStore {
    /// A purely in-memory store (the default for one-shot runs and tests).
    pub fn in_memory() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            dir: None,
            trained: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            inflight_joins: AtomicU64::new(0),
        }
    }

    /// A store backed by `dir`: misses consult (and populate) flat-weight
    /// records on disk, so repeated runs — even across processes — retrain
    /// nothing.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            CoreError::InvalidConfig(format!(
                "cannot create policy-store directory {}: {e}",
                dir.display()
            ))
        })?;
        Ok(Self {
            dir: Some(dir),
            ..Self::in_memory()
        })
    }

    /// The on-disk layer's directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            trained: self.trained.load(Ordering::Relaxed),
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            inflight_joins: self.inflight_joins.load(Ordering::Relaxed),
        }
    }

    /// Returns the trained pair for `request`, training it (at most once
    /// per fingerprint) on a miss.
    ///
    /// # Errors
    ///
    /// Returns an error if training fails; the error is cached, so
    /// concurrent requesters of the same broken fingerprint all observe it
    /// without retraining.
    pub fn get_or_train(&self, request: &PairRequest) -> Result<Arc<TrainedPair>> {
        let key = request.fingerprint();
        let slot = {
            let mut slots = self.slots.lock().expect("policy-store lock poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        // Distinguish a hit on a *finished* slot from joining a training
        // still in flight: the join blocks inside `get_or_init` until the
        // initializing thread finishes, sharing its single training run.
        let was_complete = slot.get().is_some();
        let mut initialized = false;
        let outcome = slot.get_or_init(|| {
            initialized = true;
            if let Some(pair) = self.load_from_disk(request) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::new(pair));
            }
            match train_pair(request) {
                Ok(pair) => {
                    self.trained.fetch_add(1, Ordering::Relaxed);
                    let pair = Arc::new(pair);
                    self.persist(request, &pair);
                    Ok(pair)
                }
                Err(e) => Err(e),
            }
        });
        if !initialized {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            if !was_complete {
                self.inflight_joins.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome.clone()
    }

    fn pair_path(&self, request: &PairRequest) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.pair", request.fingerprint_hash())))
    }

    /// Writes the binary pair record and its JSON sidecar (best effort: a
    /// full disk degrades the cache, it does not fail the run).
    fn persist(&self, request: &PairRequest, pair: &TrainedPair) {
        let Some(path) = self.pair_path(request) else {
            return;
        };
        let bytes = encode_pair(&request.fingerprint(), pair);
        if write_atomically(&path, &bytes).is_ok() {
            let sidecar = path.with_extension("fingerprint.json");
            let _ = write_atomically(&sidecar, fingerprint_json(request).as_bytes());
        }
    }

    /// Attempts to load `request` from the on-disk layer.  Any mismatch —
    /// missing file, bad magic, foreign fingerprint, truncated weights,
    /// architecture drift — is treated as a miss.
    fn load_from_disk(&self, request: &PairRequest) -> Option<TrainedPair> {
        let path = self.pair_path(request)?;
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .ok()?
            .read_to_end(&mut bytes)
            .ok()?;
        let record = decode_pair(&bytes)?;
        if record.fingerprint != request.fingerprint() {
            return None;
        }
        // Rebuild the networks through the spec → flat-weights round trip;
        // the environment supplies the observation/action geometry.
        let env = NavigationEnv::new(request.env.clone()).ok()?;
        let shape = env.observation_shape();
        let actions = env.num_actions();
        let classical = request
            .spec
            .build_with_flat_weights(&shape, actions, &record.classical)
            .ok()?;
        let berry = request
            .spec
            .build_with_flat_weights(&shape, actions, &record.berry)
            .ok()?;
        Some(TrainedPair {
            spec: request.spec.clone(),
            classical,
            berry,
            classical_train_success: record.classical_train_success,
            berry_train_success: record.berry_train_success,
            robust_updates: record.robust_updates,
        })
    }
}

/// Trains the Classical/BERRY pair for a request — the single training
/// call site every runner now funnels through.  Classical first, BERRY
/// second, both off one stream seeded by the request (the structure the
/// campaign engine has always used for its cells).
fn train_pair(request: &PairRequest) -> Result<TrainedPair> {
    let mut rng = StdRng::seed_from_u64(request.seed);
    let mut env = NavigationEnv::new(request.env.clone())?;
    let (classical_agent, classical_report) =
        train_classical(&mut env, &request.spec, &request.trainer, &mut rng)?;
    let berry_config = BerryConfig {
        trainer: request.trainer.clone(),
        mode: request.mode,
        chip: request.chip.clone(),
        quant_bits: request.quant_bits,
    };
    let mut env = NavigationEnv::new(request.env.clone())?;
    let outcome = train_berry_with_fault_map(&mut env, &request.spec, &berry_config, &mut rng)?;
    Ok(TrainedPair {
        spec: request.spec.clone(),
        classical: classical_agent.q_net().clone(),
        berry: outcome.agent.q_net().clone(),
        classical_train_success: classical_report.recent_success_rate(TRAIN_SUCCESS_WINDOW),
        berry_train_success: outcome.report.recent_success_rate(TRAIN_SUCCESS_WINDOW),
        robust_updates: outcome.robust_updates,
    })
}

// ---------------------------------------------------------------------------
// On-disk record encoding (little-endian, exact f32/f64 bit preservation).
// ---------------------------------------------------------------------------

struct PairRecord {
    fingerprint: String,
    classical_train_success: f64,
    berry_train_success: f64,
    robust_updates: u64,
    classical: Vec<f32>,
    berry: Vec<f32>,
}

fn encode_pair(fingerprint: &str, pair: &TrainedPair) -> Vec<u8> {
    let classical = pair.classical.to_flat_weights();
    let berry = pair.berry.to_flat_weights();
    let mut out = Vec::with_capacity(64 + fingerprint.len() + 4 * (classical.len() + berry.len()));
    out.extend_from_slice(PAIR_MAGIC);
    out.extend_from_slice(&(fingerprint.len() as u64).to_le_bytes());
    out.extend_from_slice(fingerprint.as_bytes());
    out.extend_from_slice(&pair.classical_train_success.to_bits().to_le_bytes());
    out.extend_from_slice(&pair.berry_train_success.to_bits().to_le_bytes());
    out.extend_from_slice(&pair.robust_updates.to_le_bytes());
    for weights in [&classical, &berry] {
        out.extend_from_slice(&(weights.len() as u64).to_le_bytes());
        for w in weights.iter() {
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
    }
    out
}

fn decode_pair(bytes: &[u8]) -> Option<PairRecord> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Option<&[u8]> {
        let end = cursor.checked_add(n)?;
        let slice = bytes.get(*cursor..end)?;
        *cursor = end;
        Some(slice)
    };
    let take_u64 = |cursor: &mut usize| -> Option<u64> {
        Some(u64::from_le_bytes(take(cursor, 8)?.try_into().ok()?))
    };
    if take(&mut cursor, PAIR_MAGIC.len())? != PAIR_MAGIC {
        return None;
    }
    let fp_len = usize::try_from(take_u64(&mut cursor)?).ok()?;
    let fingerprint = std::str::from_utf8(take(&mut cursor, fp_len)?).ok()?.to_string();
    let classical_train_success = f64::from_bits(take_u64(&mut cursor)?);
    let berry_train_success = f64::from_bits(take_u64(&mut cursor)?);
    let robust_updates = take_u64(&mut cursor)?;
    let read_weights = |cursor: &mut usize| -> Option<Vec<f32>> {
        let count = usize::try_from(take_u64(cursor)?).ok()?;
        let raw = take(cursor, count.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("chunk of 4"))))
                .collect(),
        )
    };
    let classical = read_weights(&mut cursor)?;
    let berry = read_weights(&mut cursor)?;
    if cursor != bytes.len() {
        return None;
    }
    Some(PairRecord {
        fingerprint,
        classical_train_success,
        berry_train_success,
        robust_updates,
        classical,
        berry,
    })
}

fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Minimal JSON escaping for the sidecar.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The human-readable fingerprint sidecar written next to each pair record.
fn fingerprint_json(request: &PairRequest) -> String {
    format!(
        "{{\n  \"hash\": \"{:016x}\",\n  \"spec\": \"{}\",\n  \"density\": \"{}\",\n  \
         \"variant\": \"{}\",\n  \"mode\": \"{}\",\n  \"chip\": \"{}\",\n  \
         \"quant_bits\": {},\n  \"seed\": {},\n  \"fingerprint\": \"{}\"\n}}\n",
        request.fingerprint_hash(),
        request.spec.name(),
        request.env.density.label(),
        request.env.variant.label(),
        request.mode.label(),
        json_escape(request.chip.name()),
        request.quant_bits,
        request.seed,
        json_escape(&request.fingerprint()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use berry_uav::world::ObstacleDensity;

    fn smoke_request(base_seed: u64) -> PairRequest {
        let scale = crate::experiment::ExperimentScale::Smoke;
        PairRequest::new(
            QNetworkSpec::mlp(vec![16]),
            scale.navigation_config(ObstacleDensity::Sparse),
            TrainerConfig::smoke_test(),
            LearningMode::offline(0.005),
            ChipProfile::generic(),
            8,
            base_seed,
        )
    }

    #[test]
    fn fingerprints_are_canonical_and_seed_sensitive() {
        let a = smoke_request(1);
        let b = smoke_request(1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.seed, b.seed);
        let c = smoke_request(2);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.seed, c.seed);
        // Any training-relevant field moves the fingerprint.
        let mut d = smoke_request(1);
        d.quant_bits = 4;
        assert_ne!(a.fingerprint(), d.fingerprint());
        let e = PairRequest::new(
            QNetworkSpec::mlp(vec![17]),
            a.env.clone(),
            a.trainer.clone(),
            a.mode,
            a.chip.clone(),
            a.quant_bits,
            1,
        );
        assert_ne!(a.fingerprint(), e.fingerprint());
        assert_ne!(a.seed, e.seed, "spec must shift the derived seed");
    }

    #[test]
    fn pair_seed_family_mixes_and_differs_from_identity() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|h| pair_seed(2023, h)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(pair_seed(2023, 0), 2023);
        assert_ne!(pair_seed(1, 9), pair_seed(2, 9));
    }

    #[test]
    fn memory_store_trains_once_and_serves_hits() {
        let store = PolicyStore::in_memory();
        let request = smoke_request(7);
        let first = store.get_or_train(&request).unwrap();
        let second = store.get_or_train(&request).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = store.stats();
        assert_eq!(stats.trained, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.disk_hits, 0);
        // The cached pair is a real trained pair.
        assert_eq!(first.classical.param_count(), first.berry.param_count());
        assert_ne!(first.classical.to_flat_weights(), first.berry.to_flat_weights());
        assert!(first.robust_updates > 0);
    }

    #[test]
    fn concurrent_requests_share_one_training_and_count_joins() {
        let store = PolicyStore::in_memory();
        let request = smoke_request(21);
        const CLIENTS: usize = 4;
        let pairs: Vec<Arc<TrainedPair>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| scope.spawn(|| store.get_or_train(&request).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in &pairs[1..] {
            assert!(Arc::ptr_eq(&pairs[0], pair));
        }
        let stats = store.stats();
        assert_eq!(stats.trained, 1, "duplicates must share one training");
        assert_eq!(stats.memory_hits as usize, CLIENTS - 1);
        // Every non-training client either joined in flight or hit the
        // finished slot; joins never exceed the hit count.
        assert!(stats.inflight_joins <= stats.memory_hits);
        // A request after completion is a plain hit, not a join.
        let joins_before = stats.inflight_joins;
        store.get_or_train(&request).unwrap();
        let after = store.stats();
        assert_eq!(after.memory_hits as usize, CLIENTS);
        assert_eq!(after.inflight_joins, joins_before);
    }

    #[test]
    fn training_is_a_pure_function_of_the_request() {
        let request = smoke_request(11);
        let a = PolicyStore::in_memory().get_or_train(&request).unwrap();
        let b = PolicyStore::in_memory().get_or_train(&request).unwrap();
        assert_eq!(a.classical.to_flat_weights(), b.classical.to_flat_weights());
        assert_eq!(a.berry.to_flat_weights(), b.berry.to_flat_weights());
        assert_eq!(a.classical_train_success.to_bits(), b.classical_train_success.to_bits());
        assert_eq!(a.robust_updates, b.robust_updates);
    }

    #[test]
    fn disk_layer_round_trips_bitwise_and_counts_disk_hits() {
        let dir = std::env::temp_dir().join(format!(
            "berry-policy-store-test-{}-{:x}",
            std::process::id(),
            pair_seed(0xD15C, 0)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let request = smoke_request(13);

        let cold = PolicyStore::with_dir(&dir).unwrap();
        let trained = cold.get_or_train(&request).unwrap();
        assert_eq!(cold.stats().trained, 1);
        // Both the record and its JSON sidecar exist.
        let pair_file = dir.join(format!("{:016x}.pair", request.fingerprint_hash()));
        assert!(pair_file.exists());
        assert!(pair_file.with_extension("fingerprint.json").exists());
        let sidecar =
            std::fs::read_to_string(pair_file.with_extension("fingerprint.json")).unwrap();
        assert!(sidecar.contains("\"spec\": \"MLP\""));
        assert!(sidecar.contains("\"mode\": \"offline\""));

        // A fresh store over the same directory loads instead of training.
        let warm = PolicyStore::with_dir(&dir).unwrap();
        let loaded = warm.get_or_train(&request).unwrap();
        let stats = warm.stats();
        assert_eq!(stats.trained, 0, "warm store must not retrain");
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(loaded.classical.to_flat_weights(), trained.classical.to_flat_weights());
        assert_eq!(loaded.berry.to_flat_weights(), trained.berry.to_flat_weights());
        assert_eq!(
            loaded.classical_train_success.to_bits(),
            trained.classical_train_success.to_bits()
        );
        assert_eq!(
            loaded.berry_train_success.to_bits(),
            trained.berry_train_success.to_bits()
        );
        assert_eq!(loaded.robust_updates, trained.robust_updates);

        // A different request misses the stale file and trains its own pair.
        let other = smoke_request(14);
        warm.get_or_train(&other).unwrap();
        assert_eq!(warm.stats().trained, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_records_degrade_to_retrains() {
        let record = encode_pair("fp", &TrainedPair {
            spec: QNetworkSpec::mlp(vec![4]),
            classical: QNetworkSpec::mlp(vec![4])
                .build(&[2], 2, &mut StdRng::seed_from_u64(0))
                .unwrap(),
            berry: QNetworkSpec::mlp(vec![4])
                .build(&[2], 2, &mut StdRng::seed_from_u64(1))
                .unwrap(),
            classical_train_success: 0.5,
            berry_train_success: 0.25,
            robust_updates: 3,
        });
        assert!(decode_pair(&record).is_some());
        // Truncation, trailing junk and a foreign magic are all rejected.
        assert!(decode_pair(&record[..record.len() - 1]).is_none());
        let mut long = record.clone();
        long.push(0);
        assert!(decode_pair(&long).is_none());
        let mut bad_magic = record.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode_pair(&bad_magic).is_none());
        assert!(decode_pair(b"").is_none());
    }

    #[test]
    fn encode_decode_preserves_every_bit() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = QNetworkSpec::mlp(vec![8, 4]);
        let pair = TrainedPair {
            spec: spec.clone(),
            classical: spec.build(&[3], 5, &mut rng).unwrap(),
            berry: spec.build(&[3], 5, &mut rng).unwrap(),
            classical_train_success: 0.123_456_789,
            berry_train_success: f64::from_bits(0x3FE5_5555_5555_5555),
            robust_updates: 42,
        };
        let bytes = encode_pair("some fingerprint", &pair);
        let record = decode_pair(&bytes).unwrap();
        assert_eq!(record.fingerprint, "some fingerprint");
        assert_eq!(record.classical, pair.classical.to_flat_weights());
        assert_eq!(record.berry, pair.berry.to_flat_weights());
        assert_eq!(
            record.classical_train_success.to_bits(),
            pair.classical_train_success.to_bits()
        );
        assert_eq!(
            record.berry_train_success.to_bits(),
            pair.berry_train_success.to_bits()
        );
        assert_eq!(record.robust_updates, 42);
    }
}
