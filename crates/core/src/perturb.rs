//! The `BErr_p(θ)` operator: quantize, inject bit errors, dequantize.
//!
//! Algorithm 1 line 15 of the paper perturbs the Q-network and target-
//! network parameters by injecting bit errors "following per-layer 8-bit
//! quantization with rounding".  [`NetworkPerturber`] implements exactly
//! that: every parameter tensor is quantized to signed 8-bit integers with a
//! per-tensor scale, the resulting byte image (laid out tensor after tensor)
//! is exposed to a [`FaultMap`] drawn from a [`ChipProfile`], and the
//! perturbed bytes are dequantized back into a *copy* of the network, so the
//! clean weights are never touched.

use crate::error::CoreError;
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_faults::fault_map::FaultMap;
use berry_nn::network::Sequential;
use berry_nn::quant::QuantizedNetwork;
use serde::{Deserialize, Serialize};

/// Quantizes networks and injects bit-error fault maps into them.
///
/// # Examples
///
/// ```
/// use berry_core::perturb::NetworkPerturber;
/// use berry_faults::chip::ChipProfile;
/// use berry_rl::policy::QNetworkSpec;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), berry_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = QNetworkSpec::mlp(vec![16]).build(&[4], 3, &mut rng)?;
/// let perturber = NetworkPerturber::new(8)?;
/// let chip = ChipProfile::generic();
/// let map = perturber.sample_fault_map(&net, &chip, 0.01, &mut rng)?;
/// let perturbed = perturber.perturb_with_map(&net, &map)?;
/// assert_ne!(perturbed.to_flat_weights(), net.to_flat_weights());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkPerturber {
    bits: u8,
}

impl NetworkPerturber {
    /// Creates a perturber operating at the given quantization width.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `bits` is zero or above 8.
    pub fn new(bits: u8) -> Result<Self> {
        if bits == 0 || bits > 8 {
            return Err(CoreError::InvalidConfig(format!(
                "quantization width must be in 1..=8, got {bits}"
            )));
        }
        Ok(Self { bits })
    }

    /// The quantization width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of SRAM bits the network's parameters occupy under this
    /// perturber's quantization (each parameter is stored in one byte, of
    /// which the low `bits` carry information — fault maps are drawn over
    /// the full byte image to stay faithful to an 8-bit word layout).
    pub fn memory_bits(&self, net: &Sequential) -> usize {
        net.param_count() * 8
    }

    /// Draws a fault map over the network's quantized parameter memory at
    /// bit-error rate `ber` (a fraction) using the chip's spatial pattern
    /// and flip bias.
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a valid probability.
    pub fn sample_fault_map<R: rand::Rng + ?Sized>(
        &self,
        net: &Sequential,
        chip: &ChipProfile,
        ber: f64,
        rng: &mut R,
    ) -> Result<FaultMap> {
        Ok(chip.fault_map_at_ber(rng, self.memory_bits(net), ber)?)
    }

    /// Draws a fault map at the bit-error rate implied by a normalized
    /// operating voltage on the given chip.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range voltages.
    pub fn sample_fault_map_at_voltage<R: rand::Rng + ?Sized>(
        &self,
        net: &Sequential,
        chip: &ChipProfile,
        voltage_norm: f64,
        rng: &mut R,
    ) -> Result<FaultMap> {
        Ok(chip.fault_map_at_voltage(rng, self.memory_bits(net), voltage_norm)?)
    }

    /// Returns a copy of `net` whose quantized parameters have the fault map
    /// applied (the perturbed parameters `˜θ` of Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns an error if quantization fails.
    pub fn perturb_with_map(&self, net: &Sequential, map: &FaultMap) -> Result<Sequential> {
        let mut quantized = QuantizedNetwork::from_network(net, self.bits)?;
        let mut bit_offset = 0usize;
        for tensor in quantized.tensors_mut() {
            let tensor_bits = tensor.len() * 8;
            let window = map.window(bit_offset, tensor_bits);
            window.apply(tensor.bytes_mut());
            bit_offset += tensor_bits;
        }
        let mut perturbed = net.clone();
        quantized.write_to_network(&mut perturbed)?;
        Ok(perturbed)
    }

    /// Convenience: draw a fresh fault map at rate `ber` and apply it.
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is invalid or quantization fails.
    pub fn perturb_random<R: rand::Rng + ?Sized>(
        &self,
        net: &Sequential,
        chip: &ChipProfile,
        ber: f64,
        rng: &mut R,
    ) -> Result<Sequential> {
        let map = self.sample_fault_map(net, chip, ber, rng)?;
        self.perturb_with_map(net, &map)
    }

    /// Returns a copy of `net` that has been quantized and dequantized with
    /// *no* bit errors — the quantization noise floor used for error-free
    /// deployment numbers.
    ///
    /// # Errors
    ///
    /// Returns an error if quantization fails.
    pub fn quantized_copy(&self, net: &Sequential) -> Result<Sequential> {
        let quantized = QuantizedNetwork::from_network(net, self.bits)?;
        let mut copy = net.clone();
        quantized.write_to_network(&mut copy)?;
        Ok(copy)
    }
}

impl Default for NetworkPerturber {
    fn default() -> Self {
        Self { bits: 8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berry_rl::policy::QNetworkSpec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn test_net(seed: u64) -> Sequential {
        let mut r = rng(seed);
        QNetworkSpec::mlp(vec![32, 16]).build(&[8], 5, &mut r).unwrap()
    }

    #[test]
    fn invalid_bit_widths_are_rejected() {
        assert!(NetworkPerturber::new(0).is_err());
        assert!(NetworkPerturber::new(9).is_err());
        assert_eq!(NetworkPerturber::new(8).unwrap().bits(), 8);
        assert_eq!(NetworkPerturber::default().bits(), 8);
    }

    #[test]
    fn memory_bits_counts_one_byte_per_parameter() {
        let net = test_net(1);
        let p = NetworkPerturber::new(8).unwrap();
        assert_eq!(p.memory_bits(&net), net.param_count() * 8);
    }

    #[test]
    fn zero_ber_perturbation_equals_quantized_copy() {
        let net = test_net(2);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(3);
        let perturbed = p.perturb_random(&net, &chip, 0.0, &mut r).unwrap();
        let quantized = p.quantized_copy(&net).unwrap();
        assert_eq!(perturbed.to_flat_weights(), quantized.to_flat_weights());
        // Quantization alone stays close to the original weights.
        for (a, b) in net
            .to_flat_weights()
            .iter()
            .zip(quantized.to_flat_weights().iter())
        {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn perturbation_does_not_touch_the_original_network() {
        let net = test_net(4);
        let before = net.to_flat_weights();
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(5);
        let _perturbed = p.perturb_random(&net, &chip, 0.05, &mut r).unwrap();
        assert_eq!(net.to_flat_weights(), before);
    }

    #[test]
    fn higher_ber_causes_larger_weight_deviation() {
        let net = test_net(6);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(7);
        let deviation = |ber: f64, r: &mut rand::rngs::StdRng| {
            let perturbed = p.perturb_random(&net, &chip, ber, r).unwrap();
            perturbed
                .to_flat_weights()
                .iter()
                .zip(net.to_flat_weights())
                .map(|(a, b)| (a - b).abs() as f64)
                .sum::<f64>()
        };
        let low: f64 = (0..5).map(|_| deviation(0.001, &mut r)).sum();
        let high: f64 = (0..5).map(|_| deviation(0.05, &mut r)).sum();
        assert!(high > low, "low {low} vs high {high}");
    }

    #[test]
    fn same_fault_map_gives_identical_perturbations() {
        let net = test_net(8);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(9);
        let map = p.sample_fault_map(&net, &chip, 0.02, &mut r).unwrap();
        let a = p.perturb_with_map(&net, &map).unwrap();
        let b = p.perturb_with_map(&net, &map).unwrap();
        assert_eq!(a.to_flat_weights(), b.to_flat_weights());
    }

    #[test]
    fn perturbed_network_still_runs_forward() {
        let net = test_net(10);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::chip2_column_aligned();
        let mut r = rng(11);
        let mut perturbed = p.perturb_random(&net, &chip, 0.1, &mut r).unwrap();
        let x = berry_nn::tensor::Tensor::zeros(&[1, 8]);
        let y = perturbed.forward(&x);
        assert_eq!(y.shape(), &[1, 5]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn voltage_based_sampling_follows_the_chip_curve() {
        let net = test_net(12);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(13);
        let at_vmin = p
            .sample_fault_map_at_voltage(&net, &chip, 1.0, &mut r)
            .unwrap();
        assert!(at_vmin.is_empty());
        let low = p
            .sample_fault_map_at_voltage(&net, &chip, 0.68, &mut r)
            .unwrap();
        assert!(!low.is_empty());
    }
}
