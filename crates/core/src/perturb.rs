//! The `BErr_p(θ)` operator: quantize, inject bit errors, dequantize.
//!
//! Algorithm 1 line 15 of the paper perturbs the Q-network and target-
//! network parameters by injecting bit errors "following per-layer 8-bit
//! quantization with rounding".  [`NetworkPerturber`] implements exactly
//! that: every parameter tensor is quantized to signed 8-bit integers with a
//! per-tensor scale, the resulting byte image (laid out tensor after tensor)
//! is exposed to a [`FaultMap`] drawn from a [`ChipProfile`], and the
//! perturbed bytes are dequantized back into a *copy* of the network, so the
//! clean weights are never touched.

use crate::error::CoreError;
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_faults::fault_map::FaultMap;
use berry_nn::network::{InferScratch, Sequential};
use berry_nn::quant::QuantizedNetwork;
use serde::{Deserialize, Serialize};
use std::sync::{Mutex, PoisonError};

/// Quantizes networks and injects bit-error fault maps into them.
///
/// # Examples
///
/// ```
/// use berry_core::perturb::NetworkPerturber;
/// use berry_faults::chip::ChipProfile;
/// use berry_rl::policy::QNetworkSpec;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), berry_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = QNetworkSpec::mlp(vec![16]).build(&[4], 3, &mut rng)?;
/// let perturber = NetworkPerturber::new(8)?;
/// let chip = ChipProfile::generic();
/// let map = perturber.sample_fault_map(&net, &chip, 0.01, &mut rng)?;
/// let perturbed = perturber.perturb_with_map(&net, &map)?;
/// assert_ne!(perturbed.to_flat_weights(), net.to_flat_weights());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkPerturber {
    bits: u8,
}

impl NetworkPerturber {
    /// Creates a perturber operating at the given quantization width.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `bits` is zero or above 8.
    pub fn new(bits: u8) -> Result<Self> {
        if bits == 0 || bits > 8 {
            return Err(CoreError::InvalidConfig(format!(
                "quantization width must be in 1..=8, got {bits}"
            )));
        }
        Ok(Self { bits })
    }

    /// The quantization width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of SRAM bits the network's parameters occupy under this
    /// perturber's quantization (each parameter is stored in one byte, of
    /// which the low `bits` carry information — fault maps are drawn over
    /// the full byte image to stay faithful to an 8-bit word layout).
    pub fn memory_bits(&self, net: &Sequential) -> usize {
        net.param_count() * 8
    }

    /// Draws a fault map over the network's quantized parameter memory at
    /// bit-error rate `ber` (a fraction) using the chip's spatial pattern
    /// and flip bias.
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a valid probability.
    pub fn sample_fault_map<R: rand::Rng + ?Sized>(
        &self,
        net: &Sequential,
        chip: &ChipProfile,
        ber: f64,
        rng: &mut R,
    ) -> Result<FaultMap> {
        Ok(chip.fault_map_at_ber(rng, self.memory_bits(net), ber)?)
    }

    /// Draws a fault map at the bit-error rate implied by a normalized
    /// operating voltage on the given chip.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range voltages.
    pub fn sample_fault_map_at_voltage<R: rand::Rng + ?Sized>(
        &self,
        net: &Sequential,
        chip: &ChipProfile,
        voltage_norm: f64,
        rng: &mut R,
    ) -> Result<FaultMap> {
        Ok(chip.fault_map_at_voltage(rng, self.memory_bits(net), voltage_norm)?)
    }

    /// Returns a copy of `net` whose quantized parameters have the fault map
    /// applied (the perturbed parameters `˜θ` of Algorithm 1).
    ///
    /// This is the one-shot reference path; evaluation loops that apply
    /// many maps to the same network should build a [`PerturbContext`] and
    /// pay the quantization once.
    ///
    /// # Errors
    ///
    /// Returns an error if quantization fails.
    pub fn perturb_with_map(&self, net: &Sequential, map: &FaultMap) -> Result<Sequential> {
        let mut quantized = QuantizedNetwork::from_network(net, self.bits)?;
        inject_map(&mut quantized, map);
        let mut perturbed = net.clone();
        quantized.write_to_network(&mut perturbed)?;
        Ok(perturbed)
    }

    /// Builds a quantize-once [`PerturbContext`] for `net`: the network is
    /// quantized a single time and every subsequent fault map only pays a
    /// byte copy + flip injection + dequantize into reusable scratch.
    ///
    /// # Errors
    ///
    /// Returns an error if quantization fails.
    pub fn context(&self, net: &Sequential) -> Result<PerturbContext> {
        PerturbContext::new(net, self.bits)
    }

    /// Convenience: draw a fresh fault map at rate `ber` and apply it.
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is invalid or quantization fails.
    pub fn perturb_random<R: rand::Rng + ?Sized>(
        &self,
        net: &Sequential,
        chip: &ChipProfile,
        ber: f64,
        rng: &mut R,
    ) -> Result<Sequential> {
        let map = self.sample_fault_map(net, chip, ber, rng)?;
        self.perturb_with_map(net, &map)
    }

    /// Returns a copy of `net` that has been quantized and dequantized with
    /// *no* bit errors — the quantization noise floor used for error-free
    /// deployment numbers.
    ///
    /// # Errors
    ///
    /// Returns an error if quantization fails.
    pub fn quantized_copy(&self, net: &Sequential) -> Result<Sequential> {
        let quantized = QuantizedNetwork::from_network(net, self.bits)?;
        let mut copy = net.clone();
        quantized.write_to_network(&mut copy)?;
        Ok(copy)
    }
}

impl Default for NetworkPerturber {
    fn default() -> Self {
        Self { bits: 8 }
    }
}

/// Injects a whole-model fault map into a quantized byte image, walking the
/// per-tensor segments with the allocation-free windowed apply.
fn inject_map(quantized: &mut QuantizedNetwork, map: &FaultMap) {
    let mut bit_offset = 0usize;
    for tensor in quantized.tensors_mut() {
        let tensor_bits = tensor.len() * 8;
        map.apply_window(tensor.bytes_mut(), bit_offset);
        bit_offset += tensor_bits;
    }
}

/// The quantize-once perturbation pipeline.
///
/// The paper's evaluation protocol averages hundreds of independent fault
/// maps per operating point, and each map perturbs the *same* clean policy.
/// A `PerturbContext` quantizes that policy exactly once; each fault map
/// then costs a byte-image copy, the map's bit flips, and a dequantize into
/// a reusable per-worker scratch network — instead of a full re-quantization
/// plus a fresh `Sequential` allocation per map.  The output weights are
/// bitwise identical to [`NetworkPerturber::perturb_with_map`] (pinned by
/// `tests/quantize_once_properties.rs`).
///
/// The context is `Sync`: rayon workers share it by reference and check
/// scratches in and out of its internal pool.
///
/// # Examples
///
/// ```
/// use berry_core::perturb::NetworkPerturber;
/// use berry_faults::chip::ChipProfile;
/// use berry_rl::policy::QNetworkSpec;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), berry_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = QNetworkSpec::mlp(vec![16]).build(&[4], 3, &mut rng)?;
/// let perturber = NetworkPerturber::new(8)?;
/// let context = perturber.context(&net)?; // quantizes once
/// let chip = ChipProfile::generic();
/// let map = context.sample_fault_map(&chip, 0.01, &mut rng)?;
/// let mut scratch = context.checkout();
/// context.perturb_map_into(&map, &mut scratch)?;
/// assert_ne!(scratch.network().to_flat_weights(), net.to_flat_weights());
/// context.checkin(scratch);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PerturbContext {
    bits: u8,
    clean: QuantizedNetwork,
    template: Sequential,
    memory_bits: usize,
    pool: Mutex<Vec<PerturbScratch>>,
}

/// Reusable per-worker state of the quantize-once pipeline: a byte image to
/// flip bits in, a network to dequantize into, and inference scratch for
/// the rollouts that follow.
#[derive(Debug)]
pub struct PerturbScratch {
    quantized: QuantizedNetwork,
    network: Sequential,
    infer: InferScratch,
}

impl PerturbScratch {
    /// The perturbed network produced by the latest
    /// [`PerturbContext::perturb_map_into`] call.
    pub fn network(&self) -> &Sequential {
        &self.network
    }

    /// Mutable access to the perturbed network (the robust trainer's
    /// perturbed backward pass needs `&mut`).
    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.network
    }

    /// Takes ownership of the perturbed network.
    pub fn into_network(self) -> Sequential {
        self.network
    }

    /// Splits the scratch into the perturbed network and the inference
    /// scratch so rollouts can borrow both at once.
    pub fn network_and_infer(&mut self) -> (&Sequential, &mut InferScratch) {
        (&self.network, &mut self.infer)
    }
}

impl PerturbContext {
    /// Quantizes `net` once and prepares the reusable pipeline state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unsupported bit width, or
    /// a quantization error.
    pub fn new(net: &Sequential, bits: u8) -> Result<Self> {
        let max = berry_nn::quant::MAX_BITS;
        if bits == 0 || bits > max {
            return Err(CoreError::InvalidConfig(format!(
                "quantization width must be in 1..={max}, got {bits}"
            )));
        }
        Ok(Self {
            bits,
            clean: QuantizedNetwork::from_network(net, bits)?,
            template: net.clone(),
            memory_bits: net.param_count() * 8,
            pool: Mutex::new(Vec::new()),
        })
    }

    /// The quantization width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of SRAM bits the quantized parameters occupy (one byte per
    /// parameter, matching [`NetworkPerturber::memory_bits`]).
    pub fn memory_bits(&self) -> usize {
        self.memory_bits
    }

    /// Re-quantizes a new set of clean weights into the context in place
    /// (the per-step refresh of the robust trainer, whose weights change
    /// between dual-pass updates), discarding nothing but the stale bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if `net` does not structurally match the network
    /// the context was built for.
    pub fn refresh(&mut self, net: &Sequential) -> Result<()> {
        self.clean.requantize_from(net)?;
        Ok(())
    }

    /// Draws a fault map over the context's parameter memory at bit-error
    /// rate `ber` using the chip's spatial pattern and flip bias.
    ///
    /// Consumes exactly the same RNG stream as
    /// [`NetworkPerturber::sample_fault_map`] on the same network, so
    /// seeded evaluations are unchanged by the quantize-once refactor.
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a valid probability.
    pub fn sample_fault_map<R: rand::Rng + ?Sized>(
        &self,
        chip: &ChipProfile,
        ber: f64,
        rng: &mut R,
    ) -> Result<FaultMap> {
        Ok(chip.fault_map_at_ber(rng, self.memory_bits, ber)?)
    }

    /// Checks a scratch out of the pool (allocating a fresh one only when
    /// the pool is empty — steady state is one scratch per worker thread).
    pub fn checkout(&self) -> PerturbScratch {
        // A panicked holder cannot corrupt the pool (push/pop of owned
        // scratches), so recover the data instead of propagating poison.
        let pooled = self.pool.lock().unwrap_or_else(PoisonError::into_inner).pop();
        pooled.unwrap_or_else(|| PerturbScratch {
            quantized: self.clean.clone(),
            network: self.template.clone(),
            infer: InferScratch::new(),
        })
    }

    /// Returns a scratch to the pool for reuse by the next fault map.
    pub fn checkin(&self, scratch: PerturbScratch) {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner).push(scratch);
    }

    /// Resets the scratch's byte image to the clean quantized weights,
    /// injects the fault map's flips, and dequantizes into the scratch
    /// network — the whole per-map cost of the quantize-once pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error if the scratch does not structurally match this
    /// context (e.g. it was checked out of a different context).
    pub fn perturb_map_into(&self, map: &FaultMap, scratch: &mut PerturbScratch) -> Result<()> {
        scratch.quantized.copy_payload_from(&self.clean)?;
        inject_map(&mut scratch.quantized, map);
        scratch.quantized.write_to_network(&mut scratch.network)?;
        Ok(())
    }

    /// One-shot convenience: perturb with `map` and return an owned network
    /// (equivalent to [`NetworkPerturber::perturb_with_map`] but through the
    /// quantize-once bytes).
    ///
    /// # Errors
    ///
    /// Returns an error if the dequantize step fails.
    pub fn perturbed(&self, map: &FaultMap) -> Result<Sequential> {
        let mut scratch = self.checkout();
        self.perturb_map_into(map, &mut scratch)?;
        Ok(scratch.into_network())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berry_rl::policy::QNetworkSpec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn test_net(seed: u64) -> Sequential {
        let mut r = rng(seed);
        QNetworkSpec::mlp(vec![32, 16]).build(&[8], 5, &mut r).unwrap()
    }

    #[test]
    fn invalid_bit_widths_are_rejected() {
        assert!(NetworkPerturber::new(0).is_err());
        assert!(NetworkPerturber::new(9).is_err());
        assert_eq!(NetworkPerturber::new(8).unwrap().bits(), 8);
        assert_eq!(NetworkPerturber::default().bits(), 8);
    }

    #[test]
    fn memory_bits_counts_one_byte_per_parameter() {
        let net = test_net(1);
        let p = NetworkPerturber::new(8).unwrap();
        assert_eq!(p.memory_bits(&net), net.param_count() * 8);
    }

    #[test]
    fn zero_ber_perturbation_equals_quantized_copy() {
        let net = test_net(2);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(3);
        let perturbed = p.perturb_random(&net, &chip, 0.0, &mut r).unwrap();
        let quantized = p.quantized_copy(&net).unwrap();
        assert_eq!(perturbed.to_flat_weights(), quantized.to_flat_weights());
        // Quantization alone stays close to the original weights.
        for (a, b) in net
            .to_flat_weights()
            .iter()
            .zip(quantized.to_flat_weights().iter())
        {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn perturbation_does_not_touch_the_original_network() {
        let net = test_net(4);
        let before = net.to_flat_weights();
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(5);
        let _perturbed = p.perturb_random(&net, &chip, 0.05, &mut r).unwrap();
        assert_eq!(net.to_flat_weights(), before);
    }

    #[test]
    fn higher_ber_causes_larger_weight_deviation() {
        let net = test_net(6);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(7);
        let deviation = |ber: f64, r: &mut rand::rngs::StdRng| {
            let perturbed = p.perturb_random(&net, &chip, ber, r).unwrap();
            perturbed
                .to_flat_weights()
                .iter()
                .zip(net.to_flat_weights())
                .map(|(a, b)| (a - b).abs() as f64)
                .sum::<f64>()
        };
        let low: f64 = (0..5).map(|_| deviation(0.001, &mut r)).sum();
        let high: f64 = (0..5).map(|_| deviation(0.05, &mut r)).sum();
        assert!(high > low, "low {low} vs high {high}");
    }

    #[test]
    fn same_fault_map_gives_identical_perturbations() {
        let net = test_net(8);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(9);
        let map = p.sample_fault_map(&net, &chip, 0.02, &mut r).unwrap();
        let a = p.perturb_with_map(&net, &map).unwrap();
        let b = p.perturb_with_map(&net, &map).unwrap();
        assert_eq!(a.to_flat_weights(), b.to_flat_weights());
    }

    #[test]
    fn perturbed_network_still_runs_forward() {
        let net = test_net(10);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::chip2_column_aligned();
        let mut r = rng(11);
        let mut perturbed = p.perturb_random(&net, &chip, 0.1, &mut r).unwrap();
        let x = berry_nn::tensor::Tensor::zeros(&[1, 8]);
        let y = perturbed.forward(&x);
        assert_eq!(y.shape(), &[1, 5]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn context_matches_perturb_with_map_bitwise() {
        let net = test_net(30);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let context = p.context(&net).unwrap();
        assert_eq!(context.memory_bits(), p.memory_bits(&net));
        assert_eq!(context.bits(), 8);
        let mut r = rng(31);
        let mut scratch = context.checkout();
        for _ in 0..4 {
            let map = p.sample_fault_map(&net, &chip, 0.03, &mut r).unwrap();
            let reference = p.perturb_with_map(&net, &map).unwrap();
            context.perturb_map_into(&map, &mut scratch).unwrap();
            let ref_w = reference.to_flat_weights();
            let ctx_w = scratch.network().to_flat_weights();
            assert_eq!(ref_w.len(), ctx_w.len());
            for (a, b) in ref_w.iter().zip(ctx_w.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // The owned convenience path agrees too.
            let owned = context.perturbed(&map).unwrap();
            assert_eq!(owned.to_flat_weights(), ctx_w);
        }
        context.checkin(scratch);
    }

    #[test]
    fn context_pool_reuses_scratches() {
        let net = test_net(32);
        let context = NetworkPerturber::new(8).unwrap().context(&net).unwrap();
        let a = context.checkout();
        context.checkin(a);
        let b = context.checkout();
        // Pool was non-empty, so no second template clone was needed; the
        // scratch still dequantizes correctly after arbitrary prior state.
        let map = FaultMap::error_free(context.memory_bits());
        let mut b = b;
        context.perturb_map_into(&map, &mut b).unwrap();
        let quantized = NetworkPerturber::new(8).unwrap().quantized_copy(&net).unwrap();
        assert_eq!(b.network().to_flat_weights(), quantized.to_flat_weights());
    }

    #[test]
    fn context_refresh_tracks_new_weights() {
        let net_a = test_net(33);
        let net_b = test_net(34);
        let p = NetworkPerturber::new(8).unwrap();
        let mut context = p.context(&net_a).unwrap();
        context.refresh(&net_b).unwrap();
        let map = FaultMap::error_free(context.memory_bits());
        let refreshed = context.perturbed(&map).unwrap();
        let direct = p.quantized_copy(&net_b).unwrap();
        assert_eq!(refreshed.to_flat_weights(), direct.to_flat_weights());
    }

    #[test]
    fn voltage_based_sampling_follows_the_chip_curve() {
        let net = test_net(12);
        let p = NetworkPerturber::new(8).unwrap();
        let chip = ChipProfile::generic();
        let mut r = rng(13);
        let at_vmin = p
            .sample_fault_map_at_voltage(&net, &chip, 1.0, &mut r)
            .unwrap();
        assert!(at_vmin.is_empty());
        let low = p
            .sample_fault_map_at_voltage(&net, &chip, 0.68, &mut r)
            .unwrap();
        assert!(!low.is_empty());
    }
}
