//! The campaign engine: the whole scenario grid, end to end.
//!
//! The paper's headline claim is generalization across "72 UAV deployment
//! scenarios" (Section V).  This module executes that claim as one
//! deterministic pipeline: for every [`Scenario`] of a grid it trains the
//! Classical/BERRY policy pair, runs fault-averaged navigation evaluation
//! through the batched lockstep engine at the scenario's deployment
//! voltage, attaches the `berry-hw` processing-energy and quality-of-flight
//! numbers, and emits one [`CampaignRow`].
//!
//! # Sharding and determinism
//!
//! Scenarios fan out across rayon workers.  Each scenario's entire pipeline
//! (training included) draws from a private `StdRng` seeded by
//! [`scenario_seed`]`(base_seed, grid_index)` — a SplitMix64-style mix
//! mirroring [`crate::evaluate::fault_map_seed`] and
//! [`berry_rl::vecenv::episode_seed`] with distinct constants, so the three
//! seed families never collide.  Rows are merged in grid order.  Because no
//! state is shared between scenarios, the sharded run
//! ([`run_campaign`]) is **bitwise identical** to the serial reference
//! ([`run_campaign_serial`]) for any worker count; the golden-snapshot
//! tests pin the row bits of the smoke campaign.
//!
//! # Scale
//!
//! [`ExperimentScale::Smoke`] runs the 4-cell [`Scenario::smoke_grid`] with
//! tiny MLP policies (seconds, used by CI and the golden pins);
//! `Quick` runs the paper's 72-cell grid; `Paper` runs the 216-cell
//! [`Scenario::extended_grid`] that crosses the 72 cells with the wind-gust
//! and sensor-dropout disturbance variants.

use crate::evaluate::{evaluate_mission_seeded, evaluate_under_faults_serial, MissionContext};
use crate::experiment::ExperimentScale;
use crate::robust::{train_berry_with_fault_map, BerryConfig, LearningMode};
use crate::scenario::{Scenario, ScenarioMode};
use crate::Result;
use berry_hw::accelerator::{Accelerator, ProcessingReport};
use berry_rl::eval::EvalStats;
use berry_rl::trainer::train_classical;
use berry_uav::env::{NavigationConfig, NavigationEnv};
use berry_uav::flight::QualityOfFlight;
use berry_uav::physics::PhysicsConfig;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Derives the RNG seed of scenario `grid_index` from a campaign's base
/// seed (a SplitMix64-style mix, so neighbouring grid cells draw unrelated
/// streams).
///
/// The add-multiplier/offset pair is distinct from both
/// [`crate::evaluate::fault_map_seed`] and
/// [`berry_rl::vecenv::episode_seed`], keeping the three derivation
/// families disjoint; `tests/parallel_determinism.rs` checks the
/// no-collision property across all three.
#[must_use]
pub fn scenario_seed(base_seed: u64, grid_index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(grid_index.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// How much compute each grid cell spends (training episodes, fault
    /// maps, policy sizes) *and* which grid is executed — see
    /// [`CampaignConfig::grid`].
    pub scale: ExperimentScale,
    /// Base seed every per-scenario stream is derived from.
    pub base_seed: u64,
}

impl CampaignConfig {
    /// A campaign at the given scale with the default base seed (2023, the
    /// paper's year).
    pub fn at_scale(scale: ExperimentScale) -> Self {
        Self {
            scale,
            base_seed: 2023,
        }
    }

    /// The CI micro-campaign: smoke grid, smoke training, default seed.
    pub fn smoke_test() -> Self {
        Self::at_scale(ExperimentScale::Smoke)
    }

    /// The scenario grid this campaign executes: the 4-cell smoke grid at
    /// `Smoke`, the paper's 72-cell grid at `Quick`, and the 216-cell
    /// extended (disturbance-variant) grid at `Paper`.
    pub fn grid(&self) -> Vec<Scenario> {
        match self.scale {
            ExperimentScale::Smoke => Scenario::smoke_grid(),
            ExperimentScale::Quick => Scenario::grid(),
            ExperimentScale::Paper => Scenario::extended_grid(),
        }
    }
}

/// Everything the campaign reports about one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRow {
    /// Position of the scenario in the campaign grid.
    pub index: usize,
    /// The scenario's unique identifier ([`Scenario::id`]).
    pub id: String,
    /// The scenario itself.
    pub scenario: Scenario,
    /// The per-scenario RNG seed ([`scenario_seed`]).
    pub seed: u64,
    /// Deployment voltage in Vmin units ([`Scenario::deploy_voltage_norm`]).
    pub voltage_norm: f64,
    /// Bit error rate (fraction) at that voltage on the scenario's chip.
    pub ber: f64,
    /// Success rate of the classical baseline over its last 20 training
    /// episodes (a cheap trained-at-all signal).
    pub classical_train_success: f64,
    /// Success rate of the BERRY policy over its last 20 training episodes.
    pub berry_train_success: f64,
    /// Number of BERRY dual-pass optimizer updates performed.
    pub robust_updates: u64,
    /// Fault-averaged navigation statistics of the classical baseline at
    /// the deployment operating point.
    pub classical_nav: EvalStats,
    /// Fault-averaged navigation statistics of the BERRY policy at the same
    /// operating point.
    pub berry_nav: EvalStats,
    /// Accelerator latency/energy/thermal figures at the deployment voltage
    /// for the scenario's published workload (C3F2/C5F4).
    pub processing: ProcessingReport,
    /// Mission-level quality-of-flight metrics of the BERRY policy.
    pub quality_of_flight: QualityOfFlight,
}

impl CampaignRow {
    /// BERRY's success-rate advantage over the classical baseline at the
    /// deployment operating point (fractional, positive = BERRY better).
    pub fn success_gain(&self) -> f64 {
        self.berry_nav.success_rate - self.classical_nav.success_rate
    }

    /// Serializes the row as one JSON-lines record.
    ///
    /// Hand-rolled (the workspace vendors a serde API shim without a JSON
    /// backend); keys are stable and floats are emitted with full `{:?}`
    /// round-trip precision so artifacts diff cleanly across runs.
    pub fn to_json_line(&self) -> String {
        let stats = |s: &EvalStats| {
            format!(
                "{{\"episodes\":{},\"success_rate\":{:?},\"collision_rate\":{:?},\
                 \"timeout_rate\":{:?},\"mean_return\":{:?},\"mean_steps\":{:?},\
                 \"mean_distance\":{:?},\"mean_success_distance\":{:?}}}",
                s.episodes,
                s.success_rate,
                s.collision_rate,
                s.timeout_rate,
                s.mean_return,
                s.mean_steps,
                s.mean_distance,
                s.mean_success_distance
            )
        };
        format!(
            "{{\"index\":{},\"id\":{},\"density\":{},\"platform\":{},\"policy\":{},\
             \"mode\":{},\"chip\":{},\"variant\":{},\"seed\":{},\"voltage_norm\":{:?},\
             \"ber\":{:?},\"classical_train_success\":{:?},\"berry_train_success\":{:?},\
             \"robust_updates\":{},\"classical_nav\":{},\"berry_nav\":{},\
             \"processing\":{{\"frequency_hz\":{:?},\"latency_s\":{:?},\
             \"energy_per_inference_j\":{:?},\"compute_power_w\":{:?},\
             \"savings_vs_nominal\":{:?},\"tdp_w\":{:?},\"heatsink_mass_g\":{:?}}},\
             \"quality_of_flight\":{{\"flight_time_s\":{:?},\"flight_energy_j\":{:?},\
             \"rotor_power_w\":{:?},\"compute_power_w\":{:?},\"num_missions\":{:?}}}}}",
            self.index,
            json_string(&self.id),
            json_string(self.scenario.density.label()),
            json_string(&self.scenario.platform),
            json_string(&self.scenario.policy),
            json_string(self.scenario.mode.label()),
            json_string(&self.scenario.chip),
            json_string(self.scenario.variant.label()),
            self.seed,
            self.voltage_norm,
            self.ber,
            self.classical_train_success,
            self.berry_train_success,
            self.robust_updates,
            stats(&self.classical_nav),
            stats(&self.berry_nav),
            self.processing.frequency_hz,
            self.processing.latency_s,
            self.processing.energy_per_inference_j,
            self.processing.compute_power_w,
            self.processing.savings_vs_nominal,
            self.processing.tdp_w,
            self.processing.heatsink_mass_g,
            self.quality_of_flight.flight_time_s,
            self.quality_of_flight.flight_energy_j,
            self.quality_of_flight.rotor_power_w,
            self.quality_of_flight.compute_power_w,
            self.quality_of_flight.num_missions,
        )
    }
}

/// Minimal JSON string quoting for the label/name values the rows carry.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Aggregate of a finished campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Number of grid cells executed.
    pub scenarios: usize,
    /// Total navigation episodes evaluated across all cells and policies.
    pub episodes: usize,
    /// Mean classical success rate across cells.
    pub mean_classical_success: f64,
    /// Mean BERRY success rate across cells.
    pub mean_berry_success: f64,
    /// Fraction of cells where BERRY's success rate is at least the
    /// classical baseline's.
    pub berry_wins_or_ties: f64,
    /// Mean processing-energy saving factor vs nominal across cells.
    pub mean_energy_savings: f64,
    /// Identifier of the cell with the largest BERRY success gain.
    pub best_cell: String,
    /// Identifier of the cell with the smallest BERRY success gain.
    pub worst_cell: String,
}

impl CampaignSummary {
    /// Folds rows (in grid order) into the campaign summary.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty — a campaign always has at least one cell.
    pub fn from_rows(rows: &[CampaignRow]) -> Self {
        assert!(!rows.is_empty(), "campaign produced no rows");
        let n = rows.len() as f64;
        let best = rows
            .iter()
            .max_by(|a, b| a.success_gain().total_cmp(&b.success_gain()))
            .expect("non-empty");
        let worst = rows
            .iter()
            .min_by(|a, b| a.success_gain().total_cmp(&b.success_gain()))
            .expect("non-empty");
        Self {
            scenarios: rows.len(),
            episodes: rows
                .iter()
                .map(|r| r.classical_nav.episodes + r.berry_nav.episodes)
                .sum(),
            mean_classical_success: rows
                .iter()
                .map(|r| r.classical_nav.success_rate)
                .sum::<f64>()
                / n,
            mean_berry_success: rows.iter().map(|r| r.berry_nav.success_rate).sum::<f64>() / n,
            berry_wins_or_ties: rows.iter().filter(|r| r.success_gain() >= 0.0).count() as f64
                / n,
            mean_energy_savings: rows
                .iter()
                .map(|r| r.processing.savings_vs_nominal)
                .sum::<f64>()
                / n,
            best_cell: best.id.clone(),
            worst_cell: worst.id.clone(),
        }
    }

    /// Serializes the summary as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"scenarios\": {},\n  \"episodes\": {},\n  \
             \"mean_classical_success\": {:?},\n  \"mean_berry_success\": {:?},\n  \
             \"berry_wins_or_ties\": {:?},\n  \"mean_energy_savings\": {:?},\n  \
             \"best_cell\": {},\n  \"worst_cell\": {}\n}}\n",
            self.scenarios,
            self.episodes,
            self.mean_classical_success,
            self.mean_berry_success,
            self.berry_wins_or_ties,
            self.mean_energy_savings,
            json_string(&self.best_cell),
            json_string(&self.worst_cell),
        )
    }
}

/// Executes one grid cell: train the Classical/BERRY pair, fault-evaluate
/// both at the scenario's deployment operating point, and attach the
/// hardware and quality-of-flight numbers.
///
/// Everything — training rollouts, fault maps, evaluation episodes — is a
/// pure function of `(scenario, scale, seed)`, which is what makes the
/// sharded and serial campaign paths bitwise interchangeable.
///
/// # Errors
///
/// Returns an error if the scenario names cannot be resolved, or training
/// or evaluation fails.
pub fn run_scenario(
    scenario: &Scenario,
    index: usize,
    scale: ExperimentScale,
    seed: u64,
) -> Result<CampaignRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = scenario.chip_profile()?;
    let platform = scenario.uav_platform()?;
    let workload = scenario.workload()?;
    let spec = scenario.policy_spec(scale)?;
    let voltage_norm = scenario.deploy_voltage_norm();
    let ber = chip.ber_at_voltage(voltage_norm)?;

    let env_config = NavigationConfig {
        variant: scenario.variant,
        ..scale.navigation_config(scenario.density)
    };
    let trainer = scale.trainer_config();

    // Classical baseline, then BERRY in the scenario's learning mode, off
    // the same sequential per-scenario stream.
    let mut env = NavigationEnv::new(env_config.clone())?;
    let (classical_agent, classical_report) =
        train_classical(&mut env, &spec, &trainer, &mut rng)?;
    let mode = match scenario.mode {
        ScenarioMode::Offline => LearningMode::offline(scale.train_ber()),
        ScenarioMode::OnDevice => LearningMode::on_device(voltage_norm),
    };
    let berry_config = BerryConfig {
        trainer,
        mode,
        chip: chip.clone(),
        quant_bits: 8,
    };
    let mut env = NavigationEnv::new(env_config.clone())?;
    let berry_outcome = train_berry_with_fault_map(&mut env, &spec, &berry_config, &mut rng)?;

    // Deployment evaluation: fault-averaged navigation for both policies,
    // then the mission-level chain for BERRY through the scenario's
    // platform, chip and published workload.  The classical half runs the
    // serial per-map path; the BERRY half goes through
    // `evaluate_mission_seeded`, whose inner per-map fan-out nests under
    // the cell-level sharding (rayon work-steals across both levels, and
    // the two paths are pinned bitwise-identical, so this only affects
    // scheduling, never results).
    let eval_cfg = scale.evaluation_config();
    let eval_env = NavigationEnv::new(env_config)?;
    let classical_eval_seed = rng.next_u64();
    let berry_eval_seed = rng.next_u64();
    let classical_nav = evaluate_under_faults_serial(
        classical_agent.q_net(),
        &eval_env,
        &chip,
        ber,
        &eval_cfg,
        classical_eval_seed,
    )?;
    let context = MissionContext {
        platform,
        accelerator: Accelerator::default_edge_accelerator(),
        workload,
        chip,
        physics: PhysicsConfig::default(),
    };
    let mission = evaluate_mission_seeded(
        berry_outcome.agent.q_net(),
        &eval_env,
        &context,
        voltage_norm,
        &eval_cfg,
        berry_eval_seed,
    )?;

    Ok(CampaignRow {
        index,
        id: scenario.id(),
        scenario: scenario.clone(),
        seed,
        voltage_norm,
        ber,
        classical_train_success: classical_report.recent_success_rate(20),
        berry_train_success: berry_outcome.report.recent_success_rate(20),
        robust_updates: berry_outcome.robust_updates,
        classical_nav,
        berry_nav: mission.navigation,
        processing: mission.processing,
        quality_of_flight: mission.quality_of_flight,
    })
}

/// Runs the campaign **sharded across rayon workers**, one task per grid
/// cell, and merges the rows in grid order.
///
/// Bitwise identical to [`run_campaign_serial`] for any worker count (each
/// cell's stream is derived from [`scenario_seed`], nothing is shared);
/// the golden-snapshot and thread-count tests pin this.  The first failing
/// cell's error is returned, tagged with its scenario id — a campaign with
/// any errored cell is a failed campaign.
///
/// # Errors
///
/// Returns the first (in grid order) cell error.
pub fn run_campaign(config: &CampaignConfig) -> Result<Vec<CampaignRow>> {
    run_grid(&config.grid(), config.scale, config.base_seed)
}

/// The serial reference implementation: the same per-cell pipeline and the
/// same [`scenario_seed`] derivation, executed one cell at a time in grid
/// order.
///
/// # Errors
///
/// Returns the first cell error.
pub fn run_campaign_serial(config: &CampaignConfig) -> Result<Vec<CampaignRow>> {
    run_grid_serial(&config.grid(), config.scale, config.base_seed)
}

/// Runs an explicit scenario list as a sharded campaign (the engine under
/// [`run_campaign`], exposed so tests and custom sweeps can campaign over
/// a hand-picked sub-grid).
///
/// # Errors
///
/// Returns the first (in grid order) cell error.
pub fn run_grid(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<CampaignRow>> {
    run_grid_streamed(grid, scale, base_seed, grid.len().max(1), |_| Ok(()))
}

/// [`run_grid`] with **streaming**: the grid is fanned out in sharded
/// chunks of `chunk` cells, and `sink` receives every finished row in
/// grid order as its chunk completes — so a long campaign (72 or 216
/// cells of real training) can persist rows incrementally instead of
/// losing everything to a crash or timeout near the end.
///
/// Chunking never changes the results: each cell's seed is derived from
/// its **global** grid index, so any chunk size (including
/// `grid.len()`, which [`run_grid`] uses) produces bitwise-identical
/// rows.
///
/// # Errors
///
/// Returns the first (in grid order) cell error, or the first error the
/// sink reports — a failing sink (e.g. a full disk) aborts the campaign
/// at its chunk boundary instead of burning the remaining cells' compute.
/// Rows already handed to `sink` stay written.
pub fn run_grid_streamed(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    chunk: usize,
    mut sink: impl FnMut(&CampaignRow) -> Result<()>,
) -> Result<Vec<CampaignRow>> {
    let chunk = chunk.max(1);
    let mut rows = Vec::with_capacity(grid.len());
    let mut start = 0;
    while start < grid.len() {
        let end = (start + chunk).min(grid.len());
        let chunk_rows: Vec<Result<CampaignRow>> = (start..end)
            .into_par_iter()
            .map(|index| {
                let scenario = &grid[index];
                run_scenario(scenario, index, scale, scenario_seed(base_seed, index as u64))
                    .map_err(|e| tag_cell_error(scenario, e))
            })
            .collect();
        for row in chunk_rows {
            let row = row?;
            sink(&row)?;
            rows.push(row);
        }
        start = end;
    }
    Ok(rows)
}

/// Runs an explicit scenario list serially, one cell at a time in grid
/// order, with the identical per-cell seed derivation as [`run_grid`].
///
/// # Errors
///
/// Returns the first cell error.
pub fn run_grid_serial(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<CampaignRow>> {
    grid.iter()
        .enumerate()
        .map(|(index, scenario)| {
            run_scenario(scenario, index, scale, scenario_seed(base_seed, index as u64))
                .map_err(|e| tag_cell_error(scenario, e))
        })
        .collect()
}

fn tag_cell_error(scenario: &Scenario, e: crate::CoreError) -> crate::CoreError {
    crate::CoreError::InvalidConfig(format!("campaign cell `{}` failed: {e}", scenario.id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_seeds_are_distinct_and_differ_from_identity() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| scenario_seed(2023, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(scenario_seed(2023, 0), 2023);
        // Distinct base seeds shift the whole family.
        assert_ne!(scenario_seed(1, 5), scenario_seed(2, 5));
    }

    #[test]
    fn config_selects_the_grid_by_scale() {
        assert_eq!(CampaignConfig::smoke_test().grid().len(), 4);
        assert_eq!(
            CampaignConfig::at_scale(ExperimentScale::Quick).grid().len(),
            72
        );
        assert_eq!(
            CampaignConfig::at_scale(ExperimentScale::Paper).grid().len(),
            216
        );
        assert_eq!(CampaignConfig::smoke_test().base_seed, 2023);
    }

    #[test]
    fn single_scenario_runs_end_to_end_and_serializes() {
        let grid = Scenario::smoke_grid();
        let row = run_scenario(&grid[0], 0, ExperimentScale::Smoke, 42).unwrap();
        assert_eq!(row.index, 0);
        assert_eq!(row.id, grid[0].id());
        assert!(row.classical_nav.episodes > 0);
        assert_eq!(row.classical_nav.episodes, row.berry_nav.episodes);
        assert!(row.robust_updates > 0);
        assert!(row.ber > 0.0);
        assert!(row.processing.savings_vs_nominal > 1.0);
        assert!(row.quality_of_flight.flight_energy_j > 0.0);
        let line = row.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"classical_nav\""));
        assert!(line.contains("\"savings_vs_nominal\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn rerunning_a_scenario_is_bitwise_reproducible() {
        let grid = Scenario::smoke_grid();
        let a = run_scenario(&grid[2], 2, ExperimentScale::Smoke, 7).unwrap();
        let b = run_scenario(&grid[2], 2, ExperimentScale::Smoke, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json_line(), b.to_json_line());
        // A different seed produces a genuinely different row.
        let c = run_scenario(&grid[2], 2, ExperimentScale::Smoke, 8).unwrap();
        assert_ne!(a.berry_nav.mean_return.to_bits(), c.berry_nav.mean_return.to_bits());
    }

    #[test]
    fn chunked_streaming_matches_the_serial_reference() {
        let grid: Vec<Scenario> = Scenario::smoke_grid().into_iter().take(2).collect();
        let serial = run_grid_serial(&grid, ExperimentScale::Smoke, 5).unwrap();
        // Chunk of 1 exercises the chunk boundary on every cell; the sink
        // must see the rows in grid order as chunks retire.
        let mut streamed_ids = Vec::new();
        let streamed = run_grid_streamed(&grid, ExperimentScale::Smoke, 5, 1, |row| {
            streamed_ids.push(row.index);
            Ok(())
        })
        .unwrap();
        assert_eq!(streamed, serial);
        assert_eq!(streamed_ids, vec![0, 1]);
        // A failing sink aborts the campaign at its chunk boundary.
        let mut seen = 0;
        let err = run_grid_streamed(&grid, ExperimentScale::Smoke, 5, 1, |_| {
            seen += 1;
            Err(crate::CoreError::InvalidConfig("sink full".into()))
        });
        assert!(err.is_err());
        assert_eq!(seen, 1, "campaign must stop after the first sink error");
    }

    #[test]
    fn summary_folds_rows_and_serializes() {
        let grid = Scenario::smoke_grid();
        let rows: Vec<CampaignRow> = grid
            .iter()
            .take(2)
            .enumerate()
            .map(|(i, s)| run_scenario(s, i, ExperimentScale::Smoke, scenario_seed(9, i as u64)))
            .collect::<Result<_>>()
            .unwrap();
        let summary = CampaignSummary::from_rows(&rows);
        assert_eq!(summary.scenarios, 2);
        assert!(summary.episodes > 0);
        assert!((0.0..=1.0).contains(&summary.berry_wins_or_ties));
        assert!(summary.mean_energy_savings > 1.0);
        assert!(!summary.best_cell.is_empty());
        let json = summary.to_json();
        assert!(json.contains("\"mean_berry_success\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("a\tb"), "\"a\\u0009b\"");
    }
}
