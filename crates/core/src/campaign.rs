//! The campaign engine: the whole scenario grid, end to end.
//!
//! The paper's headline claim is generalization across "72 UAV deployment
//! scenarios" (Section V).  This module executes that claim as one
//! deterministic pipeline: for every [`Scenario`] of a grid it trains the
//! Classical/BERRY policy pair, runs fault-averaged navigation evaluation
//! through the batched lockstep engine at the scenario's deployment
//! voltage, attaches the `berry-hw` processing-energy and quality-of-flight
//! numbers, and emits one [`CampaignRow`].
//!
//! # Sharding and determinism
//!
//! Scenarios fan out across rayon workers.  Each scenario's entire pipeline
//! (training included) draws from a private `StdRng` seeded by
//! [`scenario_seed`]`(base_seed, grid_index)` — a SplitMix64-style mix
//! mirroring [`crate::evaluate::fault_map_seed`] and
//! [`berry_rl::vecenv::episode_seed`] with distinct constants, so the three
//! seed families never collide.  Rows are merged in grid order.  Because no
//! state is shared between scenarios, the sharded run
//! ([`run_campaign`]) is **bitwise identical** to the serial reference
//! ([`run_campaign_serial`]) for any worker count; the golden-snapshot
//! tests pin the row bits of the smoke campaign.
//!
//! # Scale
//!
//! [`ExperimentScale::Smoke`] runs the 4-cell [`Scenario::smoke_grid`] with
//! tiny MLP policies (seconds, used by CI and the golden pins);
//! `Quick` runs the paper's 72-cell grid; `Paper` runs the 216-cell
//! [`Scenario::extended_grid`] that crosses the 72 cells with the wind-gust
//! and sensor-dropout disturbance variants.

// lint: pinned-path — reductions here feed golden-pinned statistics; use berry_nn::reduce helpers

use crate::error::CoreError;
use crate::evaluate::{
    evaluate_error_free_seeded, evaluate_mission_seeded, evaluate_under_faults_seeded,
    evaluate_under_faults_serial, FaultEvaluationConfig, MissionContext,
};
use crate::experiment::ExperimentScale;
use crate::robust::LearningMode;
use crate::rows::{encode_json_f64 as json_f64, encode_json_string as json_string};
use crate::scenario::{Scenario, ScenarioMode, DEPLOY_VOLTAGE_FLOOR_NORM};
use crate::store::{PairRequest, PolicyStore, TrainedPair};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_hw::accelerator::{Accelerator, ProcessingReport};
use berry_nn::gemm::Precision;
use berry_nn::network::Sequential;
use berry_rl::eval::EvalStats;
use berry_uav::env::{NavigationConfig, NavigationEnv};
use berry_uav::flight::QualityOfFlight;
use berry_uav::physics::PhysicsConfig;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Derives the RNG seed of scenario `grid_index` from a campaign's base
/// seed (a SplitMix64-style mix, so neighbouring grid cells draw unrelated
/// streams).
///
/// The add-multiplier/offset pair is distinct from both
/// [`crate::evaluate::fault_map_seed`] and
/// [`berry_rl::vecenv::episode_seed`], keeping the three derivation
/// families disjoint; `tests/parallel_determinism.rs` checks the
/// no-collision property across all three.
pub use crate::seed::scenario_seed;

/// Configuration of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// How much compute each grid cell spends (training episodes, fault
    /// maps, policy sizes) *and* which grid is executed — see
    /// [`CampaignConfig::grid`].
    pub scale: ExperimentScale,
    /// Base seed every per-scenario stream is derived from.
    pub base_seed: u64,
    /// GEMM precision tier every evaluation in this campaign runs at.
    ///
    /// This is an **evaluation-side** knob: training inside the policy
    /// store always runs the Reference tier, so the training fingerprint
    /// (and therefore cache hits and stored weights) is identical for
    /// campaigns run at either tier.
    pub precision: Precision,
}

impl CampaignConfig {
    /// A campaign at the given scale with the default base seed (2023, the
    /// paper's year) and the bitwise-pinned Reference precision tier.
    pub fn at_scale(scale: ExperimentScale) -> Self {
        Self {
            scale,
            base_seed: 2023,
            precision: Precision::Reference,
        }
    }

    /// The same campaign evaluated at the given GEMM precision tier.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The CI micro-campaign: smoke grid, smoke training, default seed.
    pub fn smoke_test() -> Self {
        Self::at_scale(ExperimentScale::Smoke)
    }

    /// The scenario grid this campaign executes: the 4-cell smoke grid at
    /// `Smoke`, the paper's 72-cell grid at `Quick`, and the 216-cell
    /// extended (disturbance-variant) grid at `Paper`.
    pub fn grid(&self) -> Vec<Scenario> {
        match self.scale {
            ExperimentScale::Smoke => Scenario::smoke_grid(),
            ExperimentScale::Quick => Scenario::grid(),
            ExperimentScale::Paper => Scenario::extended_grid(),
        }
    }
}

/// Which trained policy of a cell's Classical/BERRY pair an evaluation
/// axis runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyRole {
    /// The classically trained baseline.
    Classical,
    /// The BERRY error-aware policy.
    Berry,
}

impl PolicyRole {
    /// Scheme label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyRole::Classical => "Classical",
            PolicyRole::Berry => "BERRY",
        }
    }
}

/// The operating point one evaluation axis probes.
///
/// Every "voltage matching this BER" lookup clamps to
/// [`DEPLOY_VOLTAGE_FLOOR_NORM`] — the same floor the scenario grid's
/// deployment voltages respect, defined once in `scenario.rs` so the two
/// paths cannot drift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OperatingPoint {
    /// Quantization noise only (the error-free column of a table).
    ErrorFree,
    /// Navigation statistics under bit errors at an explicit rate
    /// (fraction) on the scenario's chip.
    Ber(f64),
    /// Full mission-level evaluation at an explicit voltage (Vmin units)
    /// on the scenario's chip.
    MissionAtVoltage(f64),
    /// Mission-level evaluation at the scenario's own deployment voltage
    /// ([`Scenario::deploy_voltage_norm`], resolved per cell).
    MissionAtDeployVoltage,
    /// Mission-level evaluation at the lowest voltage whose BER reaches
    /// the given rate (fraction) on the scenario's chip.
    MissionAtBer(f64),
    /// Mission-level evaluation on a *different* chip (by built-in name)
    /// at the voltage matching the given BER (fraction) on that chip.
    MissionOnChip {
        /// Built-in chip profile name.
        chip: String,
        /// Bit error rate (fraction) selecting the operating voltage.
        ber: f64,
    },
}

/// One extra evaluation a grid cell performs beyond its standard
/// deploy-point evaluation — the declarative unit the table/figure runners
/// are built from (Table I is "one cell × twelve axes", Table II is "one
/// cell × fourteen voltage axes", …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalAxis {
    /// Free-form label identifying the axis in results.
    pub label: String,
    /// Which policy of the pair is evaluated.
    pub role: PolicyRole,
    /// The operating point probed.
    pub point: OperatingPoint,
}

impl EvalAxis {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, role: PolicyRole, point: OperatingPoint) -> Self {
        Self {
            label: label.into(),
            role,
            point,
        }
    }
}

/// The outcome of one [`EvalAxis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisResult {
    /// The axis label, copied through.
    pub label: String,
    /// Scheme label of the evaluated policy ("Classical" / "BERRY").
    pub scheme: String,
    /// The resolved operating voltage, for mission-level axes.
    pub voltage_norm: Option<f64>,
    /// The bit-error rate the axis evaluated at (0 for error-free).
    pub ber: f64,
    /// Fault-averaged navigation statistics.
    pub nav: EvalStats,
    /// Accelerator figures (mission-level axes only).
    pub processing: Option<ProcessingReport>,
    /// Quality-of-flight metrics (mission-level axes only).
    pub quality_of_flight: Option<QualityOfFlight>,
}

/// Builds the training request of a grid cell — the *only* place the
/// campaign's training work is described.  The request deliberately omits
/// every evaluation-side axis (platform, deploy voltage, grid index), so
/// cells that train identically — e.g. the same policy on the same chip
/// deployed on two different UAVs — resolve to the same fingerprint and
/// share one cached pair.
///
/// # Errors
///
/// Returns an error if the scenario's names cannot be resolved.
pub fn pair_request_for(
    scenario: &Scenario,
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<PairRequest> {
    let spec = scenario.policy_spec(scale)?;
    let chip = scenario.chip_profile()?;
    let env_config = NavigationConfig {
        variant: scenario.variant,
        ..scale.navigation_config(scenario.density)
    };
    let mode = match scenario.mode {
        ScenarioMode::Offline => LearningMode::offline(scale.train_ber()),
        ScenarioMode::OnDevice => LearningMode::on_device(scenario.deploy_voltage_norm()),
    };
    Ok(PairRequest::new(
        spec,
        env_config,
        scale.trainer_config(),
        mode,
        chip,
        8,
        base_seed,
    ))
}

/// Everything the campaign reports about one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRow {
    /// Position of the scenario in the campaign grid.
    pub index: usize,
    /// The scenario's unique identifier ([`Scenario::id`]).
    pub id: String,
    /// The scenario itself.
    pub scenario: Scenario,
    /// The per-scenario RNG seed ([`scenario_seed`]).
    pub seed: u64,
    /// Deployment voltage in Vmin units ([`Scenario::deploy_voltage_norm`]).
    pub voltage_norm: f64,
    /// Bit error rate (fraction) at that voltage on the scenario's chip.
    pub ber: f64,
    /// Success rate of the classical baseline over its last 20 training
    /// episodes (a cheap trained-at-all signal).
    pub classical_train_success: f64,
    /// Success rate of the BERRY policy over its last 20 training episodes.
    pub berry_train_success: f64,
    /// Number of BERRY dual-pass optimizer updates performed.
    pub robust_updates: u64,
    /// Fault-averaged navigation statistics of the classical baseline at
    /// the deployment operating point.
    pub classical_nav: EvalStats,
    /// Fault-averaged navigation statistics of the BERRY policy at the same
    /// operating point.
    pub berry_nav: EvalStats,
    /// Accelerator latency/energy/thermal figures at the deployment voltage
    /// for the scenario's published workload (C3F2/C5F4).
    pub processing: ProcessingReport,
    /// Mission-level quality-of-flight metrics of the BERRY policy.
    pub quality_of_flight: QualityOfFlight,
    /// Results of the cell's extra evaluation axes, in request order
    /// (empty for a plain campaign; the table/figure runners read their
    /// rows out of here).  Not part of the JSON-lines serialization — the
    /// streamed campaign artifact stays the per-cell deploy-point record.
    pub axis_results: Vec<AxisResult>,
}

impl CampaignRow {
    /// BERRY's success-rate advantage over the classical baseline at the
    /// deployment operating point (fractional, positive = BERRY better).
    pub fn success_gain(&self) -> f64 {
        self.berry_nav.success_rate - self.classical_nav.success_rate
    }

    /// Serializes the row as one JSON-lines record.
    ///
    /// Hand-rolled (the workspace vendors a serde API shim without a JSON
    /// backend); keys are stable and finite floats are emitted with full
    /// `{:?}` round-trip precision so artifacts diff cleanly across runs,
    /// while non-finite floats are emitted as `null` (see
    /// [`crate::rows::encode_json_f64`]) so every line is valid JSON even
    /// for degenerate cells (e.g. a zero-success cell's NaN
    /// `mean_success_distance`).  Every scalar field of the row is
    /// serialized — [`crate::rows::ParsedRow`] reconstructs the row
    /// bit-for-bit from this line (non-finite values come back as NaN,
    /// which re-encodes as the same `null` bytes), which is what makes
    /// `--resume` artifacts byte-identical to one-shot runs.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"index\":{},\"id\":{},\"density\":{},\"platform\":{},\"policy\":{},\
             \"mode\":{},\"chip\":{},\"variant\":{},\"seed\":{},\"voltage_norm\":{},\
             \"ber\":{},\"classical_train_success\":{},\"berry_train_success\":{},\
             \"robust_updates\":{},\"classical_nav\":{},\"berry_nav\":{},\
             \"processing\":{},\"quality_of_flight\":{}}}",
            self.index,
            json_string(&self.id),
            json_string(self.scenario.density.label()),
            json_string(&self.scenario.platform),
            json_string(&self.scenario.policy),
            json_string(self.scenario.mode.label()),
            json_string(&self.scenario.chip),
            json_string(self.scenario.variant.label()),
            self.seed,
            json_f64(self.voltage_norm),
            json_f64(self.ber),
            json_f64(self.classical_train_success),
            json_f64(self.berry_train_success),
            self.robust_updates,
            eval_stats_json(&self.classical_nav),
            eval_stats_json(&self.berry_nav),
            processing_json(&self.processing),
            quality_of_flight_json(&self.quality_of_flight),
        )
    }
}

/// Serializes [`EvalStats`] as a JSON object (shared by campaign rows and
/// the served axis-result lines).
pub(crate) fn eval_stats_json(s: &EvalStats) -> String {
    format!(
        "{{\"episodes\":{},\"success_rate\":{},\"collision_rate\":{},\
         \"timeout_rate\":{},\"mean_return\":{},\"mean_steps\":{},\
         \"mean_distance\":{},\"mean_success_distance\":{}}}",
        s.episodes,
        json_f64(s.success_rate),
        json_f64(s.collision_rate),
        json_f64(s.timeout_rate),
        json_f64(s.mean_return),
        json_f64(s.mean_steps),
        json_f64(s.mean_distance),
        json_f64(s.mean_success_distance),
    )
}

/// Serializes a [`ProcessingReport`] as a JSON object.
pub(crate) fn processing_json(p: &ProcessingReport) -> String {
    format!(
        "{{\"voltage_norm\":{},\"frequency_hz\":{},\"latency_s\":{},\
         \"energy_per_inference_j\":{},\"compute_power_w\":{},\
         \"savings_vs_nominal\":{},\"savings_vs_vmin\":{},\"tdp_w\":{},\
         \"heatsink_mass_g\":{},\"utilization\":{}}}",
        json_f64(p.voltage_norm),
        json_f64(p.frequency_hz),
        json_f64(p.latency_s),
        json_f64(p.energy_per_inference_j),
        json_f64(p.compute_power_w),
        json_f64(p.savings_vs_nominal),
        json_f64(p.savings_vs_vmin),
        json_f64(p.tdp_w),
        json_f64(p.heatsink_mass_g),
        json_f64(p.utilization),
    )
}

/// Serializes [`QualityOfFlight`] as a JSON object.
pub(crate) fn quality_of_flight_json(q: &QualityOfFlight) -> String {
    format!(
        "{{\"success_rate\":{},\"flight_distance_m\":{},\"flight_time_s\":{},\
         \"flight_energy_j\":{},\"rotor_power_w\":{},\"compute_power_w\":{},\
         \"num_missions\":{}}}",
        json_f64(q.success_rate),
        json_f64(q.flight_distance_m),
        json_f64(q.flight_time_s),
        json_f64(q.flight_energy_j),
        json_f64(q.rotor_power_w),
        json_f64(q.compute_power_w),
        json_f64(q.num_missions),
    )
}


/// Aggregate of a finished campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Number of grid cells executed.
    pub scenarios: usize,
    /// Total navigation episodes evaluated across all cells and policies.
    pub episodes: usize,
    /// Mean classical success rate across cells.
    pub mean_classical_success: f64,
    /// Mean BERRY success rate across cells.
    pub mean_berry_success: f64,
    /// Fraction of cells where BERRY's success rate is at least the
    /// classical baseline's.
    pub berry_wins_or_ties: f64,
    /// Mean processing-energy saving factor vs nominal across cells.
    pub mean_energy_savings: f64,
    /// Identifier of the cell with the largest BERRY success gain.
    pub best_cell: String,
    /// Identifier of the cell with the smallest BERRY success gain.
    pub worst_cell: String,
    /// Scheduler and resume telemetry of the run that produced the rows
    /// (`None` for summaries folded from rows alone, e.g. in tests).
    ///
    /// Serialized as a **single** `"scheduler"` line in [`Self::to_json`]:
    /// worker/steal counts are timing-dependent, so byte-comparing two
    /// summaries of the same campaign means filtering that one line
    /// (`grep -v '"scheduler"'`), which is exactly what CI does.
    pub scheduler: Option<SchedulerStats>,
    /// GEMM precision tier the campaign's evaluations ran at — reported so
    /// a summary artifact always says which tier produced its numbers.
    /// Folding from rows alone defaults to Reference; runs that evaluated
    /// at another tier attach it via [`Self::with_precision`].
    pub precision: Precision,
}

impl CampaignSummary {
    /// Folds rows (in grid order) into the campaign summary.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty — a campaign always has at least one cell.
    pub fn from_rows(rows: &[CampaignRow]) -> Self {
        assert!(!rows.is_empty(), "campaign produced no rows");
        let n = rows.len() as f64;
        let best = rows
            .iter()
            .max_by(|a, b| a.success_gain().total_cmp(&b.success_gain()))
            .unwrap_or(&rows[0]);
        let worst = rows
            .iter()
            .min_by(|a, b| a.success_gain().total_cmp(&b.success_gain()))
            .unwrap_or(&rows[0]);
        Self {
            scenarios: rows.len(),
            episodes: rows
                .iter()
                .map(|r| r.classical_nav.episodes + r.berry_nav.episodes)
                .sum(),
            mean_classical_success: berry_nn::reduce::sum_f64_in_order(
                rows.iter().map(|r| r.classical_nav.success_rate),
            ) / n,
            mean_berry_success: berry_nn::reduce::sum_f64_in_order(
                rows.iter().map(|r| r.berry_nav.success_rate),
            ) / n,
            berry_wins_or_ties: rows.iter().filter(|r| r.success_gain() >= 0.0).count() as f64
                / n,
            mean_energy_savings: berry_nn::reduce::sum_f64_in_order(
                rows.iter().map(|r| r.processing.savings_vs_nominal),
            ) / n,
            best_cell: best.id.clone(),
            worst_cell: worst.id.clone(),
            scheduler: None,
            precision: Precision::Reference,
        }
    }

    /// Attaches the GEMM precision tier the run evaluated at.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Attaches the scheduler/resume telemetry of the run that produced
    /// the rows.
    #[must_use]
    pub fn with_scheduler(mut self, stats: SchedulerStats) -> Self {
        self.scheduler = Some(stats);
        self
    }

    /// Serializes the summary as a JSON object (`"status": "ok"`; the
    /// failure path of a campaign run writes [`error_summary_json`]
    /// instead, so a summary artifact always exists and always says which
    /// of the two outcomes it describes).
    pub fn to_json(&self) -> String {
        let scheduler_line = match &self.scheduler {
            Some(stats) => format!("  \"scheduler\": {},\n", stats.to_json()),
            None => String::new(),
        };
        format!(
            "{{\n  \"status\": \"ok\",\n  \"precision\": {},\n  \
             \"scenarios\": {},\n  \"episodes\": {},\n  \
             \"mean_classical_success\": {},\n  \"mean_berry_success\": {},\n  \
             \"berry_wins_or_ties\": {},\n  \"mean_energy_savings\": {},\n\
             {}  \"best_cell\": {},\n  \"worst_cell\": {}\n}}\n",
            json_string(self.precision.name()),
            self.scenarios,
            self.episodes,
            json_f64(self.mean_classical_success),
            json_f64(self.mean_berry_success),
            json_f64(self.berry_wins_or_ties),
            json_f64(self.mean_energy_savings),
            scheduler_line,
            json_string(&self.best_cell),
            json_string(&self.worst_cell),
        )
    }
}

/// The summary JSON a campaign run writes when a cell (or the row sink)
/// fails: `"status": "error"` plus how far the run got and why it stopped.
///
/// A failed campaign used to leave the summary file missing — or worse,
/// stale from a previous run — while the streamed rows said otherwise; CI
/// consumers now always find a fresh summary whose status matches the
/// process exit code.
pub fn error_summary_json(rows_completed: usize, grid_size: usize, error: &str) -> String {
    format!(
        "{{\n  \"status\": \"error\",\n  \"rows_completed\": {},\n  \
         \"scenarios\": {},\n  \"error\": {}\n}}\n",
        rows_completed,
        grid_size,
        json_string(error),
    )
}

/// The summary JSON a deliberately stopped campaign writes (`--max-rows`
/// in the runner): `"status": "interrupted"` plus how far it got — a
/// partial run is not an error, and CI's interrupt-resume job relies on
/// the distinction to keep the stopped half of the job green.
pub fn interrupted_summary_json(rows_completed: usize, grid_size: usize) -> String {
    format!(
        "{{\n  \"status\": \"interrupted\",\n  \"rows_completed\": {},\n  \
         \"scenarios\": {}\n}}\n",
        rows_completed, grid_size,
    )
}

/// Scheduler and resume telemetry of one campaign run — the campaign-level
/// view of the rayon shim's [`rayon::RunStats`] plus the resume skip count.
///
/// Everything here is **observability, not results**: worker/steal counts
/// depend on timing, so this struct is serialized on a single summary line
/// that byte-comparisons filter out (see [`CampaignSummary::to_json`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Scheduling policy label: `"work-stealing"`, `"contiguous"`, or
    /// `"idle"` when every cell was resumed and nothing ran.
    pub mode: String,
    /// Worker budget of the run (`rayon::current_num_threads`).
    pub workers: usize,
    /// Grid cells executed by each spawned worker (empty for idle or
    /// single-threaded inline runs — the shim reports those as one slot).
    pub per_worker_cells: Vec<usize>,
    /// Index ranges claimed beyond each worker's first — work that
    /// work-stealing moved off the critical path.
    pub steals: usize,
    /// Cells skipped because a resumed `rows.jsonl` already had their rows.
    pub rows_skipped_resumed: usize,
}

impl SchedulerStats {
    /// Telemetry of a run where nothing executed (fully resumed campaign).
    pub fn idle(rows_skipped_resumed: usize) -> Self {
        Self {
            mode: "idle".to_string(),
            workers: 0,
            per_worker_cells: Vec::new(),
            steals: 0,
            rows_skipped_resumed,
        }
    }

    /// Captures the rayon shim's stats of the parallel run that just
    /// finished on this thread.  Falls back to [`Self::idle`] if no run
    /// was recorded.
    pub fn from_last_run(rows_skipped_resumed: usize) -> Self {
        match rayon::last_run_stats() {
            Some(stats) => Self {
                mode: match stats.mode {
                    rayon::SchedulerMode::WorkStealing => "work-stealing",
                    rayon::SchedulerMode::Contiguous => "contiguous",
                }
                .to_string(),
                workers: stats.workers,
                per_worker_cells: stats.per_worker_items,
                steals: stats.steals,
                rows_skipped_resumed,
            },
            None => Self::idle(rows_skipped_resumed),
        }
    }

    /// Serializes the stats as a **single-line** JSON object, so a summary
    /// byte-comparison can drop exactly this telemetry with
    /// `grep -v '"scheduler"'`.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self.per_worker_cells.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"mode\":{},\"workers\":{},\"per_worker_cells\":[{}],\"steals\":{},\
             \"rows_skipped_resumed\":{}}}",
            json_string(&self.mode),
            self.workers,
            cells.join(","),
            self.steals,
            self.rows_skipped_resumed,
        )
    }
}

/// One grid cell's execution ticket: its position, scenario, and
/// pre-drawn [`scenario_seed`].
///
/// The plan layer makes the campaign's seed protocol explicit: **all**
/// seeds are derived from the base seed and the global grid index before
/// any cell executes, so filtering the plan (resume) or reordering its
/// execution (work-stealing) cannot shift any cell's stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPlan {
    /// Position of the scenario in the campaign grid.
    pub index: usize,
    /// The scenario to execute.
    pub scenario: Scenario,
    /// The cell's private RNG seed, `scenario_seed(base_seed, index)`.
    pub seed: u64,
}

/// Draws the full execution plan of a grid up front — one [`CellPlan`] per
/// cell, seeds included.
pub fn plan_cells(grid: &[Scenario], base_seed: u64) -> Vec<CellPlan> {
    grid.iter()
        .enumerate()
        .map(|(index, scenario)| CellPlan {
            index,
            scenario: scenario.clone(),
            seed: scenario_seed(base_seed, index as u64),
        })
        .collect()
}

/// The set of grid indices a campaign run already has rows for — the
/// filter a resumed run applies to its [`CellPlan`] list.
///
/// Backed by a `BTreeSet` so iteration is in grid order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletedSet {
    indices: std::collections::BTreeSet<usize>,
}

impl CompletedSet {
    /// The empty set — a fresh (non-resumed) run.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the cell at `index` already has a row.
    pub fn contains(&self, index: usize) -> bool {
        self.indices.contains(&index)
    }

    /// Marks `index` complete; returns `false` if it already was.
    pub fn insert(&mut self, index: usize) -> bool {
        self.indices.insert(index)
    }

    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether no cell is complete.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Completed indices in grid order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.indices.iter().copied()
    }
}

impl FromIterator<usize> for CompletedSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Self {
            indices: iter.into_iter().collect(),
        }
    }
}

/// Executes one grid cell with a private in-memory store and no extra
/// axes — the standalone-cell convenience over [`run_scenario_in`].
///
/// The cell `seed` doubles as the training base seed, so the row is a pure
/// function of `(scenario, scale, seed)`; grid runs derive both from a
/// campaign base seed instead (cell seed per index, one shared training
/// base), which is what lets cells share cached pairs.
///
/// # Errors
///
/// Returns an error if the scenario names cannot be resolved, or training
/// or evaluation fails.
pub fn run_scenario(
    scenario: &Scenario,
    index: usize,
    scale: ExperimentScale,
    seed: u64,
) -> Result<CampaignRow> {
    run_scenario_in(
        scenario,
        index,
        scale,
        seed,
        seed,
        &PolicyStore::in_memory(),
        &[],
        Precision::Reference,
    )
}

/// Executes one grid cell: pull the Classical/BERRY pair from the policy
/// store (training it on a cache miss), fault-evaluate both at the
/// scenario's deployment operating point, attach the hardware and
/// quality-of-flight numbers, and run any extra evaluation axes.
///
/// Every seed the cell consumes — the classical and BERRY deploy-point
/// evaluation seeds and one seed per axis — is drawn up front from a
/// stream seeded with `cell_seed`, and training is a pure function of the
/// store request (derived from `train_base_seed`, *not* from the grid
/// index).  The row is therefore bitwise identical whether the store was
/// cold, warm in memory or warm on disk, and whether the cell ran serial
/// or sharded.
///
/// Evaluations run at the requested GEMM `precision` tier; training inside
/// the store always runs the Reference tier, so the cached pair is shared
/// across tiers.
///
/// # Errors
///
/// Returns an error if the scenario names cannot be resolved, or training
/// or evaluation fails.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_in(
    scenario: &Scenario,
    index: usize,
    scale: ExperimentScale,
    cell_seed: u64,
    train_base_seed: u64,
    store: &PolicyStore,
    axes: &[EvalAxis],
    precision: Precision,
) -> Result<CampaignRow> {
    let cell = prepare_cell(
        scenario,
        scale,
        cell_seed,
        train_base_seed,
        store,
        axes.len(),
        precision,
    )?;

    // Deployment evaluation: fault-averaged navigation for both policies,
    // then the mission-level chain for BERRY through the scenario's
    // platform, chip and published workload.  The classical half runs the
    // serial per-map path; the BERRY half goes through
    // `evaluate_mission_seeded`, whose inner per-map fan-out nests under
    // the cell-level sharding (rayon work-steals across both levels, and
    // the two paths are pinned bitwise-identical, so this only affects
    // scheduling, never results).
    let classical_nav = evaluate_under_faults_serial(
        &cell.pair.classical,
        &cell.eval_env,
        &cell.context.chip,
        cell.ber,
        &cell.eval_cfg,
        cell.classical_eval_seed,
    )?;
    let mission = evaluate_mission_seeded(
        &cell.pair.berry,
        &cell.eval_env,
        &cell.context,
        cell.voltage_norm,
        &cell.eval_cfg,
        cell.berry_eval_seed,
    )?;

    let axis_results = cell.run_axes(scenario, axes)?;

    Ok(CampaignRow {
        index,
        id: scenario.id(),
        scenario: scenario.clone(),
        seed: cell_seed,
        voltage_norm: cell.voltage_norm,
        ber: cell.ber,
        classical_train_success: cell.pair.classical_train_success,
        berry_train_success: cell.pair.berry_train_success,
        robust_updates: cell.pair.robust_updates,
        classical_nav,
        berry_nav: mission.navigation,
        processing: mission.processing,
        quality_of_flight: mission.quality_of_flight,
        axis_results,
    })
}

/// The shared per-cell prologue of the campaign engine: every evaluation
/// seed drawn up front in the fixed cell-stream order, the scenario's
/// models resolved, and the policy pair fetched from the store.
struct PreparedCell {
    classical_eval_seed: u64,
    berry_eval_seed: u64,
    axis_seeds: Vec<u64>,
    voltage_norm: f64,
    ber: f64,
    pair: std::sync::Arc<TrainedPair>,
    eval_cfg: FaultEvaluationConfig,
    eval_env: NavigationEnv,
    context: MissionContext,
}

#[allow(clippy::too_many_arguments)]
fn prepare_cell(
    scenario: &Scenario,
    scale: ExperimentScale,
    cell_seed: u64,
    train_base_seed: u64,
    store: &PolicyStore,
    axis_count: usize,
    precision: Precision,
) -> Result<PreparedCell> {
    // Draw every evaluation seed before any work, in a fixed order: the
    // seeds cannot depend on whether training was cached — and the two
    // deploy-point seeds are always drawn, so axis seeds land on the same
    // stream positions whether or not the deploy evaluation itself runs.
    let mut rng = StdRng::seed_from_u64(cell_seed);
    let classical_eval_seed = rng.next_u64();
    let berry_eval_seed = rng.next_u64();
    let axis_seeds: Vec<u64> = (0..axis_count).map(|_| rng.next_u64()).collect();

    let chip = scenario.chip_profile()?;
    let platform = scenario.uav_platform()?;
    let workload = scenario.workload()?;
    let voltage_norm = scenario.deploy_voltage_norm();
    let ber = chip.ber_at_voltage(voltage_norm)?;

    let request = pair_request_for(scenario, scale, train_base_seed)?;
    let pair = store.get_or_train(&request)?;

    let mut eval_cfg = scale.evaluation_config();
    eval_cfg.precision = precision;
    let env_config = NavigationConfig {
        variant: scenario.variant,
        ..scale.navigation_config(scenario.density)
    };
    let eval_env = NavigationEnv::new(env_config)?;
    let context = MissionContext {
        platform,
        accelerator: Accelerator::default_edge_accelerator(),
        workload,
        chip,
        physics: PhysicsConfig::default(),
    };
    Ok(PreparedCell {
        classical_eval_seed,
        berry_eval_seed,
        axis_seeds,
        voltage_norm,
        ber,
        pair,
        eval_cfg,
        eval_env,
        context,
    })
}

impl PreparedCell {
    fn run_axes(&self, scenario: &Scenario, axes: &[EvalAxis]) -> Result<Vec<AxisResult>> {
        axes.iter()
            .zip(&self.axis_seeds)
            .map(|(axis, &axis_seed)| {
                run_axis(
                    axis,
                    axis_seed,
                    &self.pair,
                    &self.eval_env,
                    &self.context,
                    scenario,
                    &self.eval_cfg,
                )
            })
            .collect()
    }
}

/// A grid cell's identity plus its axis results — what an **axes-only**
/// grid run ([`run_axes_grid_in`]) produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisCell {
    /// Position of the scenario in the requested grid slice.
    pub index: usize,
    /// The scenario's unique identifier.
    pub id: String,
    /// The scenario itself.
    pub scenario: Scenario,
    /// The per-cell RNG seed ([`scenario_seed`]).
    pub seed: u64,
    /// Results of the cell's evaluation axes, in request order.
    pub axis_results: Vec<AxisResult>,
}

impl AxisCell {
    /// Serializes the cell as JSON-lines records, **one line per axis
    /// result** — the wire format `berry-serve` streams for axis requests.
    ///
    /// Optional fields (`voltage_norm`, `processing`, `quality_of_flight`
    /// on navigation-only axes) are emitted as `null`; floats follow the
    /// campaign-row convention (`{:?}` finite, `null` non-finite).
    pub fn to_json_lines(&self) -> Vec<String> {
        self.axis_results
            .iter()
            .enumerate()
            .map(|(axis_index, r)| {
                format!(
                    "{{\"index\":{},\"id\":{},\"seed\":{},\"axis\":{},\"label\":{},\
                     \"scheme\":{},\"voltage_norm\":{},\"ber\":{},\"nav\":{},\
                     \"processing\":{},\"quality_of_flight\":{}}}",
                    self.index,
                    json_string(&self.id),
                    self.seed,
                    axis_index,
                    json_string(&r.label),
                    json_string(&r.scheme),
                    r.voltage_norm.map_or_else(|| "null".to_string(), json_f64),
                    json_f64(r.ber),
                    eval_stats_json(&r.nav),
                    r.processing
                        .as_ref()
                        .map_or_else(|| "null".to_string(), processing_json),
                    r.quality_of_flight
                        .as_ref()
                        .map_or_else(|| "null".to_string(), quality_of_flight_json),
                )
            })
            .collect()
    }
}

/// Runs a grid slice evaluating **only** the requested axes per cell —
/// the table/figure runners' entry point, which skips the standard
/// deploy-point evaluation their tables never read (at paper scale that
/// is two full 500-fault-map sweeps of saved wall-clock per cell).
///
/// The seed protocol is identical to [`run_grid_streamed_in`]: the two
/// deploy-point seeds are still drawn (and discarded) before the axis
/// seeds, so every axis result here is **bitwise identical** to the same
/// axis evaluated by a full campaign cell.
///
/// # Errors
///
/// Returns the first (in grid order) cell error.
pub fn run_axes_grid_in(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    store: &PolicyStore,
    axes: &[EvalAxis],
) -> Result<Vec<AxisCell>> {
    run_axes_grid_with_precision_in(grid, scale, base_seed, store, axes, Precision::Reference)
}

/// [`run_axes_grid_in`] at an explicit GEMM precision tier.
///
/// # Errors
///
/// Returns the first (in grid order) cell error.
pub fn run_axes_grid_with_precision_in(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    store: &PolicyStore,
    axes: &[EvalAxis],
    precision: Precision,
) -> Result<Vec<AxisCell>> {
    grid.iter()
        .enumerate()
        .map(|(index, scenario)| {
            let cell_seed = scenario_seed(base_seed, index as u64);
            let cell = prepare_cell(
                scenario,
                scale,
                cell_seed,
                base_seed,
                store,
                axes.len(),
                precision,
            )
            .map_err(|e| tag_cell_error(scenario, e))?;
            let axis_results = cell
                .run_axes(scenario, axes)
                .map_err(|e| tag_cell_error(scenario, e))?;
            Ok(AxisCell {
                index,
                id: scenario.id(),
                scenario: scenario.clone(),
                seed: cell_seed,
                axis_results,
            })
        })
        .collect()
}

fn resolve_builtin_chip(name: &str) -> Result<ChipProfile> {
    ChipProfile::all_builtin()
        .into_iter()
        .find(|c| c.name() == name)
        .ok_or_else(|| CoreError::InvalidConfig(format!("unknown chip profile `{name}`")))
}

/// The voltage an axis evaluates at for a requested BER: the lowest
/// voltage whose error rate reaches it, clamped to the shared
/// [`DEPLOY_VOLTAGE_FLOOR_NORM`] so very high rates stay inside the BER
/// model's tabulated range.
fn voltage_for_ber(chip: &ChipProfile, ber: f64) -> Result<f64> {
    Ok(chip
        .ber_model()
        .min_voltage_for_ber(ber)?
        .max(DEPLOY_VOLTAGE_FLOOR_NORM))
}

/// Executes one evaluation axis of a cell.
fn run_axis(
    axis: &EvalAxis,
    seed: u64,
    pair: &TrainedPair,
    eval_env: &NavigationEnv,
    base_context: &MissionContext,
    scenario: &Scenario,
    eval_cfg: &FaultEvaluationConfig,
) -> Result<AxisResult> {
    let policy: &Sequential = match axis.role {
        PolicyRole::Classical => &pair.classical,
        PolicyRole::Berry => &pair.berry,
    };
    let nav_only = |nav: EvalStats, ber: f64| AxisResult {
        label: axis.label.clone(),
        scheme: axis.role.label().to_string(),
        voltage_norm: None,
        ber,
        nav,
        processing: None,
        quality_of_flight: None,
    };
    match &axis.point {
        OperatingPoint::ErrorFree => {
            let nav = evaluate_error_free_seeded(policy, eval_env, eval_cfg, seed)?;
            Ok(nav_only(nav, 0.0))
        }
        OperatingPoint::Ber(ber) => {
            let nav = evaluate_under_faults_seeded(
                policy,
                eval_env,
                &base_context.chip,
                *ber,
                eval_cfg,
                seed,
            )?;
            Ok(nav_only(nav, *ber))
        }
        mission_point => {
            let (context, voltage) = match mission_point {
                OperatingPoint::MissionAtVoltage(v) => (base_context.clone(), *v),
                OperatingPoint::MissionAtDeployVoltage => {
                    (base_context.clone(), scenario.deploy_voltage_norm())
                }
                OperatingPoint::MissionAtBer(ber) => {
                    (base_context.clone(), voltage_for_ber(&base_context.chip, *ber)?)
                }
                OperatingPoint::MissionOnChip { chip, ber } => {
                    let chip = resolve_builtin_chip(chip)?;
                    let voltage = voltage_for_ber(&chip, *ber)?;
                    (
                        MissionContext {
                            chip,
                            ..base_context.clone()
                        },
                        voltage,
                    )
                }
                OperatingPoint::ErrorFree | OperatingPoint::Ber(_) => {
                    return Err(CoreError::Internal(
                        "non-mission operating point reached the mission arm".to_string(),
                    ))
                }
            };
            let mission =
                evaluate_mission_seeded(policy, eval_env, &context, voltage, eval_cfg, seed)?;
            Ok(AxisResult {
                label: axis.label.clone(),
                scheme: axis.role.label().to_string(),
                voltage_norm: Some(mission.voltage_norm),
                ber: mission.ber,
                nav: mission.navigation,
                processing: Some(mission.processing),
                quality_of_flight: Some(mission.quality_of_flight),
            })
        }
    }
}

/// Runs the campaign **sharded across rayon workers**, one task per grid
/// cell, and merges the rows in grid order.
///
/// Bitwise identical to [`run_campaign_serial`] for any worker count (each
/// cell's stream is derived from [`scenario_seed`], nothing is shared);
/// the golden-snapshot and thread-count tests pin this.  The first failing
/// cell's error is returned, tagged with its scenario id — a campaign with
/// any errored cell is a failed campaign.
///
/// # Errors
///
/// Returns the first (in grid order) cell error.
pub fn run_campaign(config: &CampaignConfig) -> Result<Vec<CampaignRow>> {
    run_campaign_in(config, &PolicyStore::in_memory())
}

/// [`run_campaign`] against a caller-owned policy store — with an on-disk
/// store, a rerun of the same campaign retrains nothing.
///
/// # Errors
///
/// Returns the first (in grid order) cell error.
pub fn run_campaign_in(config: &CampaignConfig, store: &PolicyStore) -> Result<Vec<CampaignRow>> {
    let (rows, _) = run_grid_resumable_with_precision_in(
        &config.grid(),
        config.scale,
        config.base_seed,
        store,
        &[],
        config.precision,
        &CompletedSet::empty(),
        &|_| {},
        |_, _| Ok(()),
    )?;
    Ok(rows)
}

/// The serial reference implementation: the same per-cell pipeline and the
/// same [`scenario_seed`] derivation, executed one cell at a time in grid
/// order.
///
/// # Errors
///
/// Returns the first cell error.
pub fn run_campaign_serial(config: &CampaignConfig) -> Result<Vec<CampaignRow>> {
    run_grid_serial_with_precision_in(
        &config.grid(),
        config.scale,
        config.base_seed,
        &PolicyStore::in_memory(),
        config.precision,
    )
}

/// Runs an explicit scenario list as a sharded campaign (the engine under
/// [`run_campaign`], exposed so tests and custom sweeps can campaign over
/// a hand-picked sub-grid).
///
/// # Errors
///
/// Returns the first (in grid order) cell error.
pub fn run_grid(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<CampaignRow>> {
    run_grid_streamed(grid, scale, base_seed, |_| Ok(()))
}

/// [`run_grid`] with **per-row streaming**: cells fan out across the
/// work-stealing scheduler and `sink` receives every finished row in grid
/// order, as early as the in-order merge allows — so a long campaign (72
/// or 216 cells of real training) persists rows incrementally instead of
/// losing everything to a crash or timeout near the end.
///
/// Scheduling never changes the results: each cell's seed is drawn up
/// front from its **global** grid index (see [`plan_cells`]), so any
/// worker count and any steal pattern produce bitwise-identical rows.
///
/// # Errors
///
/// Returns the first (in grid order) cell error, or the first error the
/// sink reports — a failing sink (e.g. a full disk) cancels the remaining
/// cells instead of burning their compute.  Rows already handed to `sink`
/// stay written.
pub fn run_grid_streamed(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    sink: impl FnMut(&CampaignRow) -> Result<()>,
) -> Result<Vec<CampaignRow>> {
    run_grid_streamed_in(grid, scale, base_seed, &PolicyStore::in_memory(), &[], sink)
}

/// [`run_grid_streamed`] against a caller-owned [`PolicyStore`] and with
/// per-cell evaluation [`EvalAxis`] requests — the execution path
/// **every** table/figure runner is a declarative request to (a grid
/// slice plus its evaluation axes).
///
/// Cells that resolve to the same training fingerprint share a single
/// training run through the store (the second requester blocks instead of
/// retraining); across runner processes the store's disk layer does the
/// same.  None of this sharing is observable in the rows: training is a
/// pure function of the request.
///
/// # Errors
///
/// Returns the first (in grid order) cell error, or the first error the
/// sink reports.
pub fn run_grid_streamed_in(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    store: &PolicyStore,
    axes: &[EvalAxis],
    mut sink: impl FnMut(&CampaignRow) -> Result<()>,
) -> Result<Vec<CampaignRow>> {
    let (rows, _) = run_grid_resumable_in(
        grid,
        scale,
        base_seed,
        store,
        axes,
        &CompletedSet::empty(),
        &|_| {},
        |_, row| sink(row),
    )?;
    Ok(rows)
}

/// The campaign engine's core: executes every cell of the plan **not** in
/// `completed`, streaming `(cell_index, row)` to `sink` in grid order.
///
/// This is the four-layer determinism story in one signature:
/// [`plan_cells`] draws all seeds before execution, the rayon shim's
/// work-stealing scheduler runs the filtered plan in whatever order the
/// workers reach it, and the shim's in-order merge hands rows to `sink`
/// strictly by plan position — so execution order (worker count, steal
/// pattern, per-cell skew) is unobservable in every artifact.  `pre_cell`
/// runs on the worker before its cell starts; tests and the bench inject
/// per-cell delays through it to prove exactly that.
///
/// Returns the freshly executed rows (in grid order; resumed cells are
/// **not** re-materialized here — the caller holds their rows) plus the
/// run's [`SchedulerStats`].
///
/// # Errors
///
/// Returns the first (in grid order) cell error, or the first error the
/// sink reports; either cancels the cells still in flight.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_resumable_in(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    store: &PolicyStore,
    axes: &[EvalAxis],
    completed: &CompletedSet,
    pre_cell: &(impl Fn(usize) + Sync),
    sink: impl FnMut(usize, &CampaignRow) -> Result<()>,
) -> Result<(Vec<CampaignRow>, SchedulerStats)> {
    run_grid_resumable_with_precision_in(
        grid,
        scale,
        base_seed,
        store,
        axes,
        Precision::Reference,
        completed,
        pre_cell,
        sink,
    )
}

/// [`run_grid_resumable_in`] at an explicit GEMM precision tier.
///
/// The tier applies to every cell's evaluations; seeds, training and the
/// resume protocol are unaffected.  Rows do **not** record the tier, so a
/// resumed run must use the same precision as the run that wrote the
/// partial rows — the runner enforces this by deriving both from the same
/// flag.
///
/// # Errors
///
/// Returns the first (in grid order) cell error, or the first error the
/// sink reports; either cancels the cells still in flight.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_resumable_with_precision_in(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    store: &PolicyStore,
    axes: &[EvalAxis],
    precision: Precision,
    completed: &CompletedSet,
    pre_cell: &(impl Fn(usize) + Sync),
    mut sink: impl FnMut(usize, &CampaignRow) -> Result<()>,
) -> Result<(Vec<CampaignRow>, SchedulerStats)> {
    let pending: Vec<CellPlan> = plan_cells(grid, base_seed)
        .into_iter()
        .filter(|cell| !completed.contains(cell.index))
        .collect();
    let skipped = grid.len() - pending.len();
    if pending.is_empty() {
        return Ok((Vec::new(), SchedulerStats::idle(skipped)));
    }
    let mut rows: Vec<CampaignRow> = Vec::with_capacity(pending.len());
    pending
        .into_par_iter()
        .map(|cell| {
            pre_cell(cell.index);
            run_scenario_in(
                &cell.scenario,
                cell.index,
                scale,
                cell.seed,
                base_seed,
                store,
                axes,
                precision,
            )
            .map_err(|e| tag_cell_error(&cell.scenario, e))
        })
        .try_for_each_ordered(|_, row| -> Result<()> {
            let row = row?;
            sink(row.index, &row)?;
            rows.push(row);
            Ok(())
        })?;
    Ok((rows, SchedulerStats::from_last_run(skipped)))
}

/// Runs an explicit scenario list serially, one cell at a time in grid
/// order, with the identical per-cell seed derivation as [`run_grid`].
///
/// # Errors
///
/// Returns the first cell error.
pub fn run_grid_serial(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
) -> Result<Vec<CampaignRow>> {
    run_grid_serial_in(grid, scale, base_seed, &PolicyStore::in_memory())
}

/// [`run_grid_serial`] against a caller-owned policy store.
///
/// # Errors
///
/// Returns the first cell error.
pub fn run_grid_serial_in(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    store: &PolicyStore,
) -> Result<Vec<CampaignRow>> {
    run_grid_serial_with_precision_in(grid, scale, base_seed, store, Precision::Reference)
}

/// [`run_grid_serial_in`] at an explicit GEMM precision tier.
///
/// # Errors
///
/// Returns the first cell error.
pub fn run_grid_serial_with_precision_in(
    grid: &[Scenario],
    scale: ExperimentScale,
    base_seed: u64,
    store: &PolicyStore,
    precision: Precision,
) -> Result<Vec<CampaignRow>> {
    grid.iter()
        .enumerate()
        .map(|(index, scenario)| {
            run_scenario_in(
                scenario,
                index,
                scale,
                scenario_seed(base_seed, index as u64),
                base_seed,
                store,
                &[],
                precision,
            )
            .map_err(|e| tag_cell_error(scenario, e))
        })
        .collect()
}

fn tag_cell_error(scenario: &Scenario, e: crate::CoreError) -> crate::CoreError {
    crate::CoreError::InvalidConfig(format!("campaign cell `{}` failed: {e}", scenario.id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_seeds_are_distinct_and_differ_from_identity() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| scenario_seed(2023, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(scenario_seed(2023, 0), 2023);
        // Distinct base seeds shift the whole family.
        assert_ne!(scenario_seed(1, 5), scenario_seed(2, 5));
    }

    #[test]
    fn config_selects_the_grid_by_scale() {
        assert_eq!(CampaignConfig::smoke_test().grid().len(), 4);
        assert_eq!(
            CampaignConfig::at_scale(ExperimentScale::Quick).grid().len(),
            72
        );
        assert_eq!(
            CampaignConfig::at_scale(ExperimentScale::Paper).grid().len(),
            216
        );
        assert_eq!(CampaignConfig::smoke_test().base_seed, 2023);
    }

    #[test]
    fn single_scenario_runs_end_to_end_and_serializes() {
        let grid = Scenario::smoke_grid();
        let row = run_scenario(&grid[0], 0, ExperimentScale::Smoke, 42).unwrap();
        assert_eq!(row.index, 0);
        assert_eq!(row.id, grid[0].id());
        assert!(row.classical_nav.episodes > 0);
        assert_eq!(row.classical_nav.episodes, row.berry_nav.episodes);
        assert!(row.robust_updates > 0);
        assert!(row.ber > 0.0);
        assert!(row.processing.savings_vs_nominal > 1.0);
        assert!(row.quality_of_flight.flight_energy_j > 0.0);
        let line = row.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"classical_nav\""));
        assert!(line.contains("\"savings_vs_nominal\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn rerunning_a_scenario_is_bitwise_reproducible() {
        let grid = Scenario::smoke_grid();
        let a = run_scenario(&grid[2], 2, ExperimentScale::Smoke, 7).unwrap();
        let b = run_scenario(&grid[2], 2, ExperimentScale::Smoke, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json_line(), b.to_json_line());
        // A different seed produces a genuinely different row.
        let c = run_scenario(&grid[2], 2, ExperimentScale::Smoke, 8).unwrap();
        assert_ne!(a.berry_nav.mean_return.to_bits(), c.berry_nav.mean_return.to_bits());
    }

    #[test]
    fn streaming_matches_the_serial_reference() {
        let grid: Vec<Scenario> = Scenario::smoke_grid().into_iter().take(2).collect();
        let serial = run_grid_serial(&grid, ExperimentScale::Smoke, 5).unwrap();
        // The sink must see the rows in grid order regardless of which
        // worker finishes first.
        let mut streamed_ids = Vec::new();
        let streamed = run_grid_streamed(&grid, ExperimentScale::Smoke, 5, |row| {
            streamed_ids.push(row.index);
            Ok(())
        })
        .unwrap();
        assert_eq!(streamed, serial);
        assert_eq!(streamed_ids, vec![0, 1]);
        // A failing sink cancels the campaign after the first row.
        let mut seen = 0;
        let err = run_grid_streamed(&grid, ExperimentScale::Smoke, 5, |_| {
            seen += 1;
            Err(crate::CoreError::InvalidConfig("sink full".into()))
        });
        assert!(err.is_err());
        assert_eq!(seen, 1, "campaign must stop after the first sink error");
    }

    #[test]
    fn plan_draws_all_seeds_up_front_in_grid_order() {
        let grid = Scenario::smoke_grid();
        let plan = plan_cells(&grid, 2023);
        assert_eq!(plan.len(), grid.len());
        for (i, cell) in plan.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.scenario, grid[i]);
            assert_eq!(cell.seed, scenario_seed(2023, i as u64));
        }
    }

    #[test]
    fn completed_set_filters_and_iterates_in_order() {
        let mut set = CompletedSet::empty();
        assert!(set.is_empty());
        assert!(set.insert(3));
        assert!(set.insert(1));
        assert!(!set.insert(3), "double insert reports false");
        assert_eq!(set.len(), 2);
        assert!(set.contains(1) && set.contains(3) && !set.contains(0));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1, 3]);
        let from_iter: CompletedSet = [1usize, 3].into_iter().collect();
        assert_eq!(set, from_iter);
    }

    #[test]
    fn resumable_run_skips_completed_cells_and_reports_stats() {
        let grid: Vec<Scenario> = Scenario::smoke_grid().into_iter().take(2).collect();
        let store = PolicyStore::in_memory();
        let (all, stats) = run_grid_resumable_in(
            &grid,
            ExperimentScale::Smoke,
            5,
            &store,
            &[],
            &CompletedSet::empty(),
            &|_| {},
            |_, _| Ok(()),
        )
        .unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(stats.rows_skipped_resumed, 0);
        assert!(stats.mode == "work-stealing" || stats.mode == "contiguous");
        // Resume with cell 0 done: only cell 1 executes, bitwise equal to
        // the fresh run's row, and the sink reports its grid index.
        let completed: CompletedSet = [0usize].into_iter().collect();
        let mut sunk = Vec::new();
        let (fresh, stats) = run_grid_resumable_in(
            &grid,
            ExperimentScale::Smoke,
            5,
            &store,
            &[],
            &completed,
            &|_| {},
            |index, row| {
                sunk.push((index, row.id.clone()));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0], all[1]);
        assert_eq!(sunk, vec![(1, all[1].id.clone())]);
        assert_eq!(stats.rows_skipped_resumed, 1);
        // Everything resumed: nothing runs, the stats say idle.
        let completed: CompletedSet = [0usize, 1].into_iter().collect();
        let (none, stats) = run_grid_resumable_in(
            &grid,
            ExperimentScale::Smoke,
            5,
            &store,
            &[],
            &completed,
            &|_| {},
            |_, _| Ok(()),
        )
        .unwrap();
        assert!(none.is_empty());
        assert_eq!(stats, SchedulerStats::idle(2));
        assert_eq!(stats.mode, "idle");
    }

    #[test]
    fn scheduler_stats_serialize_on_one_line() {
        let stats = SchedulerStats {
            mode: "work-stealing".to_string(),
            workers: 3,
            per_worker_cells: vec![2, 1, 1],
            steals: 1,
            rows_skipped_resumed: 4,
        };
        let json = stats.to_json();
        assert!(!json.contains('\n'), "scheduler stats must stay on one line");
        assert_eq!(
            json,
            "{\"mode\":\"work-stealing\",\"workers\":3,\"per_worker_cells\":[2,1,1],\
             \"steals\":1,\"rows_skipped_resumed\":4}"
        );
        // Attached to a summary it occupies exactly one filterable line.
        let grid = Scenario::smoke_grid();
        let rows =
            vec![run_scenario(&grid[0], 0, ExperimentScale::Smoke, scenario_seed(9, 0)).unwrap()];
        let summary = CampaignSummary::from_rows(&rows).with_scheduler(stats);
        let json = summary.to_json();
        let scheduler_lines: Vec<&str> =
            json.lines().filter(|l| l.contains("\"scheduler\"")).collect();
        assert_eq!(scheduler_lines.len(), 1);
        let filtered: String = json
            .lines()
            .filter(|l| !l.contains("\"scheduler\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(filtered, CampaignSummary::from_rows(&rows).to_json());
    }

    #[test]
    fn summary_folds_rows_and_serializes() {
        let grid = Scenario::smoke_grid();
        let rows: Vec<CampaignRow> = grid
            .iter()
            .take(2)
            .enumerate()
            .map(|(i, s)| run_scenario(s, i, ExperimentScale::Smoke, scenario_seed(9, i as u64)))
            .collect::<Result<_>>()
            .unwrap();
        let summary = CampaignSummary::from_rows(&rows);
        assert_eq!(summary.scenarios, 2);
        assert!(summary.episodes > 0);
        assert!((0.0..=1.0).contains(&summary.berry_wins_or_ties));
        assert!(summary.mean_energy_savings > 1.0);
        assert!(!summary.best_cell.is_empty());
        let json = summary.to_json();
        assert!(json.contains("\"mean_berry_success\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn axes_extend_a_cell_without_disturbing_its_row() {
        let grid = Scenario::smoke_grid();
        let scenario = &grid[0];
        let axes = vec![
            EvalAxis::new("error-free", PolicyRole::Classical, OperatingPoint::ErrorFree),
            EvalAxis::new("ber:0.005", PolicyRole::Berry, OperatingPoint::Ber(0.005)),
            EvalAxis::new(
                "deploy",
                PolicyRole::Berry,
                OperatingPoint::MissionAtDeployVoltage,
            ),
            EvalAxis::new(
                "chip1",
                PolicyRole::Berry,
                OperatingPoint::MissionOnChip {
                    chip: "chip1-random".into(),
                    ber: 0.0016,
                },
            ),
        ];
        let store = PolicyStore::in_memory();
        let with_axes =
            run_scenario_in(
            scenario,
            0,
            ExperimentScale::Smoke,
            21,
            21,
            &store,
            &axes,
            Precision::Reference,
        )
        .unwrap();
        let plain = run_scenario(scenario, 0, ExperimentScale::Smoke, 21).unwrap();
        // One training for base row + four axes.
        assert_eq!(store.stats().trained, 1);
        assert_eq!(with_axes.axis_results.len(), 4);
        // The axes never leak into the standard deploy-point row.
        let mut stripped = with_axes.clone();
        stripped.axis_results.clear();
        assert_eq!(stripped, plain);
        let [ef, ber, deploy, chip1] = &with_axes.axis_results[..] else {
            panic!("expected four axis results");
        };
        assert_eq!(ef.scheme, "Classical");
        assert_eq!(ef.ber, 0.0);
        assert!(ef.processing.is_none());
        assert_eq!(ber.ber, 0.005);
        assert_eq!(deploy.voltage_norm, Some(scenario.deploy_voltage_norm()));
        assert!(deploy.quality_of_flight.is_some());
        assert!(chip1.processing.is_some());
        assert!(chip1.voltage_norm.unwrap() >= DEPLOY_VOLTAGE_FLOOR_NORM);
        // Unknown chips are rejected, not silently substituted.
        let bad = vec![EvalAxis::new(
            "bad",
            PolicyRole::Berry,
            OperatingPoint::MissionOnChip {
                chip: "no-such-chip".into(),
                ber: 0.001,
            },
        )];
        assert!(
            run_scenario_in(
                scenario,
                0,
                ExperimentScale::Smoke,
                21,
                21,
                &store,
                &bad,
                Precision::Reference,
            )
            .is_err()
        );
    }

    #[test]
    fn axes_only_grid_matches_full_cell_axis_results_bitwise() {
        let grid: Vec<Scenario> = Scenario::smoke_grid().into_iter().take(1).collect();
        let axes = vec![
            EvalAxis::new("ef", PolicyRole::Berry, OperatingPoint::ErrorFree),
            EvalAxis::new(
                "deploy",
                PolicyRole::Classical,
                OperatingPoint::MissionAtDeployVoltage,
            ),
        ];
        let store = PolicyStore::in_memory();
        let full =
            run_grid_streamed_in(&grid, ExperimentScale::Smoke, 31, &store, &axes, |_| Ok(()))
                .unwrap();
        let axes_only = run_axes_grid_in(&grid, ExperimentScale::Smoke, 31, &store, &axes).unwrap();
        assert_eq!(axes_only.len(), 1);
        // Same seed protocol (deploy seeds drawn then discarded), same
        // pair: the axis results must be bitwise identical even though the
        // axes-only path never paid the deploy-point evaluation.
        assert_eq!(axes_only[0].axis_results, full[0].axis_results);
        assert_eq!(axes_only[0].seed, full[0].seed);
        assert_eq!(axes_only[0].id, full[0].id);
        // And the pair was shared, not retrained.
        assert_eq!(store.stats().trained, 1);
    }

    #[test]
    fn cells_differing_only_by_platform_share_one_cached_pair() {
        let base = Scenario::smoke_grid()[0].clone();
        assert!(base.platform.contains("Crazyflie"));
        let other_platform = Scenario {
            platform: berry_uav::platform::UavPlatform::dji_tello().name().to_string(),
            ..base.clone()
        };
        let req_a = pair_request_for(&base, ExperimentScale::Smoke, 5).unwrap();
        let req_b = pair_request_for(&other_platform, ExperimentScale::Smoke, 5).unwrap();
        assert_eq!(
            req_a.fingerprint(),
            req_b.fingerprint(),
            "platform is evaluation-side only and must not enter the training fingerprint"
        );
        let store = PolicyStore::in_memory();
        let grid = vec![base, other_platform];
        let rows =
            run_grid_streamed_in(&grid, ExperimentScale::Smoke, 5, &store, &[], |_| Ok(()))
                .unwrap();
        assert_eq!(rows.len(), 2);
        let stats = store.stats();
        assert_eq!(stats.trained, 1, "the two cells must share one training run");
        assert_eq!(stats.memory_hits, 1);
        // Same pair, different platforms: identical train metadata, but the
        // platform-dependent mission numbers differ.
        assert_eq!(
            rows[0].berry_train_success.to_bits(),
            rows[1].berry_train_success.to_bits()
        );
        assert_ne!(
            rows[0].quality_of_flight.flight_energy_j.to_bits(),
            rows[1].quality_of_flight.flight_energy_j.to_bits()
        );
    }

    #[test]
    fn error_summary_reports_status_and_progress() {
        let json = error_summary_json(3, 72, "campaign cell `x` failed: boom \"quoted\"");
        assert!(json.contains("\"status\": \"error\""));
        assert!(json.contains("\"rows_completed\": 3"));
        assert!(json.contains("\"scenarios\": 72"));
        assert!(json.contains("boom \\\"quoted\\\""));
        assert!(json.ends_with("}\n"));
        // The success summary declares its status too.
        let grid = Scenario::smoke_grid();
        let rows =
            vec![run_scenario(&grid[0], 0, ExperimentScale::Smoke, scenario_seed(9, 0)).unwrap()];
        assert!(CampaignSummary::from_rows(&rows).to_json().contains("\"status\": \"ok\""));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("a\tb"), "\"a\\u0009b\"");
    }
}
