//! Fault-averaged policy evaluation and the mission-level pipeline.
//!
//! The paper's evaluation protocol (Section V-A): "For each case, we
//! evaluate 500 different fault maps and report the average quantity for all
//! metrics."  [`evaluate_under_faults`] implements that protocol — draw a
//! fault map, perturb the quantized policy, run greedy navigation episodes,
//! repeat, and average.  [`evaluate_mission`] then chains the result through
//! the accelerator energy model and the cyber-physical flight model to
//! produce the quality-of-flight rows of Table II / Fig. 5 / Fig. 7.

// lint: pinned-path — reductions here feed golden-pinned statistics; use berry_nn::reduce helpers

use crate::error::CoreError;
use crate::perturb::{NetworkPerturber, PerturbContext};
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_hw::accelerator::{Accelerator, ProcessingReport};
use berry_hw::workload::NetworkWorkload;
use berry_nn::gemm::Precision;
use berry_nn::network::Sequential;
use berry_rl::env::Environment;
use berry_rl::eval::{evaluate_policy_batched, evaluate_policy_seeded_serial, EvalStats};
use berry_uav::flight::{compute_power_w, FlightEnergyModel, QualityOfFlight};
use berry_uav::physics::{FlightPhysics, PhysicsConfig};
use berry_uav::platform::UavPlatform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How much evaluation to do per operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvaluationConfig {
    /// Number of independent fault maps (the paper uses 500).
    pub fault_maps: usize,
    /// Greedy episodes evaluated per fault map.
    pub episodes_per_map: usize,
    /// Step limit per episode.
    pub max_steps: usize,
    /// Quantization width for deployment (8 in the paper).
    pub quant_bits: u8,
    /// Concurrent episode lanes of the batched lockstep rollout engine
    /// (capped at the episode count; the statistics are bitwise identical
    /// for any value, so this is purely a throughput knob).
    pub lanes: usize,
    /// GEMM precision tier every policy inference in this evaluation runs
    /// at.  `Reference` (the default) reproduces all historical golden
    /// bits; `Fast` routes through the SIMD microkernels.  Purely an
    /// *evaluation-side* knob: it is deliberately not part of the training
    /// fingerprint, so the PolicyStore stays tier-agnostic and both tiers
    /// evaluate the very same stored policies.
    pub precision: Precision,
}

impl Default for FaultEvaluationConfig {
    fn default() -> Self {
        Self {
            fault_maps: 20,
            episodes_per_map: 5,
            max_steps: 60,
            quant_bits: 8,
            lanes: 8,
            precision: Precision::Reference,
        }
    }
}

impl FaultEvaluationConfig {
    /// A minimal configuration for unit tests.
    pub fn smoke_test() -> Self {
        Self {
            fault_maps: 3,
            episodes_per_map: 2,
            max_steps: 30,
            ..Self::default()
        }
    }

    /// The paper's full protocol: 500 fault maps per operating point.
    pub fn paper_scale() -> Self {
        Self {
            fault_maps: 500,
            episodes_per_map: 2,
            max_steps: 60,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero counts or an invalid
    /// quantization width.
    pub fn validate(&self) -> Result<()> {
        if self.fault_maps == 0 || self.episodes_per_map == 0 || self.max_steps == 0 {
            return Err(CoreError::InvalidConfig(
                "fault_maps, episodes_per_map and max_steps must be positive".into(),
            ));
        }
        if self.lanes == 0 {
            return Err(CoreError::InvalidConfig(
                "lanes must be positive (1 = serial lockstep)".into(),
            ));
        }
        if self.quant_bits == 0 || self.quant_bits > 8 {
            return Err(CoreError::InvalidConfig(
                "quant_bits must be in 1..=8".into(),
            ));
        }
        Ok(())
    }
}

/// Evaluates a policy with *no* bit errors (quantization noise only).
///
/// Runs through the same quantize-once [`PerturbContext`] + pooled-scratch
/// pipeline as the fault-map paths (with an error-free map, so the scratch
/// network is exactly the quantize→dequantize copy) and rolls the episodes
/// out on the batched lockstep engine — the error-free row of a table costs
/// the same machinery as every other row, not a private slow path.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or quantization fails.
pub fn evaluate_error_free<E, R>(
    policy: &Sequential,
    env: &E,
    config: &FaultEvaluationConfig,
    rng: &mut R,
) -> Result<EvalStats>
where
    E: Environment + Clone,
    R: Rng,
{
    let episode_seed_base = rng.next_u64();
    evaluate_error_free_seeded(policy, env, config, episode_seed_base)
}

/// [`evaluate_error_free`] with an explicit episode-seed base, so sweep
/// runners can fan error-free rows out across cores while every row keeps
/// its own deterministic stream.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or quantization fails.
pub fn evaluate_error_free_seeded<E>(
    policy: &Sequential,
    env: &E,
    config: &FaultEvaluationConfig,
    episode_seed_base: u64,
) -> Result<EvalStats>
where
    E: Environment + Clone,
{
    config.validate()?;
    let context = NetworkPerturber::new(config.quant_bits)?.context(policy)?;
    let map = berry_faults::fault_map::FaultMap::error_free(context.memory_bits());
    let mut scratch = context.checkout();
    context.perturb_map_into(&map, &mut scratch)?;
    let episodes = config.fault_maps * config.episodes_per_map;
    let (network, infer) = scratch.network_and_infer();
    infer.set_precision(config.precision);
    let stats = evaluate_policy_batched(
        network,
        env,
        episodes,
        config.max_steps,
        config.lanes,
        episode_seed_base,
        infer,
    );
    context.checkin(scratch);
    Ok(stats)
}

// The fault-map seed family lives in the central seed registry; the
// historical path `evaluate::fault_map_seed` stays valid via this
// re-export.
pub use crate::seed::fault_map_seed;

/// Evaluates a policy under bit errors at an explicit bit-error rate,
/// averaging over `config.fault_maps` independent fault maps.
///
/// The per-fault-map work — sampling the map, perturbing the quantized
/// policy and rolling out greedy episodes — fans out across CPU cores.
/// Each map's RNG is seeded from a base seed drawn once from `rng` (see
/// [`fault_map_seed`]), and the per-map statistics are merged in map order,
/// so the result is independent of the worker count and identical to the
/// serial reference path ([`evaluate_under_faults_serial`]).
///
/// # Errors
///
/// Returns an error if the configuration or rate is invalid.
pub fn evaluate_under_faults<E, R>(
    policy: &Sequential,
    env: &E,
    chip: &ChipProfile,
    ber: f64,
    config: &FaultEvaluationConfig,
    rng: &mut R,
) -> Result<EvalStats>
where
    E: Environment + Clone + Sync,
    R: Rng,
{
    let base_seed = rng.next_u64();
    evaluate_under_faults_seeded(policy, env, chip, ber, config, base_seed)
}

/// The parallel fault-map evaluation path, with an explicit base seed.
///
/// # Errors
///
/// Returns an error if the configuration or rate is invalid.
pub fn evaluate_under_faults_seeded<E>(
    policy: &Sequential,
    env: &E,
    chip: &ChipProfile,
    ber: f64,
    config: &FaultEvaluationConfig,
    base_seed: u64,
) -> Result<EvalStats>
where
    E: Environment + Clone + Sync,
{
    config.validate()?;
    // Quantize the clean policy exactly once; every worker below only pays
    // a byte copy + flip injection + dequantize per fault map.
    let context = NetworkPerturber::new(config.quant_bits)?.context(policy)?;
    let per_map: Vec<Result<EvalStats>> = (0..config.fault_maps)
        .into_par_iter()
        .map(|map_index| {
            let map_seed = fault_map_seed(base_seed, map_index as u64);
            let mut map_rng = StdRng::seed_from_u64(map_seed);
            evaluate_one_fault_map(&context, env, chip, ber, config, &mut map_rng, map_seed)
        })
        .collect();
    merge_in_order(per_map)
}

/// The serial reference implementation of the fault-map evaluation
/// protocol: maps evaluated one at a time, episodes rolled out one at a
/// time through the serial per-episode-seeded engine
/// ([`evaluate_policy_seeded_serial`]) instead of the lockstep lanes.
///
/// Uses the same per-map seeding ([`fault_map_seed`]), the same per-episode
/// seeding ([`berry_rl::vecenv::episode_seed`]) and the same in-order merge
/// as [`evaluate_under_faults_seeded`], so for any base seed — and any lane
/// count on the parallel side — the two return bitwise-identical
/// statistics; the determinism tests in `tests/parallel_determinism.rs` pin
/// that equivalence.  (The pre-PR-3 shared-RNG episode derivation survives
/// as [`berry_rl::eval::evaluate_policy`], which the golden-snapshot legacy
/// test still re-derives the original pinned statistics through.)
///
/// # Errors
///
/// Returns an error if the configuration or rate is invalid.
pub fn evaluate_under_faults_serial<E: Environment + Clone>(
    policy: &Sequential,
    env: &E,
    chip: &ChipProfile,
    ber: f64,
    config: &FaultEvaluationConfig,
    base_seed: u64,
) -> Result<EvalStats> {
    config.validate()?;
    let context = NetworkPerturber::new(config.quant_bits)?.context(policy)?;
    let per_map: Vec<Result<EvalStats>> = (0..config.fault_maps)
        .map(|map_index| {
            let map_seed = fault_map_seed(base_seed, map_index as u64);
            let mut map_rng = StdRng::seed_from_u64(map_seed);
            let map = context.sample_fault_map(chip, ber, &mut map_rng)?;
            let mut scratch = context.checkout();
            context.perturb_map_into(&map, &mut scratch)?;
            let (network, infer) = scratch.network_and_infer();
            infer.set_precision(config.precision);
            let stats = evaluate_policy_seeded_serial(
                network,
                env,
                config.episodes_per_map,
                config.max_steps,
                map_seed,
                infer,
            );
            context.checkin(scratch);
            Ok(stats)
        })
        .collect();
    merge_in_order(per_map)
}

/// Samples one fault map, injects it into a pooled copy of the quantized
/// byte image and rolls out the configured number of greedy episodes over
/// the dequantized scratch network on the **batched lockstep engine**.
///
/// The fault map's RNG stream and the resulting weights are bitwise
/// identical to the pre-quantize-once path (sample, `perturb_with_map`,
/// fresh network); the episodes draw their randomness from per-episode
/// streams derived from `map_seed`, so the statistics are independent of
/// the lane count — the golden snapshot test pins the whole composition.
#[allow(clippy::too_many_arguments)]
fn evaluate_one_fault_map<E: Environment + Clone>(
    context: &PerturbContext,
    env: &E,
    chip: &ChipProfile,
    ber: f64,
    config: &FaultEvaluationConfig,
    rng: &mut StdRng,
    map_seed: u64,
) -> Result<EvalStats> {
    let map = context.sample_fault_map(chip, ber, rng)?;
    let mut scratch = context.checkout();
    context.perturb_map_into(&map, &mut scratch)?;
    let (network, infer) = scratch.network_and_infer();
    infer.set_precision(config.precision);
    let stats = evaluate_policy_batched(
        network,
        env,
        config.episodes_per_map,
        config.max_steps,
        config.lanes,
        map_seed,
        infer,
    );
    context.checkin(scratch);
    Ok(stats)
}

/// Merges per-map statistics strictly in map order so the aggregate is
/// independent of evaluation order and worker count.
fn merge_in_order(per_map: Vec<Result<EvalStats>>) -> Result<EvalStats> {
    let mut combined = EvalStats::empty();
    for stats in per_map {
        combined = combined.merge(&stats?);
    }
    Ok(combined)
}

/// Evaluates a policy at an operating voltage on a given chip (the BER is
/// read off the chip's voltage curve).
///
/// # Errors
///
/// Returns an error for out-of-range voltages or invalid configurations.
pub fn evaluate_at_voltage<E, R>(
    policy: &Sequential,
    env: &E,
    chip: &ChipProfile,
    voltage_norm: f64,
    config: &FaultEvaluationConfig,
    rng: &mut R,
) -> Result<EvalStats>
where
    E: Environment + Clone + Sync,
    R: Rng,
{
    let ber = chip.ber_at_voltage(voltage_norm)?;
    evaluate_under_faults(policy, env, chip, ber, config, rng)
}

/// Everything the mission-level tables report about one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionEvaluation {
    /// Normalized operating voltage (Vmin units).
    pub voltage_norm: f64,
    /// Bit error rate (fraction) at that voltage on the evaluation chip.
    pub ber: f64,
    /// Navigation statistics under bit errors (averaged over fault maps).
    pub navigation: EvalStats,
    /// Accelerator latency/energy/thermal figures at that voltage.
    pub processing: ProcessingReport,
    /// Mission-level quality-of-flight metrics.
    pub quality_of_flight: QualityOfFlight,
}

/// The fixed context a mission evaluation runs in: platform, accelerator,
/// policy workload and chip.
#[derive(Debug, Clone)]
pub struct MissionContext {
    /// The UAV platform flying the mission.
    pub platform: UavPlatform,
    /// The accelerator running the policy.
    pub accelerator: Accelerator,
    /// The deployed policy's hardware workload (C3F2 or C5F4).
    pub workload: NetworkWorkload,
    /// The chip whose fault behaviour is being modelled.
    pub chip: ChipProfile,
    /// Flight-physics constants.
    pub physics: PhysicsConfig,
}

impl MissionContext {
    /// The default context of the paper's main experiments: Crazyflie +
    /// C3F2 + the generic random-fault chip.
    pub fn crazyflie_c3f2() -> Self {
        Self {
            platform: UavPlatform::crazyflie(),
            accelerator: Accelerator::default_edge_accelerator(),
            workload: NetworkWorkload::c3f2(),
            chip: ChipProfile::generic(),
            physics: PhysicsConfig::default(),
        }
    }

    /// The DJI Tello + C3F2 context of the paper's Fig. 7 (top).
    pub fn tello_c3f2() -> Self {
        Self {
            platform: UavPlatform::dji_tello(),
            ..Self::crazyflie_c3f2()
        }
    }

    /// The DJI Tello + C5F4 context of the paper's Fig. 7 (bottom row).
    pub fn tello_c5f4() -> Self {
        Self {
            platform: UavPlatform::dji_tello(),
            workload: NetworkWorkload::c5f4(),
            ..Self::crazyflie_c3f2()
        }
    }

    /// Ratio between this context's policy MACs and the reference C3F2
    /// policy (used to scale compute power).
    pub fn policy_mac_ratio(&self) -> f64 {
        self.workload.total_macs() as f64 / NetworkWorkload::c3f2().total_macs() as f64
    }
}

/// Runs the full mission-level evaluation of a policy at one voltage.
///
/// The navigation success rate and successful-trajectory length come from
/// fault-averaged greedy rollouts; the processing figures from the
/// accelerator model; the heatsink mass feeds the flight-physics chain; and
/// the flight model turns it all into flight time, flight energy and
/// missions per battery charge.
///
/// # Errors
///
/// Returns an error for invalid voltages or configurations.
pub fn evaluate_mission<E, R>(
    policy: &Sequential,
    env: &E,
    context: &MissionContext,
    voltage_norm: f64,
    config: &FaultEvaluationConfig,
    rng: &mut R,
) -> Result<MissionEvaluation>
where
    E: Environment + Clone + Sync,
    R: Rng,
{
    let base_seed = rng.next_u64();
    evaluate_mission_seeded(policy, env, context, voltage_norm, config, base_seed)
}

/// [`evaluate_mission`] with an explicit base seed for the fault-map
/// averaging, so sweep runners can fan out whole operating points across
/// cores while every point keeps its own deterministic stream.
///
/// # Errors
///
/// Returns an error for invalid voltages or configurations.
pub fn evaluate_mission_seeded<E>(
    policy: &Sequential,
    env: &E,
    context: &MissionContext,
    voltage_norm: f64,
    config: &FaultEvaluationConfig,
    base_seed: u64,
) -> Result<MissionEvaluation>
where
    E: Environment + Clone + Sync,
{
    let ber = context.chip.ber_at_voltage(voltage_norm)?;
    let navigation =
        evaluate_under_faults_seeded(policy, env, &context.chip, ber, config, base_seed)?;
    let processing = context.accelerator.evaluate(&context.workload, voltage_norm)?;

    let physics = FlightPhysics::new(context.platform.clone(), context.physics)?;
    let condition = physics.condition(processing.heatsink_mass_g)?;
    let compute_w = compute_power_w(
        &context.platform,
        context.policy_mac_ratio(),
        processing.savings_vs_nominal,
    )?;

    // Flight distance: average successful trajectory; if no episode succeeded
    // at this operating point fall back to the average attempted trajectory
    // (the UAV still burns that energy before crashing or being recovered).
    let mut distance = navigation.mean_success_distance;
    if distance <= 0.0 {
        distance = navigation.mean_distance.max(1.0);
    }
    let flight_model = FlightEnergyModel::new(context.platform.clone());
    let quality_of_flight =
        flight_model.quality_of_flight(&condition, navigation.success_rate, distance, compute_w)?;

    Ok(MissionEvaluation {
        voltage_norm,
        ber,
        navigation,
        processing,
        quality_of_flight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use berry_nn::tensor::Tensor;
    use berry_rl::env::{StepOutcome, TerminalKind};
    use berry_rl::policy::QNetworkSpec;
    use rand::SeedableRng;

    /// A tiny environment whose success depends on the policy's weights:
    /// the agent succeeds when the Q-network prefers action 0 for a fixed
    /// observation, so bit errors that change the argmax cause failures.
    #[derive(Clone)]
    struct ArgmaxEnv;

    impl Environment for ArgmaxEnv {
        fn reset(&mut self, _rng: &mut dyn rand::RngCore) -> Tensor {
            Tensor::from_vec(vec![4], vec![0.4, -0.2, 0.7, -0.5]).unwrap()
        }

        fn step(&mut self, action: usize, _rng: &mut dyn rand::RngCore) -> StepOutcome {
            let success = action == 0;
            StepOutcome {
                observation: Tensor::zeros(&[4]),
                reward: if success { 1.0 } else { -1.0 },
                terminal: Some(if success {
                    TerminalKind::Goal
                } else {
                    TerminalKind::Collision
                }),
                distance_travelled: 14.9,
            }
        }

        fn num_actions(&self) -> usize {
            4
        }

        fn observation_shape(&self) -> Vec<usize> {
            vec![4]
        }
    }

    fn aligned_policy(seed: u64) -> Sequential {
        // Train-free construction: search seeds until the fresh policy
        // already prefers action 0 on the fixed observation, so the
        // error-free success rate is 1.0.  The probe loop reuses one
        // inference scratch instead of the allocating `infer` wrapper.
        let mut scratch = berry_nn::network::InferScratch::new();
        let obs = Tensor::from_vec(vec![1, 4], vec![0.4, -0.2, 0.7, -0.5]).unwrap();
        let mut seed = seed;
        loop {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let net = QNetworkSpec::mlp(vec![16]).build(&[4], 4, &mut rng).unwrap();
            if net.infer_into(&obs, &mut scratch).argmax() == Some(0) {
                return net;
            }
            seed += 1;
        }
    }

    #[test]
    fn config_validation() {
        assert!(FaultEvaluationConfig::default().validate().is_ok());
        assert!(FaultEvaluationConfig {
            fault_maps: 0,
            ..FaultEvaluationConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultEvaluationConfig {
            quant_bits: 12,
            ..FaultEvaluationConfig::default()
        }
        .validate()
        .is_err());
        assert_eq!(FaultEvaluationConfig::paper_scale().fault_maps, 500);
    }

    #[test]
    fn error_free_evaluation_of_aligned_policy_succeeds() {
        let policy = aligned_policy(0);
        let env = ArgmaxEnv;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let stats = evaluate_error_free(
            &policy,
            &env,
            &FaultEvaluationConfig::smoke_test(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(stats.success_rate, 1.0);
        assert_eq!(stats.episodes, 6);
    }

    #[test]
    fn success_rate_degrades_with_bit_error_rate() {
        let policy = aligned_policy(10);
        let env = ArgmaxEnv;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = FaultEvaluationConfig {
            fault_maps: 30,
            episodes_per_map: 1,
            max_steps: 5,
            ..FaultEvaluationConfig::default()
        };
        let chip = ChipProfile::generic();
        let low = evaluate_under_faults(&policy, &env, &chip, 1e-4, &cfg, &mut rng).unwrap();
        let high = evaluate_under_faults(&policy, &env, &chip, 0.08, &cfg, &mut rng).unwrap();
        assert!(
            low.success_rate >= high.success_rate,
            "low-BER {} vs high-BER {}",
            low.success_rate,
            high.success_rate
        );
        assert!(high.success_rate < 1.0);
        assert_eq!(low.episodes, 30);
    }

    #[test]
    fn evaluate_at_voltage_uses_the_chip_curve() {
        let policy = aligned_policy(20);
        let env = ArgmaxEnv;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = FaultEvaluationConfig::smoke_test();
        let chip = ChipProfile::generic();
        // At Vmin there are no bit errors, so this equals error-free deployment.
        let stats = evaluate_at_voltage(&policy, &env, &chip, 1.0, &cfg, &mut rng).unwrap();
        assert_eq!(stats.success_rate, 1.0);
        assert!(evaluate_at_voltage(&policy, &env, &chip, 3.0, &cfg, &mut rng).is_err());
    }

    #[test]
    fn mission_evaluation_produces_consistent_report() {
        let policy = aligned_policy(30);
        let env = ArgmaxEnv;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let context = MissionContext::crazyflie_c3f2();
        let cfg = FaultEvaluationConfig::smoke_test();
        let mission =
            evaluate_mission(&policy, &env, &context, 0.80, &cfg, &mut rng).unwrap();
        assert_eq!(mission.voltage_norm, 0.80);
        assert!(mission.ber > 0.0);
        assert!(mission.processing.savings_vs_nominal > 1.0);
        assert!(mission.quality_of_flight.flight_energy_j > 0.0);
        assert!(mission.quality_of_flight.num_missions > 0.0);
        // Success rate flows through unchanged.
        assert!(
            (mission.quality_of_flight.success_rate - mission.navigation.success_rate).abs()
                < 1e-12
        );
    }

    #[test]
    fn mission_context_policy_ratios() {
        assert!((MissionContext::crazyflie_c3f2().policy_mac_ratio() - 1.0).abs() < 1e-12);
        assert!(MissionContext::tello_c5f4().policy_mac_ratio() > 1.0);
        assert_eq!(
            MissionContext::tello_c3f2().platform.name(),
            "DJI Tello"
        );
    }
}
