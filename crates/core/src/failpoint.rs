//! Deterministic fault injection — named failpoint sites for chaos testing
//! the store → campaign → serve → client pipeline.
//!
//! BERRY is a paper about policies that keep working when the hardware
//! under them misbehaves; this module gives the *serving stack* the same
//! treatment.  A **failpoint** is a named site threaded through an I/O or
//! control path (`store.persist`, `serve.write_row`, `rows.write`, …)
//! that production code consults before acting.  Unarmed — or in a build
//! without the `failpoints` feature — a site is an inlined no-op, so the
//! hot paths, golden pins and benchmarks are untouched.  Armed, it fires
//! a deterministic [`Action`] on a schedule, letting tests and the CI
//! chaos-smoke job inject persist failures, torn writes, delays and
//! mid-stream disconnects *on purpose* and assert the system degrades
//! and recovers exactly as designed.
//!
//! # Arming syntax
//!
//! Sites are armed programmatically with [`arm`] or from the
//! `BERRY_FAILPOINTS` environment variable via [`arm_from_env`]:
//!
//! ```text
//! BERRY_FAILPOINTS="store.persist=every(2)*return;serve.write_row=every(3)*times(1)*disconnect"
//! ```
//!
//! Each entry is `site=spec`, `;`-separated.  A spec is zero or more
//! trigger modifiers followed by one action:
//!
//! | action            | meaning at the site                                   |
//! |-------------------|-------------------------------------------------------|
//! | `return`          | fail with an injected error                           |
//! | `return(msg)`     | fail with the given message                           |
//! | `torn(K)`         | truncate the write to its first `K` bytes             |
//! | `delay(MS)`       | sleep `MS` milliseconds, then proceed normally        |
//! | `disconnect`      | sever the connection (socket sites)                   |
//! | `panic`           | panic at the site (exercises panic isolation)         |
//! | `off`             | disarm (same as [`disarm`])                           |
//!
//! | modifier          | fires when…                                           |
//! |-------------------|-------------------------------------------------------|
//! | `every(N)*`       | the hit count is a multiple of `N` (1-indexed)        |
//! | `times(M)*`       | …and the site has fired fewer than `M` times          |
//! | `prob(P,SEED)*`   | …and a SplitMix64 draw keyed by `(SEED, hit)` is < P  |
//!
//! Every trigger is a pure function of the site's hit counter (and, for
//! `prob`, an explicit seed), so a chaos run is **reproducible**: the same
//! arming string against the same workload fires at the same hits.
//!
//! # Build gating
//!
//! The registry is only compiled with the `failpoints` cargo feature
//! (`cargo test --features failpoints`, `cargo build --features
//! failpoints -p berry-bench`).  Without it, [`hit`] is a const `None`
//! that the optimizer deletes, and [`arm`] returns an error — arming a
//! no-op build is loud, not silent: [`arm_from_env`] warns on stderr if
//! `BERRY_FAILPOINTS` is set in a build that cannot honor it.

use std::time::Duration;

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Fail the operation with an injected error carrying this message.
    ReturnError(String),
    /// Truncate the write to its first `n` bytes (a torn on-disk record,
    /// as a crash mid-write would leave).
    TornWrite(usize),
    /// Sleep for this long, then proceed normally.
    Delay(Duration),
    /// Sever the connection (socket write/read sites).
    Disconnect,
    /// Panic at the site (exercises `catch_unwind` isolation).
    Panic,
}

/// Extracts a human-readable message from a captured panic payload.
///
/// Lives here (compiled regardless of the feature) because every consumer
/// of panic isolation — the store's training guard, the server's
/// per-connection guard — needs the same downcast dance.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Consults the site and maps a fired `ReturnError`/`Disconnect` to an
/// `std::io::Error` (applying `Delay` inline) — the one-line form for
/// plain I/O sites like `rows.write`.
///
/// # Errors
///
/// Returns the injected error when the site fires a failing action.
pub fn io_check(site: &str) -> std::io::Result<()> {
    match hit(site) {
        None => Ok(()),
        Some(Action::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Action::ReturnError(msg)) => Err(std::io::Error::other(msg)),
        Some(Action::Disconnect) => Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            format!("failpoint `{site}`: injected disconnect"),
        )),
        Some(Action::TornWrite(_)) => Err(std::io::Error::other(format!(
            "failpoint `{site}`: torn write not supported at this site"
        ))),
        // lint: allow(panic-in-lib) why: the Panic action's documented contract is to abort — callers isolate with catch_unwind
        Some(Action::Panic) => panic!("failpoint `{site}`: injected panic"),
    }
}

/// Consults the site and panics if it fires `panic` (other actions are
/// ignored) — for sites that only exercise panic isolation.
pub fn maybe_panic(site: &str) {
    if let Some(Action::Panic) = hit(site) {
        // lint: allow(panic-in-lib) why: maybe_panic exists to inject a panic — callers isolate with catch_unwind
        panic!("failpoint `{site}`: injected panic");
    }
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Duration;

    /// One armed site: its parsed spec plus deterministic counters.
    struct SiteState {
        every: u64,
        times: Option<u64>,
        prob: Option<(f64, u64)>,
        action: Action,
        hits: u64,
        fired: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn parse_paren_arg<'a>(token: &'a str, name: &str) -> Option<&'a str> {
        token
            .strip_prefix(name)?
            .strip_prefix('(')?
            .strip_suffix(')')
    }

    fn parse_action(token: &str) -> Result<Action, String> {
        match token {
            "return" => Ok(Action::ReturnError("injected error".to_string())),
            "disconnect" => Ok(Action::Disconnect),
            "panic" => Ok(Action::Panic),
            _ => {
                if let Some(msg) = parse_paren_arg(token, "return") {
                    return Ok(Action::ReturnError(msg.to_string()));
                }
                if let Some(arg) = parse_paren_arg(token, "torn") {
                    let n: usize = arg
                        .parse()
                        .map_err(|_| format!("torn(K) needs a byte count, got `{arg}`"))?;
                    return Ok(Action::TornWrite(n));
                }
                if let Some(arg) = parse_paren_arg(token, "delay") {
                    let ms: u64 = arg
                        .parse()
                        .map_err(|_| format!("delay(MS) needs milliseconds, got `{arg}`"))?;
                    return Ok(Action::Delay(Duration::from_millis(ms)));
                }
                Err(format!("unknown failpoint action `{token}`"))
            }
        }
    }

    fn parse_spec(spec: &str) -> Result<SiteState, String> {
        let mut state = SiteState {
            every: 1,
            times: None,
            prob: None,
            action: Action::Panic, // replaced below
            hits: 0,
            fired: 0,
        };
        let tokens: Vec<&str> = spec.split('*').map(str::trim).collect();
        let (action, modifiers) = tokens
            .split_last()
            .ok_or_else(|| "empty failpoint spec".to_string())?;
        for modifier in modifiers {
            if let Some(arg) = parse_paren_arg(modifier, "every") {
                let n: u64 = arg
                    .parse()
                    .map_err(|_| format!("every(N) needs an integer, got `{arg}`"))?;
                if n == 0 {
                    return Err("every(N) needs N >= 1".to_string());
                }
                state.every = n;
            } else if let Some(arg) = parse_paren_arg(modifier, "times") {
                let m: u64 = arg
                    .parse()
                    .map_err(|_| format!("times(M) needs an integer, got `{arg}`"))?;
                state.times = Some(m);
            } else if let Some(arg) = parse_paren_arg(modifier, "prob") {
                let (p, seed) = arg
                    .split_once(',')
                    .ok_or_else(|| format!("prob(P,SEED) needs two arguments, got `{arg}`"))?;
                let p: f64 = p
                    .trim()
                    .parse()
                    .map_err(|_| format!("prob needs a probability, got `{p}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("prob needs P in [0,1], got {p}"));
                }
                let seed: u64 = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("prob needs a u64 seed, got `{seed}`"))?;
                state.prob = Some((p, seed));
            } else {
                return Err(format!("unknown failpoint modifier `{modifier}`"));
            }
        }
        state.action = parse_action(action)?;
        Ok(state)
    }

    pub fn arm(site: &str, spec: &str) -> Result<(), String> {
        if site.is_empty() {
            return Err("failpoint site name is empty".to_string());
        }
        let mut map = registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if spec.trim() == "off" {
            map.remove(site);
            return Ok(());
        }
        let state = parse_spec(spec).map_err(|e| format!("failpoint `{site}`: {e}"))?;
        map.insert(site.to_string(), state);
        Ok(())
    }

    /// Disarms `site` (a no-op if it was not armed).
    pub fn disarm(site: &str) {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(site);
    }

    /// Disarms every site — test teardown between chaos scenarios.
    pub fn disarm_all() {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// The currently armed site names, **sorted** — the registry hashes
    /// its keys, so any emitted ordering must be imposed here rather
    /// than inherited from HashMap iteration order (house rule:
    /// `hashmap-iteration`).
    pub fn armed_sites() -> Vec<String> {
        let map = registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // lint: allow(hashmap-iteration) why: the only registry traversal; the collected keys are sorted on the next line before anything observes them
        let mut sites: Vec<String> = map.keys().cloned().collect();
        sites.sort();
        sites
    }

    pub fn hit(site: &str) -> Option<Action> {
        let mut map = registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let state = map.get_mut(site)?;
        state.hits += 1;
        if state.hits % state.every != 0 {
            return None;
        }
        if let Some(m) = state.times {
            if state.fired >= m {
                return None;
            }
        }
        if let Some((p, seed)) = state.prob {
            // SplitMix64 from the seed registry — the `prob` trigger's
            // deterministic per-hit draw.
            let draw = crate::seed::splitmix64(seed ^ state.hits) as f64 / u64::MAX as f64;
            if draw >= p {
                return None;
            }
        }
        state.fired += 1;
        Some(state.action.clone())
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{disarm, disarm_all};

/// Arms `site` with the given spec (see the module docs for the grammar).
///
/// # Errors
///
/// Returns a description of the malformed spec — or, in a build without
/// the `failpoints` feature, an error stating injection is compiled out.
#[cfg(feature = "failpoints")]
pub fn arm(site: &str, spec: &str) -> std::result::Result<(), String> {
    registry::arm(site, spec)
}

/// Consults `site`: increments its deterministic hit counter and returns
/// the armed [`Action`] when the trigger fires, `None` otherwise (always
/// `None` for unarmed sites and feature-off builds).
#[cfg(feature = "failpoints")]
#[must_use]
pub fn hit(site: &str) -> Option<Action> {
    registry::hit(site)
}

/// The currently armed site names in sorted (deterministic) order — for
/// status lines and chaos-test assertions.
#[cfg(feature = "failpoints")]
#[must_use]
pub fn armed_sites() -> Vec<String> {
    registry::armed_sites()
}

/// Feature-off stub: nothing can be armed, so nothing is listed.
#[cfg(not(feature = "failpoints"))]
#[must_use]
pub fn armed_sites() -> Vec<String> {
    Vec::new()
}

/// Arms every site listed in `BERRY_FAILPOINTS` (`site=spec;site=spec`).
/// Returns the number of armed sites.
///
/// # Errors
///
/// Returns the first malformed entry's description.
#[cfg(feature = "failpoints")]
pub fn arm_from_env() -> std::result::Result<usize, String> {
    let Ok(raw) = std::env::var("BERRY_FAILPOINTS") else {
        return Ok(0);
    };
    let mut armed = 0;
    for entry in raw.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, spec) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry `{entry}` is not `site=spec`"))?;
        arm(site.trim(), spec.trim())?;
        armed += 1;
    }
    Ok(armed)
}

/// Feature-off stub: arming always fails so misconfigured chaos runs are
/// loud instead of silently fault-free.
#[cfg(not(feature = "failpoints"))]
pub fn arm(_site: &str, _spec: &str) -> std::result::Result<(), String> {
    Err("berry-core was built without the `failpoints` feature".to_string())
}

/// Feature-off stub: no site ever fires; the optimizer deletes the call.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
#[must_use]
pub fn hit(_site: &str) -> Option<Action> {
    None
}

/// Feature-off stub: warns (once per call) if `BERRY_FAILPOINTS` is set in
/// a build that cannot honor it.
#[cfg(not(feature = "failpoints"))]
pub fn arm_from_env() -> std::result::Result<usize, String> {
    if std::env::var("BERRY_FAILPOINTS").is_ok_and(|v| !v.is_empty()) {
        eprintln!(
            "warning: BERRY_FAILPOINTS is set but this build has no `failpoints` \
             feature; no faults will be injected (rebuild with --features failpoints)"
        );
    }
    Ok(0)
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire() {
        assert_eq!(hit("fp-test.unarmed"), None);
        assert!(io_check("fp-test.unarmed").is_ok());
    }

    #[test]
    fn armed_sites_listing_is_sorted_regardless_of_arm_order() {
        // The registry is a HashMap; the listing must not leak its
        // iteration order. Site names are prefixed so this test stays
        // independent of others sharing the process-wide registry.
        let sites = ["fp-sort.zebra", "fp-sort.alpha", "fp-sort.mid"];
        for site in sites {
            arm(site, "every(1)*return(x)").unwrap();
        }
        let listed: Vec<String> = armed_sites()
            .into_iter()
            .filter(|s| s.starts_with("fp-sort."))
            .collect();
        assert_eq!(listed, ["fp-sort.alpha", "fp-sort.mid", "fp-sort.zebra"]);
        // Re-arm in the opposite order: identical listing.
        for site in sites {
            disarm(site);
        }
        for site in sites.iter().rev() {
            arm(site, "every(1)*return(x)").unwrap();
        }
        let relisted: Vec<String> = armed_sites()
            .into_iter()
            .filter(|s| s.starts_with("fp-sort."))
            .collect();
        assert_eq!(relisted, listed);
        for site in sites {
            disarm(site);
        }
    }

    #[test]
    fn every_n_fires_on_multiples_only() {
        arm("fp-test.every", "every(3)*return(boom)").unwrap();
        let fired: Vec<bool> = (1..=9).map(|_| hit("fp-test.every").is_some()).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        disarm("fp-test.every");
    }

    #[test]
    fn times_caps_total_fires() {
        arm("fp-test.times", "every(2)*times(1)*disconnect").unwrap();
        let fired: Vec<bool> = (1..=8).map(|_| hit("fp-test.times").is_some()).collect();
        assert_eq!(fired.iter().filter(|f| **f).count(), 1);
        assert!(fired[1], "the single fire lands on the 2nd hit");
        disarm("fp-test.times");
    }

    #[test]
    fn prob_is_deterministic_given_a_seed() {
        let schedule = |seed: u64| -> Vec<bool> {
            let site = format!("fp-test.prob-{seed}");
            arm(&site, &format!("prob(0.5,{seed})*return")).unwrap();
            let fired = (0..64).map(|_| hit(&site).is_some()).collect();
            disarm(&site);
            fired
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "different seed, different schedule");
        let fires = schedule(7).iter().filter(|f| **f).count();
        assert!((8..=56).contains(&fires), "p=0.5 fires roughly half: {fires}");
    }

    #[test]
    fn actions_parse_and_rearm_replaces() {
        arm("fp-test.actions", "torn(12)").unwrap();
        assert_eq!(hit("fp-test.actions"), Some(Action::TornWrite(12)));
        arm("fp-test.actions", "delay(5)").unwrap();
        assert_eq!(
            hit("fp-test.actions"),
            Some(Action::Delay(std::time::Duration::from_millis(5)))
        );
        arm("fp-test.actions", "return(custom message)").unwrap();
        assert_eq!(
            hit("fp-test.actions"),
            Some(Action::ReturnError("custom message".to_string()))
        );
        arm("fp-test.actions", "off").unwrap();
        assert_eq!(hit("fp-test.actions"), None);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "explode",
            "every(0)*return",
            "every(x)*return",
            "times(-1)*return",
            "prob(2.0,1)*return",
            "prob(0.5)*return",
            "torn(many)",
            "delay(soon)",
            "unknown(3)*return",
        ] {
            assert!(arm("fp-test.bad", bad).is_err(), "`{bad}` must be rejected");
        }
        assert_eq!(hit("fp-test.bad"), None, "a rejected spec must not arm");
    }

    #[test]
    fn io_check_maps_actions_to_io_errors() {
        arm("fp-test.io", "return(disk on fire)").unwrap();
        let err = io_check("fp-test.io").unwrap_err();
        assert!(err.to_string().contains("disk on fire"));
        arm("fp-test.io", "disconnect").unwrap();
        let err = io_check("fp-test.io").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        disarm("fp-test.io");
        assert!(io_check("fp-test.io").is_ok());
    }

    #[test]
    fn panic_payloads_render_messages() {
        let p = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(&*p), "static str");
        let p = std::panic::catch_unwind(|| panic!("{}", String::from("owned"))).unwrap_err();
        assert_eq!(panic_message(&*p), "owned");
    }
}
