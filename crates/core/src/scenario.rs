//! The 72-scenario evaluation grid of the paper's Section V.
//!
//! "We evaluate BERRY on 72 UAV deployment scenarios and show that BERRY
//! generalizes across UAVs, environments, voltages, and bit error patterns."
//! The grid enumerated here spans: 3 obstacle densities × 2 UAV platforms ×
//! 2 policy architectures × 2 learning modes × 3 chip fault profiles = 72
//! deployment scenarios.

use berry_faults::chip::ChipProfile;
use berry_rl::policy::QNetworkSpec;
use berry_uav::platform::UavPlatform;
use berry_uav::world::ObstacleDensity;
use serde::{Deserialize, Serialize};

/// Which learning paradigm a scenario uses (offline vs on-device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioMode {
    /// Offline error-aware learning with random fault maps.
    Offline,
    /// On-device error-aware learning against the deployed chip's faults.
    OnDevice,
}

impl ScenarioMode {
    /// Both modes.
    pub fn all() -> [ScenarioMode; 2] {
        [ScenarioMode::Offline, ScenarioMode::OnDevice]
    }

    /// Short label used in scenario identifiers.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioMode::Offline => "offline",
            ScenarioMode::OnDevice => "ondevice",
        }
    }
}

/// One deployment scenario of the 72-scenario grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Obstacle density of the navigation environment.
    pub density: ObstacleDensity,
    /// Name of the UAV platform.
    pub platform: String,
    /// Name of the policy architecture.
    pub policy: String,
    /// Learning mode.
    pub mode: ScenarioMode,
    /// Name of the chip fault profile.
    pub chip: String,
}

impl Scenario {
    /// A unique, filesystem-friendly identifier for the scenario.
    pub fn id(&self) -> String {
        format!(
            "{}_{}_{}_{}_{}",
            self.density.label(),
            self.platform.to_lowercase().replace([' ', '.'], "-"),
            self.policy.to_lowercase(),
            self.mode.label(),
            self.chip
        )
    }

    /// The full 72-scenario grid.
    pub fn grid() -> Vec<Scenario> {
        let mut scenarios = Vec::with_capacity(72);
        for density in ObstacleDensity::all() {
            for platform in UavPlatform::all_builtin() {
                for policy in [QNetworkSpec::C3F2, QNetworkSpec::C5F4] {
                    for mode in ScenarioMode::all() {
                        for chip in ChipProfile::all_builtin() {
                            scenarios.push(Scenario {
                                density,
                                platform: platform.name().to_string(),
                                policy: policy.name().to_string(),
                                mode,
                                chip: chip.name().to_string(),
                            });
                        }
                    }
                }
            }
        }
        scenarios
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} obstacles / {} / {} / {} learning / {}",
            self.density, self.platform, self.policy, self.mode.label(), self.chip
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_has_exactly_72_scenarios() {
        let grid = Scenario::grid();
        assert_eq!(grid.len(), 72);
    }

    #[test]
    fn scenario_ids_are_unique() {
        let grid = Scenario::grid();
        let ids: HashSet<String> = grid.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), grid.len());
    }

    #[test]
    fn grid_covers_every_axis_value() {
        let grid = Scenario::grid();
        for density in ObstacleDensity::all() {
            assert!(grid.iter().any(|s| s.density == density));
        }
        for mode in ScenarioMode::all() {
            assert!(grid.iter().any(|s| s.mode == mode));
        }
        assert!(grid.iter().any(|s| s.platform.contains("Crazyflie")));
        assert!(grid.iter().any(|s| s.platform.contains("Tello")));
        assert!(grid.iter().any(|s| s.policy == "C3F2"));
        assert!(grid.iter().any(|s| s.policy == "C5F4"));
        assert!(grid.iter().any(|s| s.chip.contains("column-aligned")));
    }

    #[test]
    fn display_and_labels_are_informative() {
        let s = &Scenario::grid()[0];
        let text = s.to_string();
        assert!(text.contains("obstacles"));
        assert!(!s.id().contains(' '));
        assert_eq!(ScenarioMode::Offline.label(), "offline");
        assert_eq!(ScenarioMode::OnDevice.label(), "ondevice");
    }
}
