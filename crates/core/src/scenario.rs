//! The 72-scenario evaluation grid of the paper's Section V, plus the
//! extended disturbance grid the campaign engine executes.
//!
//! "We evaluate BERRY on 72 UAV deployment scenarios and show that BERRY
//! generalizes across UAVs, environments, voltages, and bit error patterns."
//! The grid enumerated here spans: 3 obstacle densities × 2 UAV platforms ×
//! 2 policy architectures × 2 learning modes × 3 chip fault profiles = 72
//! deployment scenarios.  [`Scenario::extended_grid`] multiplies that by the
//! 3 environmental disturbance variants of [`berry_uav::world::WorldVariant`]
//! (calm / wind-gust / sensor-dropout) for 216 cells, and
//! [`Scenario::smoke_grid`] picks a 4-cell micro-grid that covers every axis
//! kind so CI can execute the whole campaign pipeline in seconds.

use crate::error::CoreError;
use crate::experiment::ExperimentScale;
use crate::Result;
use berry_faults::chip::ChipProfile;
use berry_hw::workload::NetworkWorkload;
use berry_rl::policy::QNetworkSpec;
use berry_uav::platform::UavPlatform;
use berry_uav::world::{ObstacleDensity, WorldVariant};
use serde::{Deserialize, Serialize};

/// Lowest deployment voltage (in Vmin units) any runner evaluates at.
///
/// The Table II BER curve is tabulated down to ≈ 0.62 Vmin; asking the
/// model for the voltage that produces a very high bit-error rate can land
/// below its supported range, so every "voltage matching this BER" lookup
/// clamps to this floor.  It is deliberately defined **once**, next to
/// [`Scenario::deploy_voltage_norm`], and imported by the campaign engine's
/// operating-point resolution — the scenario grid and the evaluation axes
/// cannot drift apart on what "as low as the model goes" means.
pub const DEPLOY_VOLTAGE_FLOOR_NORM: f64 = 0.62;

/// Which learning paradigm a scenario uses (offline vs on-device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioMode {
    /// Offline error-aware learning with random fault maps.
    Offline,
    /// On-device error-aware learning against the deployed chip's faults.
    OnDevice,
}

impl ScenarioMode {
    /// Both modes.
    pub fn all() -> [ScenarioMode; 2] {
        [ScenarioMode::Offline, ScenarioMode::OnDevice]
    }

    /// Short label used in scenario identifiers.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioMode::Offline => "offline",
            ScenarioMode::OnDevice => "ondevice",
        }
    }
}

/// One deployment scenario of the evaluation grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Obstacle density of the navigation environment.
    pub density: ObstacleDensity,
    /// Name of the UAV platform.
    pub platform: String,
    /// Name of the policy architecture.
    pub policy: String,
    /// Learning mode.
    pub mode: ScenarioMode,
    /// Name of the chip fault profile.
    pub chip: String,
    /// Environmental disturbance variant ([`WorldVariant::Calm`] for every
    /// cell of the paper's original 72-scenario grid).
    pub variant: WorldVariant,
}

impl Scenario {
    /// A unique, filesystem-friendly identifier for the scenario.
    pub fn id(&self) -> String {
        format!(
            "{}_{}_{}_{}_{}_{}",
            self.density.label(),
            self.platform.to_lowercase().replace([' ', '.'], "-"),
            self.policy.to_lowercase(),
            self.mode.label(),
            self.chip,
            self.variant.label()
        )
    }

    /// The paper's full 72-scenario grid (all cells calm).
    pub fn grid() -> Vec<Scenario> {
        Self::grid_with_variants(&[WorldVariant::Calm])
    }

    /// The extended grid: the 72 paper cells crossed with every disturbance
    /// variant (216 cells with the default calm / wind-gust /
    /// sensor-dropout set).
    pub fn extended_grid() -> Vec<Scenario> {
        Self::grid_with_variants(&WorldVariant::all_default())
    }

    /// The grid crossed with an explicit set of disturbance variants.
    pub fn grid_with_variants(variants: &[WorldVariant]) -> Vec<Scenario> {
        let mut scenarios = Vec::with_capacity(72 * variants.len());
        for &variant in variants {
            for density in ObstacleDensity::all() {
                for platform in UavPlatform::all_builtin() {
                    for policy in [QNetworkSpec::C3F2, QNetworkSpec::C5F4] {
                        for mode in ScenarioMode::all() {
                            for chip in ChipProfile::all_builtin() {
                                scenarios.push(Scenario {
                                    density,
                                    platform: platform.name().to_string(),
                                    policy: policy.name().to_string(),
                                    mode,
                                    chip: chip.name().to_string(),
                                    variant,
                                });
                            }
                        }
                    }
                }
            }
        }
        scenarios
    }

    /// A 4-cell micro-grid covering every axis value except the dense
    /// obstacle level (both platforms, both policies, both modes, all
    /// three chips, all three variants, sparse + medium densities) —
    /// small enough that the full campaign pipeline, training included,
    /// finishes in seconds at [`ExperimentScale::Smoke`].
    pub fn smoke_grid() -> Vec<Scenario> {
        let mk = |density: ObstacleDensity,
                  platform: UavPlatform,
                  policy: QNetworkSpec,
                  mode: ScenarioMode,
                  chip: ChipProfile,
                  variant: WorldVariant| Scenario {
            density,
            platform: platform.name().to_string(),
            policy: policy.name().to_string(),
            mode,
            chip: chip.name().to_string(),
            variant,
        };
        vec![
            mk(
                ObstacleDensity::Sparse,
                UavPlatform::crazyflie(),
                QNetworkSpec::C3F2,
                ScenarioMode::Offline,
                ChipProfile::generic(),
                WorldVariant::Calm,
            ),
            mk(
                ObstacleDensity::Medium,
                UavPlatform::dji_tello(),
                QNetworkSpec::C5F4,
                ScenarioMode::Offline,
                ChipProfile::chip2_column_aligned(),
                WorldVariant::wind_gust_default(),
            ),
            mk(
                ObstacleDensity::Sparse,
                UavPlatform::crazyflie(),
                QNetworkSpec::C3F2,
                ScenarioMode::OnDevice,
                ChipProfile::chip1_random(),
                WorldVariant::sensor_dropout_default(),
            ),
            mk(
                ObstacleDensity::Medium,
                UavPlatform::dji_tello(),
                QNetworkSpec::C5F4,
                ScenarioMode::OnDevice,
                ChipProfile::generic(),
                WorldVariant::Calm,
            ),
        ]
    }

    /// Resolves the scenario's chip name to its built-in
    /// [`ChipProfile`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for chip names outside the
    /// built-in set.
    pub fn chip_profile(&self) -> Result<ChipProfile> {
        ChipProfile::all_builtin()
            .into_iter()
            .find(|c| c.name() == self.chip)
            .ok_or_else(|| {
                CoreError::InvalidConfig(format!("unknown chip profile `{}`", self.chip))
            })
    }

    /// Resolves the scenario's platform name to its built-in
    /// [`UavPlatform`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for platform names outside the
    /// built-in set.
    pub fn uav_platform(&self) -> Result<UavPlatform> {
        UavPlatform::all_builtin()
            .into_iter()
            .find(|p| p.name() == self.platform)
            .ok_or_else(|| {
                CoreError::InvalidConfig(format!("unknown UAV platform `{}`", self.platform))
            })
    }

    /// The hardware workload whose energy the accelerator model charges for
    /// this scenario's policy (always the published C3F2/C5F4 footprint,
    /// even when [`Scenario::policy_spec`] substitutes a small MLP at smoke
    /// scale — the energy model costs the *deployed* architecture).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for unknown policy names.
    pub fn workload(&self) -> Result<NetworkWorkload> {
        NetworkWorkload::by_name(&self.policy).map_err(CoreError::from)
    }

    /// The trainable Q-network architecture for this scenario at a given
    /// experiment scale.  [`ExperimentScale::Smoke`] substitutes per-policy
    /// MLPs (distinct widths, so the architecture axis still varies) to
    /// keep CI campaigns under seconds; the other scales train the real
    /// convolutional policies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for unknown policy names.
    pub fn policy_spec(&self, scale: ExperimentScale) -> Result<QNetworkSpec> {
        match self.policy.to_ascii_uppercase().as_str() {
            "C3F2" => Ok(match scale {
                ExperimentScale::Smoke => QNetworkSpec::mlp(vec![32]),
                _ => QNetworkSpec::C3F2,
            }),
            "C5F4" => Ok(match scale {
                ExperimentScale::Smoke => QNetworkSpec::mlp(vec![48]),
                _ => QNetworkSpec::C5F4,
            }),
            other => Err(CoreError::InvalidConfig(format!(
                "unknown policy architecture `{other}`"
            ))),
        }
    }

    /// The deployment (and on-device learning) voltage of this scenario, in
    /// Vmin units.  Denser environments need more robustness headroom, so
    /// they deploy at a slightly higher voltage — the same operating points
    /// the Fig. 5 study uses.
    pub fn deploy_voltage_norm(&self) -> f64 {
        match self.density {
            ObstacleDensity::Sparse => 0.76,
            ObstacleDensity::Medium => 0.77,
            ObstacleDensity::Dense => 0.80,
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} obstacles / {} / {} / {} learning / {} / {}",
            self.density,
            self.platform,
            self.policy,
            self.mode.label(),
            self.chip,
            self.variant.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_has_exactly_72_scenarios() {
        let grid = Scenario::grid();
        assert_eq!(grid.len(), 72);
        assert!(grid.iter().all(|s| s.variant == WorldVariant::Calm));
    }

    #[test]
    fn extended_grid_crosses_every_variant() {
        let grid = Scenario::extended_grid();
        assert_eq!(grid.len(), 216);
        for variant in WorldVariant::all_default() {
            assert_eq!(
                grid.iter().filter(|s| s.variant.label() == variant.label()).count(),
                72
            );
        }
        let ids: HashSet<String> = grid.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), grid.len());
    }

    #[test]
    fn scenario_ids_are_unique() {
        let grid = Scenario::grid();
        let ids: HashSet<String> = grid.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), grid.len());
    }

    #[test]
    fn grid_covers_every_axis_value() {
        let grid = Scenario::grid();
        for density in ObstacleDensity::all() {
            assert!(grid.iter().any(|s| s.density == density));
        }
        for mode in ScenarioMode::all() {
            assert!(grid.iter().any(|s| s.mode == mode));
        }
        assert!(grid.iter().any(|s| s.platform.contains("Crazyflie")));
        assert!(grid.iter().any(|s| s.platform.contains("Tello")));
        assert!(grid.iter().any(|s| s.policy == "C3F2"));
        assert!(grid.iter().any(|s| s.policy == "C5F4"));
        assert!(grid.iter().any(|s| s.chip.contains("column-aligned")));
    }

    #[test]
    fn smoke_grid_covers_axis_kinds_with_unique_ids() {
        let grid = Scenario::smoke_grid();
        assert_eq!(grid.len(), 4);
        let ids: HashSet<String> = grid.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), 4);
        assert!(grid.iter().any(|s| s.mode == ScenarioMode::Offline));
        assert!(grid.iter().any(|s| s.mode == ScenarioMode::OnDevice));
        assert!(grid.iter().any(|s| s.policy == "C3F2"));
        assert!(grid.iter().any(|s| s.policy == "C5F4"));
        assert!(grid
            .iter()
            .any(|s| s.variant.label() == "wind-gust"));
        assert!(grid
            .iter()
            .any(|s| s.variant.label() == "sensor-dropout"));
        // Every smoke cell resolves its names to real models.
        for s in &grid {
            assert!(s.chip_profile().is_ok(), "{}", s.id());
            assert!(s.uav_platform().is_ok(), "{}", s.id());
            assert!(s.workload().is_ok(), "{}", s.id());
            assert!(s.policy_spec(ExperimentScale::Smoke).is_ok());
        }
    }

    #[test]
    fn resolution_helpers_reject_unknown_names() {
        let mut s = Scenario::grid()[0].clone();
        s.chip = "no-such-chip".into();
        assert!(s.chip_profile().is_err());
        let mut s = Scenario::grid()[0].clone();
        s.platform = "no-such-uav".into();
        assert!(s.uav_platform().is_err());
        let mut s = Scenario::grid()[0].clone();
        s.policy = "MLP".into();
        assert!(s.workload().is_err());
        assert!(s.policy_spec(ExperimentScale::Smoke).is_err());
    }

    #[test]
    fn policy_spec_downgrades_only_at_smoke_scale() {
        let s = &Scenario::grid()[0];
        assert_eq!(
            s.policy_spec(ExperimentScale::Smoke).unwrap().name(),
            "MLP"
        );
        assert_eq!(
            s.policy_spec(ExperimentScale::Quick).unwrap().name(),
            s.policy
        );
        // The two architectures stay distinct even as smoke MLPs.
        let c3 = Scenario {
            policy: "C3F2".into(),
            ..s.clone()
        };
        let c5 = Scenario {
            policy: "C5F4".into(),
            ..s.clone()
        };
        assert_ne!(
            c3.policy_spec(ExperimentScale::Smoke).unwrap(),
            c5.policy_spec(ExperimentScale::Smoke).unwrap()
        );
    }

    #[test]
    fn deploy_voltages_sit_above_the_shared_floor() {
        for density in ObstacleDensity::all() {
            let v = Scenario {
                density,
                ..Scenario::grid()[0].clone()
            }
            .deploy_voltage_norm();
            assert!(v >= DEPLOY_VOLTAGE_FLOOR_NORM);
        }
        // The floor itself must be a voltage the BER model can answer for.
        assert!(ChipProfile::generic()
            .ber_at_voltage(DEPLOY_VOLTAGE_FLOOR_NORM)
            .is_ok());
    }

    #[test]
    fn deploy_voltage_rises_with_density() {
        let v = |d| Scenario {
            density: d,
            ..Scenario::grid()[0].clone()
        }
        .deploy_voltage_norm();
        assert!(v(ObstacleDensity::Sparse) < v(ObstacleDensity::Medium));
        assert!(v(ObstacleDensity::Medium) < v(ObstacleDensity::Dense));
    }

    #[test]
    fn display_and_labels_are_informative() {
        let s = &Scenario::grid()[0];
        let text = s.to_string();
        assert!(text.contains("obstacles"));
        assert!(!s.id().contains(' '));
        assert!(s.id().ends_with("calm"));
        assert_eq!(ScenarioMode::Offline.label(), "offline");
        assert_eq!(ScenarioMode::OnDevice.label(), "ondevice");
    }
}
