//! A small Rust lexer — just enough token structure for the house lints.
//!
//! The lexer understands exactly the parts of Rust's lexical grammar that
//! would otherwise produce false positives in a grep-style checker:
//!
//! * line comments (`//`), doc comments and **nested** block comments,
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   with arbitrary `#` fencing,
//! * char literals vs lifetimes (`'a'` is a char, `<'a>` is a lifetime,
//!   `'\''` is a char with an escape),
//! * numeric literals (kept verbatim so mixing constants can be matched
//!   structurally instead of textually).
//!
//! Comments are collected separately from the code token stream: lints
//! match patterns over code tokens only, while the comment list carries
//! the `// lint: …` marker grammar (file markers and inline allows).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `spawn`, `HashMap`, …).
    Ident,
    /// A numeric literal, text kept verbatim (`0x9E37_79B9_7F4A_7C15`).
    Number,
    /// Any string literal flavor; `text` holds the *contents* (unquoted).
    Str,
    /// A char or byte-char literal (`'x'`, `b'{'`).
    Char,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A single punctuation character (`.`:`(`:`{`:`#`, …).
    Punct,
}

/// One code token with its source position (1-indexed line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Token text (contents for strings, verbatim otherwise).
    pub text: String,
    /// 1-indexed source line.
    pub line: u32,
    /// 1-indexed source column of the token's first character.
    pub col: u32,
}

/// One comment (line or block) with the line it starts on.  `text` is the
/// comment body without the `//`/`/*` fencing, trimmed.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Trimmed comment body.
    pub text: String,
    /// 1-indexed line the comment starts on.
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into code tokens and comments.  Unknown bytes are
/// skipped (the lints only need a faithful token *stream*, not a full
/// grammar), so the lexer never fails.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            bytes: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/column.
    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, text, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' if self.raw_or_byte_string(line, col) => {}
                b'"' => self.string_literal(line, col),
                b'\'' => self.char_or_lifetime(line, col),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line, col),
                b'0'..=b'9' => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, (b as char).to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let body = raw.trim_start_matches('/').trim_start_matches('!').trim();
        self.out.comments.push(Comment { text: body.to_string(), line });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let body = raw
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        self.out.comments.push(Comment { text: body.to_string(), line });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` prefixes.
    /// Returns false (consuming nothing) if the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        let mut ahead = 1;
        let first = self.peek(0);
        // `br` / `rb` double prefix.
        if (first == Some(b'b') && self.peek(1) == Some(b'r'))
            || (first == Some(b'r') && self.peek(1) == Some(b'b'))
        {
            ahead = 2;
        }
        let raw = self.peek(0) == Some(b'r') || self.peek(1) == Some(b'r') && ahead == 2;
        // Count `#` fencing (raw strings only).
        let mut hashes = 0usize;
        if raw {
            while self.peek(ahead) == Some(b'#') {
                hashes += 1;
                ahead += 1;
            }
        }
        match self.peek(ahead) {
            Some(b'"') => {
                for _ in 0..=ahead {
                    self.bump();
                }
                let start = self.pos;
                if raw {
                    // Scan to `"` followed by `hashes` hashes; no escapes.
                    'outer: while self.peek(0).is_some() {
                        if self.peek(0) == Some(b'"') {
                            for h in 0..hashes {
                                if self.peek(1 + h) != Some(b'#') {
                                    self.bump();
                                    continue 'outer;
                                }
                            }
                            break;
                        }
                        self.bump();
                    }
                } else {
                    self.scan_quoted(b'"');
                }
                let content =
                    std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
                // Consume the closing quote + fencing.
                self.bump();
                for _ in 0..hashes {
                    self.bump();
                }
                self.push(TokenKind::Str, content, line, col);
                true
            }
            Some(b'\'') if first == Some(b'b') && ahead == 1 => {
                // Byte char literal `b'x'`.
                self.bump();
                self.char_or_lifetime(line, col);
                true
            }
            _ => false,
        }
    }

    /// Consumes the body of a quoted literal up to (not including) the
    /// closing `quote`, honoring backslash escapes.
    fn scan_quoted(&mut self, quote: u8) {
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump();
                self.bump();
            } else if b == quote {
                break;
            } else {
                self.bump();
            }
        }
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let start = self.pos;
        self.scan_quoted(b'"');
        let content = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.bump(); // closing quote
        self.push(TokenKind::Str, content, line, col);
    }

    /// `'` starts either a char literal or a lifetime.  The rule: `'x'` is
    /// a char (closing quote right after one char or escape); `'ident`
    /// with no closing quote is a lifetime.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // the `'`
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal.
                let start = self.pos;
                self.scan_quoted(b'\'');
                let content =
                    std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
                self.bump(); // closing quote
                self.push(TokenKind::Char, content, line, col);
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                // Could be 'a' (char) or 'a (lifetime): look for a closing
                // quote after the identifier-ish run.
                let mut ahead = 1;
                while self
                    .peek(ahead)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    ahead += 1;
                }
                if self.peek(ahead) == Some(b'\'') && ahead == 1 {
                    self.bump(); // the char
                    self.bump(); // closing quote
                    self.push(TokenKind::Char, (c as char).to_string(), line, col);
                } else {
                    let start = self.pos;
                    for _ in 0..ahead {
                        self.bump();
                    }
                    let name =
                        std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
                    self.push(TokenKind::Lifetime, name, line, col);
                }
            }
            Some(c) => {
                // Non-identifier char literal like '{' or '0'-digit start.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, (c as char).to_string(), line, col);
            }
            None => {}
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // Numeric literal body: digits, hex/oct/bin prefixes, underscores,
        // a fractional part, exponents and type suffixes all fall in the
        // alphanumeric + `_` + `.` class.  A `.` is only part of the
        // number when followed by a digit (so `x.len()` never glues).
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
            {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.push(TokenKind::Number, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_separated_from_code() {
        let lexed = lex("let x = 1; // trailing panic!()\n/* block\nunsafe */ let y;");
        assert!(lexed.tokens.iter().all(|t| t.text != "panic" && t.text != "unsafe"));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lexed = lex("/* a /* b */ c */ unsafe");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "unsafe");
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let lexed = lex("let s = \"unsafe { panic!() }\"; let b = b\"spawn\";");
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Ident || t.text != "panic"));
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Ident || t.text != "spawn"));
        let strs: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
    }

    #[test]
    fn raw_strings_with_fencing() {
        let src = "let s = r##\"has \"# inside and unsafe\"##; spawn";
        let lexed = lex(src);
        let strs: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unsafe"));
        assert_eq!(lexed.tokens.last().unwrap().text, "spawn");
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let e = '\\''; let b = b'{'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 3, "{toks:?}");
    }

    #[test]
    fn numbers_keep_verbatim_text_and_do_not_eat_method_calls() {
        let toks = kinds("let a = 0x9E37_79B9_7F4A_7C15; let b = 1.5e3; x.len()");
        assert!(toks.contains(&(TokenKind::Number, "0x9E37_79B9_7F4A_7C15".to_string())));
        assert!(toks.contains(&(TokenKind::Number, "1.5e3".to_string())));
        assert!(toks.contains(&(TokenKind::Ident, "len".to_string())));
    }

    #[test]
    fn positions_are_one_indexed() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
