//! CLI entry point: `berry-lint [--root <dir>] [--deny-warnings] [--list]`.
//!
//! Exit codes: 0 clean (or findings without `--deny-warnings`), 1
//! findings under `--deny-warnings`, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny = true,
            "--list" => list = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for lint in berry_lint::LINTS {
            println!("{:22} {}", lint.name, lint.rule);
        }
        return ExitCode::SUCCESS;
    }

    // Default to the workspace root when invoked via `cargo run -p
    // berry-lint` from anywhere inside the workspace: walk up from the
    // current directory to the first dir holding a `crates/` folder.
    if root.as_os_str() == "." {
        if let Ok(cwd) = std::env::current_dir() {
            let mut dir = cwd.as_path();
            loop {
                if dir.join("crates").is_dir() {
                    root = dir.to_path_buf();
                    break;
                }
                match dir.parent() {
                    Some(parent) => dir = parent,
                    None => break,
                }
            }
        }
    }

    let report = match berry_lint::run(&root) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };

    for warning in &report.warnings {
        eprintln!("warning[lint-config]: {warning}");
    }
    for finding in &report.findings {
        println!("{}", finding.render());
    }
    let problems = report.findings.len() + report.warnings.len();
    if problems == 0 {
        eprintln!("berry-lint: {} files checked, 0 findings", report.files_checked);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "berry-lint: {} files checked, {} finding(s), {} config warning(s)",
            report.files_checked,
            report.findings.len(),
            report.warnings.len()
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn print_help() {
    println!(
        "berry-lint: workspace invariant checker for the BERRY reproduction

USAGE:
    berry-lint [--root <dir>] [--deny-warnings] [--list]

OPTIONS:
    --root <dir>       Workspace root (default: nearest ancestor with crates/)
    --deny-warnings    Exit nonzero when findings or config warnings remain (CI)
    --list             Print the registered lints and their rules
    -h, --help         This help

Audited exceptions live in lint.toml at the workspace root; every entry
requires a `# why:` justification. Line-level exceptions use
`// lint: allow(<name>) why: …` on, or directly above, the flagged line."
    );
}
