//! `berry-lint` — the workspace invariant checker.
//!
//! The BERRY reproduction's value rests on bit-exact determinism: golden
//! pinned evaluation stats, four disjoint seed families, byte-identical
//! resume artifacts. Those invariants used to live in convention and
//! after-the-fact golden tests; this crate makes them machine-checked.
//!
//! Deliberately dependency-free (the workspace is offline/vendored, so
//! no `syn`): a small hand-rolled lexer ([`lexer`]) feeds token-level
//! lints ([`lints`]), a driver ([`driver`]) walks the workspace and
//! applies the audited-exception allowlist ([`allowlist`]).

pub mod allowlist;
pub mod driver;
pub mod lexer;
pub mod lints;

pub use driver::{run, Report};
pub use lints::{Diagnostic, FileContext, FileKind, LINTS};
