//! The lint driver: walks the workspace sources, derives each file's
//! [`FileContext`], runs the lints, and applies suppression from
//! `lint.toml` plus inline `// lint: allow(…)` markers.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::allowlist;
use crate::lexer::lex;
use crate::lints::{check_lexed, parse_markers, Diagnostic, FileContext, FileKind, LINTS};

/// Outcome of a full workspace run.
pub struct Report {
    /// Findings that survived suppression, in path/line order.
    pub findings: Vec<Diagnostic>,
    /// Non-fatal issues with the run itself (unused allowlist entries,
    /// inline allows without `why:`, unknown lint names).
    pub warnings: Vec<String>,
    /// Number of files checked.
    pub files_checked: usize,
}

/// Runs the checker over a workspace root. Reads `lint.toml` at the root
/// if present (its absence just means no exceptions are granted).
pub fn run(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("lint.toml");
    let entries = if allow_path.is_file() {
        let text = fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        allowlist::parse(&text).map_err(|e| e.to_string())?
    } else {
        Vec::new()
    };

    let known: Vec<&str> = LINTS.iter().map(|l| l.name).collect();
    let mut warnings = Vec::new();
    for entry in &entries {
        if !known.contains(&entry.lint.as_str()) {
            warnings.push(format!(
                "lint.toml:{}: unknown lint name `{}` in [[allow]] entry",
                entry.line, entry.lint
            ));
        }
    }

    let mut files = collect_files(root)?;
    files.sort();

    let mut used: Vec<bool> = vec![false; entries.len()];
    let mut findings = Vec::new();
    let mut files_checked = 0usize;

    let mut cargo_cache: BTreeMap<PathBuf, CrateMeta> = BTreeMap::new();

    for file in &files {
        let rel = workspace_rel(root, file);
        let source = fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let meta = crate_meta_for(root, file, &mut cargo_cache);
        let ctx = FileContext {
            path: rel.clone(),
            crate_name: meta.name.clone(),
            kind: file_kind(&rel),
            has_failpoints_feature: meta.has_failpoints_feature,
        };
        let lexed = lex(&source);
        let markers = parse_markers(&lexed.comments);
        for (line, lint_name, has_why) in &markers.allows {
            if !known.contains(&lint_name.as_str()) {
                warnings.push(format!(
                    "{rel}:{line}: inline allow names unknown lint `{lint_name}`"
                ));
            }
            if !has_why {
                warnings.push(format!(
                    "{rel}:{line}: inline `// lint: allow({lint_name})` has no `why:` — every \
                     audited exception must say why it is sound"
                ));
            }
        }
        files_checked += 1;
        for diag in check_lexed(&lexed, &markers, &ctx) {
            // Inline allow: a marker on the same line as the finding, or
            // on the line directly above (the usual placement for a
            // justification comment).
            let inline = markers.allows.iter().any(|(line, name, _)| {
                (*line == diag.line || *line + 1 == diag.line) && *name == diag.lint
            });
            if inline {
                continue;
            }
            // Allowlist file: lint name + path prefix.
            let mut suppressed = false;
            for (idx, entry) in entries.iter().enumerate() {
                if entry.lint == diag.lint && rel.starts_with(entry.path.as_str()) {
                    used[idx] = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                findings.push(diag);
            }
        }
    }

    for (idx, entry) in entries.iter().enumerate() {
        if !used[idx] && known.contains(&entry.lint.as_str()) {
            warnings.push(format!(
                "lint.toml:{}: unused [[allow]] entry ({} at `{}`) — suppresses nothing; \
                 delete it so the exception list only shrinks",
                entry.line, entry.lint, entry.path
            ));
        }
    }

    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
    });
    Ok(Report { findings, warnings, files_checked })
}

/// Everything the lints need from a crate's `Cargo.toml`.
#[derive(Debug, Clone)]
struct CrateMeta {
    name: String,
    has_failpoints_feature: bool,
}

/// Walks up from `file` to the nearest `Cargo.toml`, parsing (and
/// caching) the package name and `failpoints` feature declaration.
fn crate_meta_for(
    root: &Path,
    file: &Path,
    cache: &mut BTreeMap<PathBuf, CrateMeta>,
) -> CrateMeta {
    let mut dir = file.parent();
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Some(meta) = cache.get(&manifest) {
                return meta.clone();
            }
            let meta = parse_cargo_toml(&manifest);
            cache.insert(manifest, meta.clone());
            return meta;
        }
        if d == root {
            break;
        }
        dir = d.parent();
    }
    CrateMeta { name: "unknown".to_string(), has_failpoints_feature: false }
}

/// Line-oriented extraction of `name = "…"` under `[package]` and a
/// `failpoints` key under `[features]`. Good enough for this workspace's
/// hand-written manifests; no toml dependency.
fn parse_cargo_toml(path: &Path) -> CrateMeta {
    let text = fs::read_to_string(path).unwrap_or_default();
    let mut section = String::new();
    let mut name = String::from("unknown");
    let mut has_failpoints = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') && line.ends_with(']') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section == "package" {
            if let Some(value) = line.strip_prefix("name") {
                if let Some(v) = value.trim().strip_prefix('=') {
                    let v = v.trim().trim_matches('"');
                    name = v.to_string();
                }
            }
        }
        if section == "features" {
            if let Some(rest) = line.strip_prefix("failpoints") {
                if rest.trim_start().starts_with('=') {
                    has_failpoints = true;
                }
            }
        }
    }
    CrateMeta { name, has_failpoints_feature: has_failpoints }
}

/// Library unless the file is a binary target (`src/bin/**` or a crate
/// `main.rs`).
fn file_kind(rel: &str) -> FileKind {
    if rel.contains("/src/bin/") || rel.ends_with("/main.rs") || rel == "src/main.rs" {
        FileKind::Binary
    } else {
        FileKind::Library
    }
}

/// The `.rs` files the checker covers: `crates/*/src/**`, the root
/// `src/**`, and `vendor/rayon/src/**`. Fixture corpora (anything under
/// a `fixtures/` directory) are deliberately excluded — they are
/// known-bad by design.
fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut out)?;
    }
    let rayon_src = root.join("vendor").join("rayon").join("src");
    if rayon_src.is_dir() {
        walk_rs(&rayon_src, &mut out)?;
    }
    Ok(out)
}

/// Recursively gathers `.rs` files, skipping `fixtures/` subtrees.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `/`-separated path relative to the workspace root.
fn workspace_rel(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_kind_classifies_binaries() {
        assert_eq!(file_kind("crates/bench/src/bin/ber_sweep.rs"), FileKind::Binary);
        assert_eq!(file_kind("crates/serve/src/main.rs"), FileKind::Binary);
        assert_eq!(file_kind("crates/core/src/lib.rs"), FileKind::Library);
        assert_eq!(file_kind("crates/core/src/store.rs"), FileKind::Library);
    }

    #[test]
    fn cargo_toml_parse_reads_name_and_feature() {
        let dir = std::env::temp_dir().join("berry-lint-test-manifest");
        fs::create_dir_all(&dir).expect("tempdir");
        let manifest = dir.join("Cargo.toml");
        fs::write(
            &manifest,
            "[package]\nname = \"demo-crate\"\n\n[features]\nfailpoints = [\"x/failpoints\"]\n",
        )
        .expect("write");
        let meta = parse_cargo_toml(&manifest);
        assert_eq!(meta.name, "demo-crate");
        assert!(meta.has_failpoints_feature);
        let bare = dir.join("Bare.toml");
        fs::write(&bare, "[package]\nname = \"bare\"\n").expect("write");
        let meta = parse_cargo_toml(&bare);
        assert!(!meta.has_failpoints_feature);
    }
}
