//! `lint.toml` — the audited-exception file.
//!
//! The format is a small, hand-parsed subset of TOML (the workspace is
//! offline, so no toml crate): a sequence of `[[allow]]` blocks, each
//! with `lint = "<name>"` and `path = "<workspace-relative prefix>"`
//! keys, and at least one `# why: …` comment line inside the block.
//!
//! ```toml
//! # why: the SIMD leaf is the one audited unsafe module (PR 9)
//! [[allow]]
//! lint = "unsafe-outside-simd"
//! path = "crates/nn/src/gemm/simd_avx2.rs"
//! ```
//!
//! `path` is a prefix match so one entry can cover a whole crate's
//! `src/` tree; entries without a `# why:` are hard errors (the CI guard
//! also greps for this, but the tool enforces it first), and entries
//! that suppress nothing produce an unused-allow warning so the file
//! can only shrink over time.

/// One `[[allow]]` entry from `lint.toml`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Lint name this entry suppresses.
    pub lint: String,
    /// Workspace-relative path prefix the suppression covers.
    pub path: String,
    /// `# why:` justification text (first line).
    pub why: String,
    /// 1-indexed line of the `[[allow]]` header (for diagnostics).
    pub line: u32,
}

/// Parse failure with the offending line number.
#[derive(Debug)]
pub struct ParseError {
    /// 1-indexed line in `lint.toml`.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// Parses the allowlist file. Justifications (`# why:` lines) may appear
/// immediately above the `[[allow]]` header or between its keys.
/// In-flight `[[allow]]` block: (lint, path, why, header line).
type PartialEntry = (Option<String>, Option<String>, Option<String>, u32);

pub fn parse(source: &str) -> Result<Vec<AllowEntry>, ParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut pending_why: Option<String> = None;
    let mut current: Option<PartialEntry> = None;

    let flush = |current: &mut Option<PartialEntry>,
                 entries: &mut Vec<AllowEntry>|
     -> Result<(), ParseError> {
        if let Some((lint, path, why, line)) = current.take() {
            let lint = lint.ok_or(ParseError {
                line,
                message: "[[allow]] entry is missing a `lint = \"…\"` key".to_string(),
            })?;
            let path = path.ok_or(ParseError {
                line,
                message: "[[allow]] entry is missing a `path = \"…\"` key".to_string(),
            })?;
            let why = why.ok_or(ParseError {
                line,
                message: format!(
                    "[[allow]] entry for `{lint}` at `{path}` has no `# why:` justification — \
                     every audited exception must say why it is sound"
                ),
            })?;
            entries.push(AllowEntry { lint, path, why, line });
        }
        Ok(())
    };

    for (idx, raw) in source.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(why) = rest.strip_prefix("why:") {
                let why = why.trim().to_string();
                match &mut current {
                    Some((_, _, slot @ None, _)) => *slot = Some(why),
                    // A complete, justified entry is behind us — this
                    // `# why:` sits above the NEXT [[allow]] header.
                    Some((Some(_), Some(_), Some(_), _)) => pending_why = Some(why),
                    Some(_) => {} // mid-entry extra context; ignore
                    None => pending_why = Some(why),
                }
            }
            continue;
        }
        if line == "[[allow]]" {
            flush(&mut current, &mut entries)?;
            current = Some((None, None, pending_why.take(), lineno));
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            let Some(slot) = current.as_mut() else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("key `{}` outside an [[allow]] block", key.trim()),
                });
            };
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or(ParseError {
                    line: lineno,
                    message: "values must be double-quoted strings".to_string(),
                })?
                .to_string();
            match key.trim() {
                "lint" => slot.0 = Some(value),
                "path" => slot.1 = Some(value),
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown key `{other}` (expected `lint` or `path`)"),
                    })
                }
            }
            continue;
        }
        return Err(ParseError {
            line: lineno,
            message: format!("unrecognized line: `{line}`"),
        });
    }
    flush(&mut current, &mut entries)?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_why_above_or_inside() {
        let src = "\
# why: audited SIMD leaf (PR 9)
[[allow]]
lint = \"unsafe-outside-simd\"
path = \"crates/nn/src/gemm/simd_avx2.rs\"

[[allow]]
lint = \"wallclock-time\"
# why: bench timing is the product here
path = \"crates/bench/src\"
";
        let entries = parse(src).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].lint, "unsafe-outside-simd");
        assert_eq!(entries[0].why, "audited SIMD leaf (PR 9)");
        assert_eq!(entries[1].path, "crates/bench/src");
        assert_eq!(entries[1].why, "bench timing is the product here");
    }

    #[test]
    fn consecutive_entries_may_each_put_why_above_their_header() {
        // Regression: the why-above-header placement must work for every
        // entry, not just the first — a justified, complete entry behind
        // us must not swallow the next entry's justification.
        let src = "\
# why: first reason
[[allow]]
lint = \"unsafe-outside-simd\"
path = \"a\"
# why: second reason
[[allow]]
lint = \"panic-in-lib\"
path = \"b\"
# why: third reason
[[allow]]
lint = \"wallclock-time\"
path = \"c\"
";
        let entries = parse(src).expect("parses");
        let whys: Vec<&str> = entries.iter().map(|e| e.why.as_str()).collect();
        assert_eq!(whys, ["first reason", "second reason", "third reason"]);
    }

    #[test]
    fn entry_without_why_is_rejected() {
        let src = "[[allow]]\nlint = \"panic-in-lib\"\npath = \"crates/x\"\n";
        let err = parse(src).expect_err("must reject");
        assert!(err.message.contains("why"), "{}", err.message);
    }

    #[test]
    fn entry_missing_keys_is_rejected() {
        let src = "# why: x\n[[allow]]\nlint = \"panic-in-lib\"\n";
        let err = parse(src).expect_err("must reject");
        assert!(err.message.contains("path"), "{}", err.message);
    }

    #[test]
    fn stray_keys_and_unquoted_values_are_rejected() {
        assert!(parse("lint = \"x\"\n").is_err());
        assert!(parse("# why: x\n[[allow]]\nlint = bare\npath = \"p\"\n").is_err());
        assert!(parse("# why: x\n[[allow]]\nseverity = \"high\"\n").is_err());
    }
}
