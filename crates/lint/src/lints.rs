//! The house lints: each one mechanizes an invariant the workspace
//! previously enforced by convention and golden tests alone.
//!
//! Every lint is a pure function over a lexed token stream plus a
//! [`FileContext`] describing where the file sits in the workspace.  The
//! driver applies suppression (allowlist file + inline markers) *after*
//! the lints run, so the lints themselves stay policy-free.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// How a file participates in the build — binaries get a looser error
/// discipline (a CLI `main` may abort; a library must return typed
/// errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a library target (`src/**` except `src/bin`).
    Library,
    /// A binary target (`src/bin/*`, `main.rs`).
    Binary,
}

/// Where a source file sits in the workspace, as far as the lints care.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, `/`-separated (used in diagnostics and
    /// allowlist matching).
    pub path: String,
    /// The owning crate's package name (`berry-core`, `rayon`, …).
    pub crate_name: String,
    /// Library or binary target.
    pub kind: FileKind,
    /// Whether the owning crate declares/forwards the `failpoints`
    /// cargo feature.
    pub has_failpoints_feature: bool,
}

/// One diagnostic: a lint finding at a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// The lint's kebab-case name.
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic in the `file:line:col` compiler style.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: warning[{}]: {}",
            self.path, self.line, self.col, self.lint, self.message
        )
    }
}

/// Name/rule/rationale of one registered lint (drives `--list` and the
/// DESIGN.md table).
pub struct LintInfo {
    /// Kebab-case lint name (the allowlist key).
    pub name: &'static str,
    /// One-line rule statement.
    pub rule: &'static str,
}

/// Every lint the checker knows, in reporting order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        name: "unsafe-outside-simd",
        rule: "`unsafe` is confined to the audited SIMD leaf modules (allowlist)",
    },
    LintInfo {
        name: "hashmap-iteration",
        rule: "HashMap/HashSet values are never iterated (iteration order is nondeterministic)",
    },
    LintInfo {
        name: "wallclock-time",
        rule: "Instant::now/SystemTime stay out of output paths (bench/metrics allowlist)",
    },
    LintInfo {
        name: "ambient-rng",
        rule: "no ambient RNG construction (thread_rng/from_entropy); all seeds are derived",
    },
    LintInfo {
        name: "seed-registry",
        rule: "splitmix/FNV mixing constants live only in berry_core::seed",
    },
    LintInfo {
        name: "panic-in-lib",
        rule: "library code returns typed errors: no unwrap/expect/panic!/unreachable! outside tests",
    },
    LintInfo {
        name: "bare-float-reduction",
        rule: "`// lint: pinned-path` files use fixed-order reduction helpers, not bare .sum/.fold",
    },
    LintInfo {
        name: "thread-spawn",
        rule: "threads are spawned only by berry-serve and the vendored rayon scheduler",
    },
    LintInfo {
        name: "unchecked-len-cast",
        rule: "`// lint: codec` files use overflow-checked conversions, not `as` int casts",
    },
    LintInfo {
        name: "feature-hygiene",
        rule: "`failpoints` cfg only in crates that declare/forward the feature",
    },
];

/// The SplitMix64/FNV mixing constants that may appear **only** in the
/// `berry_core::seed` registry (normalized: lowercase hex, no `0x`, no
/// underscores, no leading zeros).
const SEED_CONSTANTS: &[&str] = &[
    "9e3779b97f4a7c15", // SplitMix64 golden gamma
    "bf58476d1ce4e5b9", // SplitMix64 finalizer multiplier 1
    "94d049bb133111eb", // SplitMix64 finalizer multiplier 2
    "d6e8feb86659fd93", // pair-seed family multiplier
    "2545f4914f6cdd1d", // pair-seed family offset
    "cbf29ce484222325", // FNV-1a 64 offset basis
    "100000001b3",      // FNV-1a 64 prime
];

/// Crates allowed to create threads (lint `thread-spawn`).
const SPAWN_CRATES: &[&str] = &["berry-serve", "rayon"];

/// Iterator-like methods whose call on a hash collection is order-unstable.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Macros that abort instead of returning a typed error.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// File markers recognized in comments (`// lint: <marker>`).
#[derive(Debug, Default)]
pub struct FileMarkers {
    /// `// lint: pinned-path` — file is on a bit-pinned numeric path.
    pub pinned_path: bool,
    /// `// lint: codec` — file is a wire/persist codec.
    pub codec: bool,
    /// Inline allows: (line, lint-name, has-why).
    pub allows: Vec<(u32, String, bool)>,
}

/// Parses the `// lint: …` marker grammar out of a file's comments.
#[must_use]
pub fn parse_markers(comments: &[Comment]) -> FileMarkers {
    let mut markers = FileMarkers::default();
    for comment in comments {
        let Some(rest) = comment.text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "pinned-path" {
            markers.pinned_path = true;
        } else if rest == "codec" {
            markers.codec = true;
        } else if let Some(arg) = rest.strip_prefix("allow(") {
            if let Some(end) = arg.find(')') {
                let name = arg[..end].trim().to_string();
                let has_why = arg[end + 1..].trim_start().starts_with("why:");
                markers.allows.push((comment.line, name, has_why));
            }
        }
    }
    markers
}

/// Token-index ranges that belong to `#[cfg(test)]` (or
/// `#[cfg(all(test, …))]`) items — exempt from most lints.
#[must_use]
pub fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].text == "#" && matches!(tokens.get(i + 1), Some(t) if t.text == "[")) {
            i += 1;
            continue;
        }
        let (attr_end, is_test_cfg) = scan_attribute(tokens, i + 1);
        if !is_test_cfg {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut j = attr_end;
        while j < tokens.len()
            && tokens[j].text == "#"
            && matches!(tokens.get(j + 1), Some(t) if t.text == "[")
        {
            j = scan_attribute(tokens, j + 1).0;
        }
        // Find the item's body: the first `{` (match to its close) or a
        // terminating `;` (no body to exempt).
        while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
            j += 1;
        }
        if j < tokens.len() && tokens[j].text == "{" {
            let close = matching_brace(tokens, j);
            regions.push((i, close));
            i = close + 1;
        } else {
            i = j + 1;
        }
    }
    regions
}

/// Scans an attribute starting at the `[` token index; returns the index
/// one past the closing `]` and whether the attribute is a test cfg.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut k = open;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, has_cfg && has_test);
                }
            }
            "cfg" => has_cfg = true,
            "test" => has_test = true,
            _ => {}
        }
        k += 1;
    }
    (k, false)
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, token) in tokens.iter().enumerate().skip(open) {
        match token.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Runs every lint over one file and returns raw (unsuppressed) findings.
#[must_use]
pub fn check_file(source: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let markers = parse_markers(&lexed.comments);
    check_lexed(&lexed, &markers, ctx)
}

/// [`check_file`] over an already-lexed file (the driver lexes once to
/// share the work between lints and marker handling).
#[must_use]
pub fn check_lexed(lexed: &Lexed, markers: &FileMarkers, ctx: &FileContext) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let regions = test_regions(tokens);
    let in_test = |idx: usize| regions.iter().any(|&(a, b)| idx >= a && idx <= b);
    let is_seed_registry = ctx.path == "crates/core/src/seed.rs";
    let mut out = Vec::new();
    let mut diag = |token: &Token, lint: &'static str, message: String| {
        out.push(Diagnostic {
            path: ctx.path.clone(),
            line: token.line,
            col: token.col,
            lint,
            message,
        });
    };

    let hash_names = hash_collection_names(tokens);

    for (i, token) in tokens.iter().enumerate() {
        let text = token.text.as_str();
        let ident = token.kind == TokenKind::Ident;

        // unsafe-outside-simd: every `unsafe` keyword outside tests; the
        // audited SIMD leaf modules are allowlisted, not special-cased.
        if ident && text == "unsafe" && !in_test(i) {
            diag(
                token,
                "unsafe-outside-simd",
                "`unsafe` outside the audited SIMD leaf modules — confine unsafe code to \
                 allowlisted leaves with safe, assert-guarded entry points"
                    .to_string(),
            );
        }

        // hashmap-iteration: order-unstable traversal of a hash collection.
        if ident && hash_names.contains(&token.text) && !in_test(i) {
            // `name.iter()` / `.keys()` / … method chain.
            if tokens.get(i + 1).is_some_and(|t| t.text == ".")
                && tokens
                    .get(i + 2)
                    .is_some_and(|t| HASH_ITER_METHODS.contains(&t.text.as_str()))
            {
                diag(
                    token,
                    "hashmap-iteration",
                    format!(
                        "iterating hash collection `{}` — iteration order is nondeterministic; \
                         collect-and-sort (or use a BTreeMap) before anything ordered",
                        token.text
                    ),
                );
            }
            // `for pat in &name {` / `for pat in name {`.
            let prev_non_ref = (0..i)
                .rev()
                .map(|k| &tokens[k])
                .find(|t| t.text != "&" && t.text != "mut");
            if prev_non_ref.is_some_and(|t| t.text == "in")
                && tokens.get(i + 1).is_some_and(|t| t.text == "{")
            {
                diag(
                    token,
                    "hashmap-iteration",
                    format!(
                        "for-loop over hash collection `{}` — iteration order is \
                         nondeterministic; sort keys first",
                        token.text
                    ),
                );
            }
        }

        // wallclock-time: Instant::now / SystemTime outside tests.
        if ident && !in_test(i) {
            let is_instant_now = text == "Instant"
                && tokens.get(i + 1).is_some_and(|t| t.text == ":")
                && tokens.get(i + 2).is_some_and(|t| t.text == ":")
                && tokens.get(i + 3).is_some_and(|t| t.text == "now");
            if is_instant_now || text == "SystemTime" {
                diag(
                    token,
                    "wallclock-time",
                    "wall-clock time source — forbidden outside the bench/metrics allowlist; \
                     time must never feed a deterministic output path"
                        .to_string(),
                );
            }
        }

        // ambient-rng: nondeterministically seeded RNG construction.
        if ident && (text == "thread_rng" || text == "from_entropy") && !in_test(i) {
            diag(
                token,
                "ambient-rng",
                format!(
                    "`{text}` constructs an ambiently seeded RNG — every RNG must be seeded \
                     from one of the four registered splitmix families"
                ),
            );
        }

        // seed-registry: mixing constants / splitmix definitions outside
        // berry_core::seed.
        if !is_seed_registry && !in_test(i) {
            if token.kind == TokenKind::Number && SEED_CONSTANTS.contains(&normalize_hex(text).as_str())
            {
                diag(
                    token,
                    "seed-registry",
                    format!(
                        "seed-mixing constant `{text}` outside `berry_core::seed` — derive \
                         seeds through the central registry so families stay disjoint"
                    ),
                );
            }
            if ident
                && text == "fn"
                && tokens
                    .get(i + 1)
                    .is_some_and(|t| t.text.starts_with("splitmix"))
            {
                diag(
                    &tokens[i + 1],
                    "seed-registry",
                    "hand-rolled splitmix definition outside `berry_core::seed` — use the \
                     registry's `splitmix64`"
                        .to_string(),
                );
            }
        }

        // panic-in-lib: abort paths in library (non-binary) code.
        if ctx.kind == FileKind::Library && !in_test(i) {
            let method_call = |name: &str| {
                ident
                    && text == name
                    && i > 0
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            };
            if method_call("unwrap") && tokens.get(i + 2).is_some_and(|t| t.text == ")") {
                diag(
                    token,
                    "panic-in-lib",
                    "`.unwrap()` in library code — return a typed error (CoreError/ServeError) \
                     or discharge the invariant without a panic path"
                        .to_string(),
                );
            }
            if method_call("expect") {
                diag(
                    token,
                    "panic-in-lib",
                    "`.expect(…)` in library code — return a typed error or prove the \
                     invariant without a panic path"
                        .to_string(),
                );
            }
            if ident
                && PANIC_MACROS.contains(&text)
                && tokens.get(i + 1).is_some_and(|t| t.text == "!")
            {
                diag(
                    token,
                    "panic-in-lib",
                    format!(
                        "`{text}!` in library code — PR 8's exit-code discipline requires typed \
                         transient/fatal errors, not aborts"
                    ),
                );
            }
        }

        // bare-float-reduction: order-implicit float folds on pinned paths.
        if markers.pinned_path && !in_test(i) && ident && i > 0 && tokens[i - 1].text == "." {
            let sum_f = text == "sum"
                && tokens.get(i + 1).is_some_and(|t| t.text == ":")
                && tokens.get(i + 2).is_some_and(|t| t.text == ":")
                && tokens.get(i + 3).is_some_and(|t| t.text == "<")
                && tokens
                    .get(i + 4)
                    .is_some_and(|t| t.text == "f32" || t.text == "f64");
            let float_fold = text == "fold"
                && tokens.get(i + 1).is_some_and(|t| t.text == "(")
                && tokens.get(i + 2).is_some_and(|t| {
                    t.kind == TokenKind::Number
                        && (t.text.contains('.') || t.text.contains("f32") || t.text.contains("f64"))
                });
            if sum_f || float_fold {
                diag(
                    token,
                    "bare-float-reduction",
                    "bare float reduction in a `// lint: pinned-path` file — route through the \
                     fixed-order helpers (berry_nn::reduce) so summation order is explicit"
                        .to_string(),
                );
            }
        }

        // thread-spawn: thread creation outside berry-serve / rayon.
        if ident
            && text == "spawn"
            && !SPAWN_CRATES.contains(&ctx.crate_name.as_str())
            && !in_test(i)
            && i > 0
            && (tokens[i - 1].text == "." || tokens[i - 1].text == ":")
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
        {
            diag(
                token,
                "thread-spawn",
                "thread spawn outside `berry-serve`/`vendor/rayon` — parallelism goes through \
                 the deterministic scheduler so outputs stay worker-count invariant"
                    .to_string(),
            );
        }

        // unchecked-len-cast: `as` int casts in codec files.
        if markers.codec && !in_test(i) && ident && text == "as" {
            const NARROW: &[&str] =
                &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "i64", "isize"];
            if tokens
                .get(i + 1)
                .is_some_and(|t| NARROW.contains(&t.text.as_str()))
            {
                diag(
                    token,
                    "unchecked-len-cast",
                    format!(
                        "`as {}` in a `// lint: codec` file — use an overflow-checked \
                         conversion (`usize::try_from`, `u32::try_from`) so corrupt or hostile \
                         lengths degrade to errors, not truncation",
                        tokens[i + 1].text
                    ),
                );
            }
        }

        // feature-hygiene: failpoints cfg in a crate without the feature.
        if !ctx.has_failpoints_feature
            && token.kind == TokenKind::Str
            && text == "failpoints"
            && i >= 2
            && tokens[i - 1].text == "="
            && tokens[i - 2].text == "feature"
        {
            diag(
                token,
                "feature-hygiene",
                format!(
                    "crate `{}` uses the `failpoints` cfg but does not declare/forward the \
                     feature in its Cargo.toml — the site would silently never compile in",
                    ctx.crate_name
                ),
            );
        }
    }
    out
}

/// Collects identifiers bound to `HashMap`/`HashSet` values in this file:
/// type ascriptions (`name: Mutex<HashMap<…>>`) and let-bindings
/// initialized from a constructor (`let name = HashMap::new()`).
fn hash_collection_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident
            || (token.text != "HashMap" && token.text != "HashSet")
        {
            continue;
        }
        // Walk backwards through type/path/constructor syntax to the
        // binding: stop at `:` (ascription) or `=` then `let` (binding).
        let mut k = i;
        let mut hops = 0;
        while k > 0 && hops < 14 {
            k -= 1;
            hops += 1;
            match tokens[k].text.as_str() {
                ":" => {
                    // Skip a possible second `:` of a `::` path — a path
                    // segment means we are inside the type, keep walking.
                    if k > 0 && tokens[k - 1].text == ":" {
                        k -= 1;
                        continue;
                    }
                    if k > 0 && tokens[k - 1].kind == TokenKind::Ident {
                        names.push(tokens[k - 1].text.clone());
                    }
                    break;
                }
                "=" => {
                    // `let name = …HashMap::new()` / `let name: T = …`.
                    let mut j = k;
                    while j > 0 && hops < 14 {
                        j -= 1;
                        hops += 1;
                        if tokens[j].text == "let" {
                            if let Some(name) = tokens.get(j + 1) {
                                if name.kind == TokenKind::Ident && name.text != "mut" {
                                    names.push(name.text.clone());
                                } else if let Some(n2) = tokens.get(j + 2) {
                                    names.push(n2.text.clone());
                                }
                            }
                            break;
                        }
                        if tokens[j].text == ";" || tokens[j].text == "{" {
                            break;
                        }
                    }
                    break;
                }
                ";" | "{" | "}" | "(" => break,
                _ => {}
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Normalizes a numeric literal for mixing-constant matching: lowercase,
/// underscores stripped, `0x` prefix and leading zeros removed.
fn normalize_hex(text: &str) -> String {
    let lower: String = text.to_ascii_lowercase().replace('_', "");
    let body = lower.strip_prefix("0x").unwrap_or(&lower);
    let trimmed = body.trim_start_matches('0');
    if trimmed.is_empty() { "0".to_string() } else { trimmed.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str) -> FileContext {
        FileContext {
            path: path.to_string(),
            crate_name: "berry-test".to_string(),
            kind: FileKind::Library,
            has_failpoints_feature: false,
        }
    }

    fn lints_of(src: &str, context: &FileContext) -> Vec<&'static str> {
        let mut names: Vec<&'static str> =
            check_file(src, context).into_iter().map(|d| d.lint).collect();
        names.dedup();
        names
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                   Some(1).unwrap(); panic!(\"x\"); }\n}\n";
        assert!(lints_of(src, &ctx("crates/x/src/lib.rs")).is_empty());
    }

    #[test]
    fn cfg_all_test_regions_are_exempt() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod tests { fn t() { panic!(); } }";
        let found = lints_of(src, &ctx("crates/x/src/lib.rs"));
        assert!(!found.contains(&"panic-in-lib"), "{found:?}");
    }

    #[test]
    fn binaries_may_abort_but_libraries_may_not() {
        let src = "fn f() { Some(1).unwrap(); }";
        let mut binary = ctx("crates/x/src/bin/tool.rs");
        binary.kind = FileKind::Binary;
        assert!(lints_of(src, &binary).is_empty());
        assert_eq!(lints_of(src, &ctx("crates/x/src/lib.rs")), vec!["panic-in-lib"]);
    }

    #[test]
    fn unwrap_or_and_named_expect_do_not_false_positive() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(3) }\n\
                   fn g(p: &mut P) { p.expect_byte(b'{'); }";
        assert!(lints_of(src, &ctx("crates/x/src/lib.rs")).is_empty());
    }

    #[test]
    fn seed_constants_allowed_only_in_registry() {
        let src = "const G: u64 = 0x9E37_79B9_7F4A_7C15;";
        assert_eq!(lints_of(src, &ctx("crates/x/src/lib.rs")), vec!["seed-registry"]);
        assert!(lints_of(src, &ctx("crates/core/src/seed.rs")).is_empty());
        // FNV prime with leading zeros normalizes correctly.
        let fnv = "const P: u64 = 0x0000_0100_0000_01B3;";
        assert_eq!(lints_of(fnv, &ctx("crates/x/src/lib.rs")), vec!["seed-registry"]);
    }

    #[test]
    fn hash_iteration_detected_for_ascribed_and_let_bound_maps() {
        let ascribed = "struct S { slots: Mutex<HashMap<String, u32>> }\n\
                        fn f(s: &S) { for v in s.slots.lock().iter() {} }";
        // `slots` is known to be a map; `.iter()` on it (via the lock
        // chain the backward scan tolerates) is not what we assert here —
        // the direct form is:
        let direct = "fn f(m: HashMap<String, u32>) { for k in m.keys() { drop(k); } }";
        assert_eq!(lints_of(direct, &ctx("crates/x/src/lib.rs")), vec!["hashmap-iteration"]);
        let let_bound =
            "fn f() { let mut seen = HashSet::new(); seen.insert(1); for x in &seen {} }";
        assert_eq!(lints_of(let_bound, &ctx("crates/x/src/lib.rs")), vec!["hashmap-iteration"]);
        // Membership-only use is fine.
        let membership = "fn f() { let mut seen = HashSet::new(); seen.insert(1); \
                          assert(seen.contains(&1)); }";
        assert!(lints_of(membership, &ctx("crates/x/src/lib.rs")).is_empty());
        let _ = ascribed;
    }

    #[test]
    fn pinned_path_and_codec_markers_gate_their_lints() {
        let sum = "fn f(v: &[f32]) -> f32 { v.iter().sum::<f32>() }";
        assert!(lints_of(sum, &ctx("crates/x/src/lib.rs")).is_empty());
        let pinned = format!("// lint: pinned-path\n{sum}");
        assert_eq!(
            lints_of(&pinned, &ctx("crates/x/src/lib.rs")),
            vec!["bare-float-reduction"]
        );
        let cast = "fn f(v: &[u8]) -> u32 { v.len() as u32 }";
        assert!(lints_of(cast, &ctx("crates/x/src/lib.rs")).is_empty());
        let codec = format!("// lint: codec\n{cast}");
        assert_eq!(lints_of(&codec, &ctx("crates/x/src/lib.rs")), vec!["unchecked-len-cast"]);
    }

    #[test]
    fn spawn_allowed_only_in_serve_and_rayon() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(lints_of(src, &ctx("crates/x/src/lib.rs")), vec!["thread-spawn"]);
        let mut serve = ctx("crates/serve/src/server.rs");
        serve.crate_name = "berry-serve".to_string();
        assert!(lints_of(src, &serve).is_empty());
        let mut rayon = ctx("vendor/rayon/src/iter.rs");
        rayon.crate_name = "rayon".to_string();
        assert!(lints_of(src, &rayon).is_empty());
    }

    #[test]
    fn feature_hygiene_needs_the_feature_declared() {
        let src = "#[cfg(feature = \"failpoints\")]\nfn f() {}";
        assert_eq!(lints_of(src, &ctx("crates/x/src/lib.rs")), vec!["feature-hygiene"]);
        let mut with = ctx("crates/x/src/lib.rs");
        with.has_failpoints_feature = true;
        assert!(lints_of(src, &with).is_empty());
    }

    #[test]
    fn comments_strings_and_macros_do_not_false_positive() {
        let src = "// unsafe panic!() thread_rng Instant::now\n\
                   /* SystemTime 0x9E3779B97F4A7C15 */\n\
                   fn f() -> String { \"unsafe { panic!() }\".to_string() }";
        assert!(lints_of(src, &ctx("crates/x/src/lib.rs")).is_empty());
    }

    #[test]
    fn marker_parsing_handles_allows() {
        let lexed = crate::lexer::lex(
            "// lint: codec\nfn f() {} // lint: allow(panic-in-lib) why: designed abort\n\
             // lint: allow(wallclock-time)\n",
        );
        let markers = parse_markers(&lexed.comments);
        assert!(markers.codec);
        assert!(!markers.pinned_path);
        assert_eq!(markers.allows.len(), 2);
        assert_eq!(markers.allows[0], (2, "panic-in-lib".to_string(), true));
        assert_eq!(markers.allows[1], (3, "wallclock-time".to_string(), false));
    }
}
