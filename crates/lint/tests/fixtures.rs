//! Fixture-corpus tests: every known-bad snippet under `fixtures/` must
//! trigger exactly its intended lint, and the clean fixture must trigger
//! nothing. This keeps each lint honest in both directions — it fires on
//! the canonical violation and stays quiet on well-behaved code.

use berry_lint::lints::check_file;
use berry_lint::{FileContext, FileKind};

/// (fixture file, the one lint it must trigger).
const BAD_FIXTURES: &[(&str, &str)] = &[
    ("bad_unsafe.rs", "unsafe-outside-simd"),
    ("bad_hashmap_iter.rs", "hashmap-iteration"),
    ("bad_wallclock.rs", "wallclock-time"),
    ("bad_ambient_rng.rs", "ambient-rng"),
    ("bad_seed_constant.rs", "seed-registry"),
    ("bad_panic.rs", "panic-in-lib"),
    ("bad_float_reduction.rs", "bare-float-reduction"),
    ("bad_thread_spawn.rs", "thread-spawn"),
    ("bad_len_cast.rs", "unchecked-len-cast"),
    ("bad_feature_cfg.rs", "feature-hygiene"),
];

fn fixture_source(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("failed to read fixture {path}: {e}"))
}

/// Fixtures are checked as library code in an ordinary crate with no
/// `failpoints` feature — the strictest context the lints support.
fn fixture_context(name: &str) -> FileContext {
    FileContext {
        path: format!("crates/fixture/src/{name}"),
        crate_name: "berry-fixture".to_string(),
        kind: FileKind::Library,
        has_failpoints_feature: false,
    }
}

#[test]
fn every_bad_fixture_triggers_exactly_its_lint() {
    for (name, expected_lint) in BAD_FIXTURES {
        let source = fixture_source(name);
        let ctx = fixture_context(name);
        let diags = check_file(&source, &ctx);
        assert!(
            !diags.is_empty(),
            "{name}: expected a `{expected_lint}` finding, got none"
        );
        let lints: Vec<&str> = diags.iter().map(|d| d.lint).collect();
        assert!(
            lints.iter().all(|l| l == expected_lint),
            "{name}: expected only `{expected_lint}`, got {lints:?}"
        );
    }
}

#[test]
fn bad_fixture_table_covers_every_lint() {
    // Guards against adding a lint without a fixture: the corpus must
    // exercise each entry of the lint table exactly once.
    let mut covered: Vec<&str> = BAD_FIXTURES.iter().map(|(_, lint)| *lint).collect();
    covered.sort_unstable();
    let mut all: Vec<&str> = berry_lint::LINTS.iter().map(|l| l.name).collect();
    all.sort_unstable();
    assert_eq!(covered, all, "fixture corpus out of sync with lint table");
}

#[test]
fn clean_fixture_triggers_nothing() {
    let source = fixture_source("clean.rs");
    let ctx = fixture_context("clean.rs");
    let diags = check_file(&source, &ctx);
    let rendered: Vec<String> = diags.iter().map(berry_lint::Diagnostic::render).collect();
    assert!(
        diags.is_empty(),
        "clean fixture produced findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn diagnostics_carry_real_positions() {
    // Spot-check one fixture's position: `bad_panic.rs` unwraps on its
    // third line; line/col must be 1-indexed and point at the call.
    let source = fixture_source("bad_panic.rs");
    let ctx = fixture_context("bad_panic.rs");
    let diags = check_file(&source, &ctx);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].col > 1);
    assert!(diags[0].render().starts_with("crates/fixture/src/bad_panic.rs:3:"));
}
