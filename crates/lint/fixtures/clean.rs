// Fixture: a well-behaved library file — must trigger no lint at all.
// Mentions of unsafe, panic!, Instant::now and 0x9E37_79B9_7F4A_7C15 in
// comments and strings must not count.
use std::collections::HashMap;

/// Membership-only HashMap use is fine; only iteration is order-unstable.
pub fn count_if_known(m: &HashMap<String, u32>, key: &str) -> u32 {
    m.get(key).copied().unwrap_or(0)
}

pub fn describe() -> String {
    "unsafe { panic!(Instant::now) }".to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        Some(1u32).unwrap();
        if false {
            panic!("allowed in tests");
        }
    }
}
