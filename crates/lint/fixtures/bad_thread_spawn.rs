// Fixture: must trigger exactly `thread-spawn`.
pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
