// Fixture: must trigger exactly `panic-in-lib`.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
