// lint: codec
// Fixture: must trigger exactly `unchecked-len-cast`.
pub fn header_len(payload: &[u8]) -> u32 {
    payload.len() as u32
}
