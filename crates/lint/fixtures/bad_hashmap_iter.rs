// Fixture: must trigger exactly `hashmap-iteration`.
use std::collections::HashMap;

pub fn keys_in_map_order(m: &HashMap<String, u32>) -> Vec<String> {
    m.keys().cloned().collect()
}
