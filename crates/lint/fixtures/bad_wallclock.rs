// Fixture: must trigger exactly `wallclock-time`.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
