// Fixture: must trigger exactly `feature-hygiene` (checked in a crate
// that does not declare the `failpoints` feature).
#[cfg(feature = "failpoints")]
pub fn chaos_only() {}
