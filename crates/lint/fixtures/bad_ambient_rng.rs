// Fixture: must trigger exactly `ambient-rng`.
pub fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
