// lint: pinned-path
// Fixture: must trigger exactly `bare-float-reduction`.
pub fn total(v: &[f32]) -> f32 {
    v.iter().copied().sum::<f32>()
}
