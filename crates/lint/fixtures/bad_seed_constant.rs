// Fixture: must trigger exactly `seed-registry`.
pub const HOME_GROWN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
