// Fixture: must trigger exactly `unsafe-outside-simd`.
pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
