//! Loss functions returning both the scalar loss and its gradient.
//!
//! The DQN temporal-difference update minimizes the squared (or Huber)
//! difference between predicted Q-values and Bellman targets; both losses
//! here return the gradient with respect to the *prediction*, averaged over
//! the batch, ready to feed into [`crate::network::Sequential::backward`].

use crate::tensor::Tensor;

/// Mean-squared-error loss.
///
/// Returns `(loss, grad)` where `loss = mean((pred - target)²)` and
/// `grad = 2 (pred − target) / N` with `N` the number of elements.
///
/// # Panics
///
/// Panics if the prediction and target shapes differ.
///
/// # Examples
///
/// ```
/// use berry_nn::loss::mse_loss;
/// use berry_nn::tensor::Tensor;
/// # fn main() -> Result<(), berry_nn::NnError> {
/// let pred = Tensor::from_vec(vec![1, 2], vec![1.0, 3.0])?;
/// let target = Tensor::from_vec(vec![1, 2], vec![0.0, 3.0])?;
/// let (loss, grad) = mse_loss(&pred, &target);
/// assert!((loss - 0.5).abs() < 1e-6);
/// assert_eq!(grad.shape(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "mse_loss requires matching shapes"
    );
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target).expect("shapes already checked");
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`.
///
/// Quadratic for residuals smaller than `delta`, linear beyond — the
/// standard DQN stabilizer against exploding TD errors, which matters even
/// more under bit-error perturbed targets.
///
/// Returns `(loss, grad)` with both averaged over the number of elements.
///
/// # Panics
///
/// Panics if the shapes differ or `delta` is not strictly positive.
pub fn huber_loss(pred: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "huber_loss requires matching shapes"
    );
    assert!(delta > 0.0, "huber delta must be positive");
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target).expect("shapes already checked");
    let mut loss = 0.0f32;
    let grad_data: Vec<f32> = diff
        .data()
        .iter()
        .map(|&d| {
            if d.abs() <= delta {
                loss += 0.5 * d * d;
                d / n
            } else {
                loss += delta * (d.abs() - 0.5 * delta);
                delta * d.signum() / n
            }
        })
        .collect();
    let grad = Tensor::from_vec(pred.shape().to_vec(), grad_data)
        .expect("gradient shares prediction shape");
    (loss / n, grad)
}

/// Masked mean-squared-error: only elements where `mask` is non-zero
/// contribute to the loss and gradient.
///
/// This is how per-action TD errors are applied in a DQN — the network
/// outputs Q-values for every action but only the taken action's Q-value has
/// a target.
///
/// # Panics
///
/// Panics if the three shapes are not identical.
pub fn masked_mse_loss(pred: &Tensor, target: &Tensor, mask: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape());
    assert_eq!(pred.shape(), mask.shape());
    let active = mask.data().iter().filter(|&&m| m != 0.0).count().max(1) as f32;
    let mut loss = 0.0f32;
    let grad_data: Vec<f32> = pred
        .data()
        .iter()
        .zip(target.data().iter())
        .zip(mask.data().iter())
        .map(|((&p, &t), &m)| {
            if m != 0.0 {
                let d = p - t;
                loss += d * d;
                2.0 * d / active
            } else {
                0.0
            }
        })
        .collect();
    let grad =
        Tensor::from_vec(pred.shape().to_vec(), grad_data).expect("gradient shares pred shape");
    (loss / active, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let (loss, grad) = mse_loss(&a, &a);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let pred = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let target = Tensor::from_vec(vec![2], vec![0.0, 0.0]).unwrap();
        let (loss, grad) = mse_loss(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert!((grad.data()[0] - 1.0).abs() < 1e-6);
        assert!((grad.data()[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn huber_equals_mse_for_small_residuals() {
        let pred = Tensor::from_vec(vec![2], vec![0.1, -0.2]).unwrap();
        let target = Tensor::zeros(&[2]);
        let (h, _) = huber_loss(&pred, &target, 1.0);
        // Huber uses 0.5 d² so compare against half the MSE.
        let (m, _) = mse_loss(&pred, &target);
        assert!((h - 0.5 * m).abs() < 1e-6);
    }

    #[test]
    fn huber_gradient_is_clipped_for_large_residuals() {
        let pred = Tensor::from_vec(vec![2], vec![10.0, -10.0]).unwrap();
        let target = Tensor::zeros(&[2]);
        let (_, grad) = huber_loss(&pred, &target, 1.0);
        assert!((grad.data()[0] - 0.5).abs() < 1e-6);
        assert!((grad.data()[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "huber delta must be positive")]
    fn huber_rejects_non_positive_delta() {
        let a = Tensor::zeros(&[1]);
        let _ = huber_loss(&a, &a, 0.0);
    }

    #[test]
    fn masked_mse_ignores_unmasked_entries() {
        let pred = Tensor::from_vec(vec![1, 3], vec![1.0, 5.0, 2.0]).unwrap();
        let target = Tensor::from_vec(vec![1, 3], vec![0.0, 0.0, 2.0]).unwrap();
        let mask = Tensor::from_vec(vec![1, 3], vec![1.0, 0.0, 1.0]).unwrap();
        let (loss, grad) = masked_mse_loss(&pred, &target, &mask);
        // Only the first and third entries count: (1² + 0²)/2 = 0.5
        assert!((loss - 0.5).abs() < 1e-6);
        assert_eq!(grad.data()[1], 0.0);
        assert!(grad.data()[0] > 0.0);
    }

    proptest! {
        #[test]
        fn prop_mse_is_nonnegative(values in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
            let n = values.len();
            let pred = Tensor::from_vec(vec![n], values).unwrap();
            let target = Tensor::zeros(&[n]);
            let (loss, _) = mse_loss(&pred, &target);
            prop_assert!(loss >= 0.0);
        }

        #[test]
        fn prop_huber_never_exceeds_mse_scale(values in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
            let n = values.len();
            let pred = Tensor::from_vec(vec![n], values).unwrap();
            let target = Tensor::zeros(&[n]);
            let (h, _) = huber_loss(&pred, &target, 1.0);
            let (m, _) = mse_loss(&pred, &target);
            // Huber (with 0.5 factor) is always ≤ half of MSE.
            prop_assert!(h <= 0.5 * m + 1e-4);
        }

        #[test]
        fn prop_huber_gradient_bounded_by_delta(values in proptest::collection::vec(-100.0f32..100.0, 1..32), delta in 0.1f32..5.0) {
            let n = values.len();
            let pred = Tensor::from_vec(vec![n], values).unwrap();
            let target = Tensor::zeros(&[n]);
            let (_, grad) = huber_loss(&pred, &target, delta);
            let bound = delta / n as f32 + 1e-6;
            prop_assert!(grad.data().iter().all(|g| g.abs() <= bound));
        }
    }
}
