//! # berry-nn
//!
//! A small, dependency-light neural-network substrate used by the BERRY
//! reproduction (bit-error-robust reinforcement learning for low-voltage
//! autonomous systems, DAC 2023).
//!
//! The crate provides exactly the pieces Algorithm 1 of the paper needs:
//!
//! * an owned, contiguous [`Tensor`] type with the handful of operations a
//!   DQN requires (element-wise arithmetic, matrix multiply, reductions),
//! * explicit forward/backward [`layer::Layer`]s (dense, 2-D convolution,
//!   activations, flatten) composed into a [`network::Sequential`] model,
//! * [`optim`] — stochastic gradient descent (with momentum) and Adam,
//! * [`loss`] — mean-squared-error and Huber losses for temporal-difference
//!   targets,
//! * [`quant`] — per-layer symmetric 8-bit quantization with rounding, the
//!   integer representation into which low-voltage SRAM bit errors are
//!   injected by the `berry-faults` crate.
//!
//! The implementation favours clarity and determinism: almost every
//! operation is plain safe Rust over `Vec<f32>`, and all random
//! initialization goes through a caller-supplied [`rand::Rng`] so that
//! experiments are reproducible bit-for-bit.  The one deliberate
//! exception is the [`gemm`] module's opt-in **Fast** precision tier,
//! whose AVX2/NEON microkernels are the crate's only unsafe code — and
//! even that tier is bitwise-reproducible across backends (see the
//! [`gemm`] module docs for the two-tier contract).
//!
//! ## Example
//!
//! ```
//! use berry_nn::network::Sequential;
//! use berry_nn::layer::{Dense, Relu};
//! use berry_nn::optim::{Optimizer, Sgd};
//! use berry_nn::loss::mse_loss;
//! use berry_nn::tensor::Tensor;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), berry_nn::NnError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut net = Sequential::new();
//! net.push(Dense::new(2, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 1, &mut rng));
//!
//! let x = Tensor::from_vec(vec![1, 2], vec![0.5, -0.25])?;
//! let target = Tensor::from_vec(vec![1, 1], vec![0.75])?;
//! let mut opt = Sgd::new(0.05);
//! for _ in 0..50 {
//!     let y = net.forward(&x);
//!     let (loss, grad) = mse_loss(&y, &target);
//!     net.backward(&grad);
//!     opt.step(&mut net);
//!     net.zero_grad();
//!     let _ = loss;
//! }
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the two SIMD leaf modules of `gemm`
// (`simd_avx2`, `simd_neon`) opt back in with a scoped `allow` — every
// other module in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod gemm;
pub mod init;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optim;
pub mod quant;
pub mod reduce;
pub mod tensor;

pub use error::NnError;
pub use network::Sequential;
pub use tensor::Tensor;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;
