//! The shared im2col/GEMM inference core.
//!
//! Every inference-path matrix product in the crate — the batched dense
//! layer and the im2col-lowered convolution — funnels through
//! [`gemm_nt`]: a cache-friendly, register-tiled `C = A · Bᵀ` kernel over
//! row-major operands whose rows share the contraction dimension.  One
//! kernel serving every layer is what makes the batched lockstep rollout
//! engine pay a *single* well-optimized forward pass per timestep for all
//! concurrent episode lanes, instead of many tiny cache-unfriendly ones.
//!
//! # Bitwise contract
//!
//! The kernel is register-tiled over the *output* dimensions only: every
//! output element still accumulates its `k` terms in strictly ascending
//! order with separate multiply and add (no FMA contraction), so each
//! element's floating-point sequence — and therefore its bits — is
//! identical to the naive scalar reference regardless of the tile shape or
//! the batch size.  Two consequences the evaluation protocol relies on:
//!
//! * **batch invariance** — row `i` of a batched product is bitwise equal
//!   to the same row computed alone, which is what lets the lockstep
//!   rollout engine retire and refill episode lanes without perturbing the
//!   surviving lanes' Q-values;
//! * **reference equality** — the GEMM path is bitwise identical to the
//!   loop-reordered scalar kernels each layer keeps as its auditable
//!   reference ([`crate::layer::Layer::infer`]), pinned by the
//!   GEMM-vs-scalar layer tests.
//!
//! Zero-valued contraction terms (im2col padding cells, exact-zero
//! activations skipped by [`crate::tensor::Tensor::matmul`]) contribute
//! `±0.0` products; since accumulators start from `+0.0` (or a real-valued
//! bias) and IEEE-754 round-to-nearest addition never turns such a sum into
//! `-0.0`, including the terms is bitwise equivalent to skipping them.

/// Rows of `A` (output rows) processed per register tile.
const MR: usize = 4;
/// Rows of `B` (output columns) processed per register tile.
const NR: usize = 4;

/// Where the bias enters the accumulation, mirroring the two layer
/// conventions the training path established.
#[derive(Debug, Clone, Copy)]
pub enum BiasMode<'a> {
    /// No bias: accumulators start from `+0.0`.
    None,
    /// One bias value per output **row** (`A` row), *initializing* the
    /// accumulator — the convolution convention (`acc = bias; acc += taps`).
    RowInit(&'a [f32]),
    /// One bias value per output **column** (`B` row), added *after* the
    /// accumulation — the dense convention (`y = x·Wᵀ + b`).
    ColAfter(&'a [f32]),
}

impl BiasMode<'_> {
    #[inline]
    fn init(&self, row: usize) -> f32 {
        match self {
            BiasMode::RowInit(bias) => bias[row],
            _ => 0.0,
        }
    }

    #[inline]
    fn finish(&self, col: usize, acc: f32) -> f32 {
        match self {
            BiasMode::ColAfter(bias) => acc + bias[col],
            _ => acc,
        }
    }
}

/// `C[i][j] = bias ⊕ Σₚ A[i][p] · B[j][p]` over row-major `A` (`m×k`),
/// row-major `B` (`n×k`) and row-major `C` (`m×n`).
///
/// Both operands are indexed by *rows sharing the contraction dimension*
/// (`NT` layout: `A · Bᵀ`), which is exactly how the layers store their
/// data — dense weights are `[out, in]`, im2col patches are
/// `[pixels, taps]` — so no packing or transposition is ever needed.
///
/// # Panics
///
/// Panics (in debug builds) if a slice is shorter than its `m`/`n`/`k`
/// extent implies.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], bias: BiasMode, c: &mut [f32]) {
    debug_assert!(a.len() >= m * k, "A is {} < {m}×{k}", a.len());
    debug_assert!(b.len() >= n * k, "B is {} < {n}×{k}", b.len());
    debug_assert!(c.len() >= m * n, "C is {} < {m}×{n}", c.len());
    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let nr = NR.min(n - j0);
            if mr == MR && nr == NR {
                tile_4x4(i0, j0, n, k, a, b, &bias, c);
            } else {
                tile_edge(i0, mr, j0, nr, n, k, a, b, &bias, c);
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// The full `MR×NR` register tile: sixteen scalar accumulators live in
/// registers across the whole `k` sweep, and each `k` step reuses four
/// loads of `A` and four of `B` for sixteen multiply-adds.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_4x4(i0: usize, j0: usize, n: usize, k: usize, a: &[f32], b: &[f32], bias: &BiasMode, c: &mut [f32]) {
    let a0 = &a[i0 * k..(i0 + 1) * k];
    let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
    let a2 = &a[(i0 + 2) * k..(i0 + 3) * k];
    let a3 = &a[(i0 + 3) * k..(i0 + 4) * k];
    let b0 = &b[j0 * k..(j0 + 1) * k];
    let b1 = &b[(j0 + 1) * k..(j0 + 2) * k];
    let b2 = &b[(j0 + 2) * k..(j0 + 3) * k];
    let b3 = &b[(j0 + 3) * k..(j0 + 4) * k];

    let mut acc = [[0.0f32; NR]; MR];
    for (row, acc_row) in acc.iter_mut().enumerate() {
        let init = bias.init(i0 + row);
        *acc_row = [init; NR];
    }
    for p in 0..k {
        let av = [a0[p], a1[p], a2[p], a3[p]];
        let bv = [b0[p], b1[p], b2[p], b3[p]];
        for (acc_row, &avi) in acc.iter_mut().zip(av.iter()) {
            for (accv, &bvj) in acc_row.iter_mut().zip(bv.iter()) {
                // Separate mul + add (not mul_add): the rounding sequence is
                // part of the bitwise contract with the scalar reference.
                *accv += avi * bvj;
            }
        }
    }
    for (row, acc_row) in acc.iter().enumerate() {
        let c_row = &mut c[(i0 + row) * n + j0..(i0 + row) * n + j0 + NR];
        for (col, (dst, &accv)) in c_row.iter_mut().zip(acc_row.iter()).enumerate() {
            *dst = bias.finish(j0 + col, accv);
        }
    }
}

/// Scalar fringe tile for the `m % MR` / `n % NR` remainders — same
/// ascending-`k` accumulation, so the bits match the fast tile exactly.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_edge(
    i0: usize,
    mr: usize,
    j0: usize,
    nr: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &BiasMode,
    c: &mut [f32],
) {
    for i in i0..i0 + mr {
        let a_row = &a[i * k..(i + 1) * k];
        for j in j0..j0 + nr {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = bias.init(i);
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            c[i * n + j] = bias.finish(j, acc);
        }
    }
}

/// Reusable buffers of the im2col/GEMM inference core.
///
/// One `GemmScratch` lives inside every
/// [`crate::network::InferScratch`], so the whole lockstep rollout hot
/// path — im2col patch matrices included — stops allocating once the
/// buffers reach steady-state capacity.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    col: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The im2col patch buffer, resized to at least `len` elements.
    ///
    /// Contents are unspecified; callers overwrite every element they read.
    pub fn col_buffer(&mut self, len: usize) -> &mut [f32] {
        if self.col.len() < len {
            self.col.resize(len, 0.0);
        }
        &mut self.col[..len]
    }
}

/// Geometry of one im2col lowering: a `[c, h, w]` input plane unrolled into
/// a `[out_h·out_w, c·kernel·kernel]` row-major patch matrix.
#[derive(Debug, Clone, Copy)]
pub struct Im2colShape {
    /// Input channels.
    pub channels: usize,
    /// Input spatial height.
    pub height: usize,
    /// Input spatial width.
    pub width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on each spatial border.
    pub padding: usize,
    /// Output spatial height.
    pub out_h: usize,
    /// Output spatial width.
    pub out_w: usize,
}

impl Im2colShape {
    /// Patch-matrix row count (one row per output pixel).
    pub fn rows(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Patch-matrix column count (one column per kernel tap), i.e. the GEMM
    /// contraction dimension.
    pub fn cols(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }
}

/// Unrolls one sample's `[c, h, w]` plane into the row-major patch matrix
/// `col[p][(ic·kernel + kh)·kernel + kw] = input[ic][iy][ix]` with `+0.0`
/// in padding cells.
///
/// Column order matches the `(ic, kh, kw)` tap order of the scalar
/// convolution kernels, so a `k`-ascending GEMM over these rows replays the
/// reference accumulation sequence exactly.
pub fn im2col(input: &[f32], shape: &Im2colShape, col: &mut [f32]) {
    let Im2colShape {
        channels,
        height,
        width,
        kernel,
        stride,
        padding,
        out_h,
        out_w,
    } = *shape;
    let cols = shape.cols();
    debug_assert_eq!(input.len(), channels * height * width);
    debug_assert!(col.len() >= shape.rows() * cols);
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = &mut col[(oy * out_w + ox) * cols..(oy * out_w + ox + 1) * cols];
            let mut tap = 0usize;
            for ic in 0..channels {
                let plane = &input[ic * height * width..(ic + 1) * height * width];
                for kh in 0..kernel {
                    let iy = (oy * stride + kh) as isize - padding as isize;
                    if iy < 0 || iy >= height as isize {
                        row[tap..tap + kernel].fill(0.0);
                        tap += kernel;
                        continue;
                    }
                    let in_row = &plane[iy as usize * width..(iy as usize + 1) * width];
                    for kw in 0..kernel {
                        let ix = (ox * stride + kw) as isize - padding as isize;
                        row[tap] = if ix < 0 || ix >= width as isize {
                            0.0
                        } else {
                            in_row[ix as usize]
                        };
                        tap += 1;
                    }
                }
            }
        }
    }
}

/// Convenience used by tests and benches: the naive triple loop the tiled
/// kernel must agree with bitwise.
pub fn gemm_nt_reference(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: BiasMode,
    c: &mut [f32],
) {
    tile_edge(0, m, 0, n, n, k, a, b, &bias, c);
}

/// FLOP count of one `gemm_nt` call (a multiply and an add per `(i, j, p)`
/// triple), used by the throughput reports.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn rand_vec(len: usize, r: &mut rand::rngs::StdRng) -> Vec<f32> {
        Tensor::rand_uniform(&[len.max(1)], -1.0, 1.0, r).data()[..len].to_vec()
    }

    #[test]
    fn tiled_gemm_matches_reference_bitwise_across_shapes() {
        let mut r = rng(0);
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (4, 4, 7),
            (5, 9, 13),
            (8, 3, 1),
            (3, 17, 45),
            (16, 25, 72),
            (7, 81, 18),
        ] {
            let a = rand_vec(m * k, &mut r);
            let b = rand_vec(n * k, &mut r);
            let row_bias = rand_vec(m, &mut r);
            let col_bias = rand_vec(n, &mut r);
            for bias in [
                BiasMode::None,
                BiasMode::RowInit(&row_bias),
                BiasMode::ColAfter(&col_bias),
            ] {
                let mut c_tiled = vec![0.0f32; m * n];
                let mut c_ref = vec![0.0f32; m * n];
                gemm_nt(m, n, k, &a, &b, bias, &mut c_tiled);
                gemm_nt_reference(m, n, k, &a, &b, bias, &mut c_ref);
                for (i, (x, y)) in c_tiled.iter().zip(c_ref.iter()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "({m},{n},{k}) {bias:?} element {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_rows_are_batch_invariant() {
        // Row i of a batched product equals the same row computed alone —
        // the property that makes lane retirement bitwise-safe.
        let (m, n, k) = (6usize, 10usize, 23usize);
        let mut r = rng(1);
        let a = rand_vec(m * k, &mut r);
        let b = rand_vec(n * k, &mut r);
        let bias = rand_vec(n, &mut r);
        let mut full = vec![0.0f32; m * n];
        gemm_nt(m, n, k, &a, &b, BiasMode::ColAfter(&bias), &mut full);
        for i in 0..m {
            let mut single = vec![0.0f32; n];
            gemm_nt(
                1,
                n,
                k,
                &a[i * k..(i + 1) * k],
                &b,
                BiasMode::ColAfter(&bias),
                &mut single,
            );
            for (j, (x, y)) in single.iter().zip(full[i * n..(i + 1) * n].iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} col {j}");
            }
        }
    }

    #[test]
    fn im2col_layout_matches_tap_order() {
        // 1 channel, 3×3 input, 2×2 kernel, stride 1, no padding.
        let input: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let shape = Im2colShape {
            channels: 1,
            height: 3,
            width: 3,
            kernel: 2,
            stride: 1,
            padding: 0,
            out_h: 2,
            out_w: 2,
        };
        let mut col = vec![0.0f32; shape.rows() * shape.cols()];
        im2col(&input, &shape, &mut col);
        // First output pixel sees the top-left 2×2 patch in (kh, kw) order.
        assert_eq!(&col[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // Last output pixel sees the bottom-right patch.
        assert_eq!(&col[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_pads_with_positive_zero() {
        let input = vec![-3.0f32];
        let shape = Im2colShape {
            channels: 1,
            height: 1,
            width: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
            out_h: 1,
            out_w: 1,
        };
        let mut col = vec![f32::NAN; 9];
        im2col(&input, &shape, &mut col);
        assert_eq!(col[4], -3.0);
        for (i, v) in col.iter().enumerate() {
            if i != 4 {
                assert_eq!(v.to_bits(), 0.0f32.to_bits(), "padding cell {i} must be +0.0");
            }
        }
    }

    #[test]
    fn scratch_buffer_grows_and_is_reused() {
        let mut scratch = GemmScratch::new();
        assert_eq!(scratch.col_buffer(16).len(), 16);
        scratch.col_buffer(16)[3] = 7.0;
        // Asking for less never shrinks; asking for more grows.
        assert_eq!(scratch.col_buffer(8).len(), 8);
        assert_eq!(scratch.col_buffer(64).len(), 64);
    }

    #[test]
    fn flops_count_both_mul_and_add() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}
