//! Sequential composition of layers into a trainable network.

use crate::error::NnError;
use crate::gemm::GemmScratch;
use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::Result;

/// Caller-owned scratch buffers for the immutable inference path.
///
/// [`Sequential::infer_into`] ping-pongs layer activations between two
/// reusable tensors instead of allocating a fresh output per layer, and
/// [`Sequential::infer_batch`] additionally reuses a stacking buffer for
/// batched observations.  Keep one `InferScratch` per worker (or per
/// evaluation loop) and the whole greedy-rollout hot path stops allocating
/// once the buffers reach their steady-state capacity.
#[derive(Debug, Clone, Default)]
pub struct InferScratch {
    input: Tensor,
    ping: Tensor,
    pong: Tensor,
    gemm: GemmScratch,
}

impl InferScratch {
    /// Creates an empty scratch; buffers grow on first use.  Inference
    /// through it runs at the default
    /// [`Precision::Reference`](crate::gemm::Precision::Reference) tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty scratch pinned to the given GEMM precision tier.
    ///
    /// The tier travels with the *inference state*, never with the network
    /// weights: the same `Sequential` produces Reference bits through one
    /// scratch and Fast bits through another.
    pub fn with_precision(precision: crate::gemm::Precision) -> Self {
        Self {
            gemm: GemmScratch::with_precision(precision),
            ..Self::default()
        }
    }

    /// The GEMM precision tier this scratch routes layers through.
    pub fn precision(&self) -> crate::gemm::Precision {
        self.gemm.precision()
    }

    /// Switches the GEMM precision tier; buffers are retained.
    pub fn set_precision(&mut self, precision: crate::gemm::Precision) {
        self.gemm.set_precision(precision);
    }
}

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// `Sequential` is the model type used for both the Q-network and the target
/// network in the BERRY DQN, and for the bit-error-perturbed snapshots the
/// robust trainer builds each step.  Cloning a `Sequential` deep-copies every
/// layer (parameters and gradients), which is exactly what target-network
/// synchronization and perturbation snapshots need.
///
/// # Examples
///
/// ```
/// use berry_nn::network::Sequential;
/// use berry_nn::layer::{Dense, Relu};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 16, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(16, 2, &mut rng));
/// assert_eq!(net.param_count(), 4 * 16 + 16 + 16 * 2 + 2);
/// ```
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer to the end of the network.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers (including parameter-free activations).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs a forward pass through every layer, caching activations for a
    /// subsequent [`Sequential::backward`] call.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Runs an immutable, cache-free forward pass through every layer,
    /// using the caller-owned scratch buffers, and returns a borrow of the
    /// final activations living inside `scratch`.
    ///
    /// The output is **bitwise identical** to [`Sequential::forward`] on the
    /// same input (each layer's [`Layer::infer`] pins that contract), but
    /// the network is only borrowed — which is what lets hundreds of
    /// data-parallel fault-map workers share one policy by reference — and
    /// nothing is allocated once the scratch has warmed up.
    #[must_use = "the output lives in the scratch; dropping it wastes the whole forward pass"]
    pub fn infer_into<'s>(&self, input: &Tensor, scratch: &'s mut InferScratch) -> &'s Tensor {
        let in_ping =
            self.infer_ping_pong(input, &mut scratch.ping, &mut scratch.pong, &mut scratch.gemm);
        if in_ping {
            &scratch.ping
        } else {
            &scratch.pong
        }
    }

    /// Convenience wrapper around [`Sequential::infer_into`] that owns its
    /// scratch and returns an owned output tensor.
    ///
    /// This allocates a fresh [`InferScratch`] (activation buffers *and*
    /// im2col patch buffers) and clones the output on **every call** — fine
    /// for one-off probes and doctests, wasteful anywhere warm.  Hot loops
    /// (rollouts, sweeps, per-step action selection) must hold one scratch
    /// and call [`Sequential::infer_into`] or [`Sequential::infer_batch`]
    /// instead, which is what every in-repo evaluation path does.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut scratch = InferScratch::new();
        self.infer_into(input, &mut scratch).clone()
    }

    /// Stacks per-sample observations (all sharing one shape) into a single
    /// `[n, ...]` batch inside the scratch's input buffer and runs one
    /// immutable inference pass over the whole stack — the batched
    /// dense/conv forward used by greedy rollouts over stacked
    /// observations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] if `observations` is empty or
    /// the observations do not all share the same shape.
    #[must_use = "the batched Q-values live in the scratch; dropping them wastes the forward pass"]
    pub fn infer_batch<'s>(
        &self,
        observations: &[&Tensor],
        scratch: &'s mut InferScratch,
    ) -> Result<&'s Tensor> {
        let first = observations.first().ok_or_else(|| {
            NnError::InvalidArgument("infer_batch requires at least one observation".into())
        })?;
        let mut batched_shape = Vec::with_capacity(first.rank() + 1);
        batched_shape.push(observations.len());
        batched_shape.extend_from_slice(first.shape());
        scratch.input.reset(&batched_shape);
        let per_obs = first.len();
        for (i, obs) in observations.iter().enumerate() {
            if obs.shape() != first.shape() {
                return Err(NnError::InvalidArgument(format!(
                    "infer_batch: observation {i} has shape {:?}, expected {:?}",
                    obs.shape(),
                    first.shape()
                )));
            }
            scratch.input.data_mut()[i * per_obs..(i + 1) * per_obs]
                .copy_from_slice(obs.data());
        }
        let InferScratch {
            input,
            ping,
            pong,
            gemm,
        } = scratch;
        let in_ping = self.infer_ping_pong(input, ping, pong, gemm);
        Ok(if in_ping { &*ping } else { &*pong })
    }

    /// Shared ping-pong driver: runs the layer stack through the shared
    /// im2col/GEMM inference core, returning `true` when the final
    /// activations ended up in `ping` and `false` for `pong`.
    fn infer_ping_pong(
        &self,
        input: &Tensor,
        ping: &mut Tensor,
        pong: &mut Tensor,
        gemm: &mut GemmScratch,
    ) -> bool {
        if self.layers.is_empty() {
            ping.copy_from(input);
            return true;
        }
        let mut in_ping = false;
        for (i, layer) in self.layers.iter().enumerate() {
            if i == 0 {
                layer.infer_with(input, ping, gemm);
                in_ping = true;
            } else if in_ping {
                layer.infer_with(ping, pong, gemm);
                in_ping = false;
            } else {
                layer.infer_with(pong, ping, gemm);
                in_ping = true;
            }
        }
        in_ping
    }

    /// Runs a backward pass, accumulating parameter gradients in every layer
    /// and returning the gradient with respect to the network input.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Sequential::forward`].
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Resets every layer's accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Borrowed views of every trainable parameter tensor, layer by layer.
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable views of every trainable parameter tensor, layer by layer.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Borrowed views of every accumulated gradient tensor, matching the
    /// order of [`Sequential::params`].
    pub fn grads(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.grads()).collect()
    }

    /// Mutable views of every accumulated gradient tensor, matching the
    /// order of [`Sequential::params`].
    pub fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(|l| l.grads_mut()).collect()
    }

    /// Accumulates `scale ×` the gradients of `source` into this network's
    /// gradients.
    ///
    /// This is the glue for BERRY's dual-pass update (Algorithm 1 line 19):
    /// the perturbed pass runs on a *copy* of the Q-network whose quantized
    /// weights have bit errors injected, and its gradients `˜∆` are then
    /// added onto the clean gradients `∆` accumulated here before a single
    /// optimizer step applies `θ ← θ − α(∆ + ˜∆)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the two networks do not share an identical
    /// parameter structure.
    pub fn add_gradients_from(&mut self, source: &Sequential, scale: f32) -> Result<()> {
        let src: Vec<Tensor> = source.grads().into_iter().cloned().collect();
        let dst = self.grads_mut();
        if src.len() != dst.len() {
            return Err(NnError::InvalidArgument(format!(
                "gradient tensor count mismatch: {} vs {}",
                dst.len(),
                src.len()
            )));
        }
        for (d, s) in dst.into_iter().zip(src.iter()) {
            d.add_scaled(s, scale)?;
        }
        Ok(())
    }

    /// Total number of trainable scalar parameters.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Approximate in-memory size of the parameters in bytes, assuming the
    /// given bit width per parameter (8 for the quantized deployment the
    /// paper assumes, 32 for the training representation).
    pub fn param_bytes(&self, bits_per_param: usize) -> usize {
        (self.param_count() * bits_per_param).div_ceil(8)
    }

    /// Copies all parameter values from `source` into `self`.
    ///
    /// This is the target-network synchronization step (`θ⁻ ← θ`, Algorithm 1
    /// line 21).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the two networks do not have an
    /// identical parameter structure.
    pub fn copy_params_from(&mut self, source: &Sequential) -> Result<()> {
        let src: Vec<Tensor> = source.params().into_iter().cloned().collect();
        let dst = self.params_mut();
        if src.len() != dst.len() {
            return Err(NnError::InvalidArgument(format!(
                "parameter tensor count mismatch: {} vs {}",
                dst.len(),
                src.len()
            )));
        }
        for (d, s) in dst.into_iter().zip(src.iter()) {
            if d.shape() != s.shape() {
                return Err(NnError::ShapeMismatch {
                    left: d.shape().to_vec(),
                    right: s.shape().to_vec(),
                });
            }
            d.data_mut().copy_from_slice(s.data());
        }
        Ok(())
    }

    /// Serializes all parameters into a single flat `f32` buffer
    /// (layer order, row-major within each tensor).
    pub fn to_flat_weights(&self) -> Vec<f32> {
        self.params()
            .iter()
            .flat_map(|p| p.data().iter().copied())
            .collect()
    }

    /// Restores parameters from a flat buffer produced by
    /// [`Sequential::to_flat_weights`] on a structurally identical network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeDataMismatch`] if the buffer length does not
    /// match the network's parameter count.
    pub fn load_flat_weights(&mut self, weights: &[f32]) -> Result<()> {
        if weights.len() != self.param_count() {
            return Err(NnError::ShapeDataMismatch {
                expected: self.param_count(),
                actual: weights.len(),
            });
        }
        let mut offset = 0usize;
        for p in self.params_mut() {
            let n = p.len();
            p.data_mut().copy_from_slice(&weights[offset..offset + n]);
            offset += n;
        }
        Ok(())
    }

    /// A short human-readable summary: layer names and parameter counts.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, layer) in self.layers.iter().enumerate() {
            out.push_str(&format!(
                "{:>2}: {:<10} params={}\n",
                i,
                layer.name(),
                layer.param_count()
            ));
        }
        out.push_str(&format!("total params: {}", self.param_count()));
        out
    }

    /// Names of the layers in order (useful for diagnostics and tests).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layer_names())
            .field("param_count", &self.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, Dense, Flatten, Relu};
    use crate::loss::mse_loss;
    use crate::optim::{Optimizer, Sgd};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn small_mlp(seed: u64) -> Sequential {
        let mut r = rng(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 8, &mut r));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut r));
        net
    }

    #[test]
    fn forward_through_conv_stack_has_expected_shape() {
        let mut r = rng(0);
        let mut net = Sequential::new();
        net.push(Conv2d::new(2, 4, 3, 1, 1, &mut r));
        net.push(Relu::new());
        net.push(Conv2d::new(4, 8, 3, 2, 1, &mut r));
        net.push(Relu::new());
        net.push(Flatten::new());
        net.push(Dense::new(8 * 5 * 5, 16, &mut r));
        net.push(Relu::new());
        net.push(Dense::new(16, 25, &mut r));
        let x = Tensor::zeros(&[3, 2, 9, 9]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[3, 25]);
    }

    #[test]
    fn infer_matches_forward_bitwise_through_conv_stack() {
        let mut r = rng(30);
        let mut net = Sequential::new();
        net.push(Conv2d::new(2, 4, 3, 1, 1, &mut r));
        net.push(Relu::new());
        net.push(Conv2d::new(4, 8, 3, 2, 1, &mut r));
        net.push(Relu::new());
        net.push(Flatten::new());
        net.push(Dense::new(8 * 5 * 5, 16, &mut r));
        net.push(Relu::new());
        net.push(Dense::new(16, 25, &mut r));
        let x = Tensor::rand_uniform(&[3, 2, 9, 9], -1.0, 1.0, &mut r);
        let expected = net.forward(&x);
        let mut scratch = InferScratch::new();
        let got = net.infer_into(&x, &mut scratch);
        assert_eq!(got.shape(), expected.shape());
        for (a, b) in got.data().iter().zip(expected.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The owned-output convenience agrees too.
        assert_eq!(net.infer(&x).data(), expected.data());
    }

    #[test]
    fn infer_batch_stacks_observations() {
        let mut r = rng(31);
        let mut net = small_mlp(32);
        let rows: Vec<Tensor> = (0..4)
            .map(|_| Tensor::rand_uniform(&[3], -1.0, 1.0, &mut r))
            .collect();
        let mut scratch = InferScratch::new();
        let refs: Vec<&Tensor> = rows.iter().collect();
        let batched = net.infer_batch(&refs, &mut scratch).unwrap().clone();
        assert_eq!(batched.shape(), &[4, 2]);
        // Row-by-row forward over a [1, 3] batch matches the stacked pass.
        for (i, row) in rows.iter().enumerate() {
            let single = net.forward(&row.reshape(&[1, 3]).unwrap());
            for (a, b) in batched.row(i).data().iter().zip(single.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Empty and ragged stacks are rejected.
        assert!(net.infer_batch(&[], &mut scratch).is_err());
        let ragged = Tensor::zeros(&[5]);
        assert!(net.infer_batch(&[&rows[0], &ragged], &mut scratch).is_err());
    }

    #[test]
    fn infer_on_empty_network_is_identity() {
        let net = Sequential::new();
        let x = Tensor::from_vec(vec![2], vec![1.5, -2.5]).unwrap();
        assert_eq!(net.infer(&x).data(), x.data());
    }

    #[test]
    fn param_count_and_bytes() {
        let net = small_mlp(1);
        assert_eq!(net.param_count(), 3 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(net.param_bytes(8), net.param_count());
        assert_eq!(net.param_bytes(32), net.param_count() * 4);
    }

    #[test]
    fn copy_params_from_synchronizes_networks() {
        let mut a = small_mlp(2);
        let mut b = small_mlp(3);
        assert_ne!(a.to_flat_weights(), b.to_flat_weights());
        b.copy_params_from(&a).unwrap();
        assert_eq!(a.to_flat_weights(), b.to_flat_weights());
        // and the copy is deep: training `a` further does not change `b`.
        let x = Tensor::ones(&[1, 3]);
        let y = Tensor::ones(&[1, 2]);
        let mut opt = Sgd::new(0.1);
        let pred = a.forward(&x);
        let (_, grad) = mse_loss(&pred, &y);
        a.backward(&grad);
        opt.step(&mut a);
        assert_ne!(a.to_flat_weights(), b.to_flat_weights());
    }

    #[test]
    fn copy_params_from_rejects_structural_mismatch() {
        let mut a = small_mlp(4);
        let mut r = rng(5);
        let mut b = Sequential::new();
        b.push(Dense::new(3, 4, &mut r));
        assert!(a.copy_params_from(&b).is_err());
    }

    #[test]
    fn flat_weights_round_trip() {
        let mut a = small_mlp(6);
        let w = a.to_flat_weights();
        let mut b = small_mlp(7);
        b.load_flat_weights(&w).unwrap();
        assert_eq!(a.to_flat_weights(), b.to_flat_weights());
        // identical inputs now produce identical outputs
        let x = Tensor::from_vec(vec![1, 3], vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
        assert!(b.load_flat_weights(&w[..3]).is_err());
    }

    #[test]
    fn cloned_network_is_independent() {
        let mut a = small_mlp(8);
        let b = a.clone();
        let x = Tensor::ones(&[1, 3]);
        let y = Tensor::zeros(&[1, 2]);
        let mut opt = Sgd::new(0.5);
        for _ in 0..5 {
            let pred = a.forward(&x);
            let (_, grad) = mse_loss(&pred, &y);
            a.backward(&grad);
            opt.step(&mut a);
            a.zero_grad();
        }
        assert_ne!(a.to_flat_weights(), b.to_flat_weights());
    }

    #[test]
    fn backward_produces_input_gradient_of_input_shape() {
        let mut net = small_mlp(9);
        let x = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng(10));
        let y = net.forward(&x);
        let g = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn summary_lists_layers_and_total() {
        let net = small_mlp(11);
        let s = net.summary();
        assert!(s.contains("Dense"));
        assert!(s.contains("Relu"));
        assert!(s.contains("total params"));
        assert_eq!(net.layer_names(), vec!["Dense", "Relu", "Dense"]);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let net = small_mlp(12);
        let dbg = format!("{net:?}");
        assert!(dbg.contains("Sequential"));
        assert!(dbg.contains("param_count"));
    }

    #[test]
    fn add_gradients_from_sums_per_parameter() {
        let mut a = small_mlp(20);
        let mut b = a.clone();
        let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng(21));
        let target = Tensor::zeros(&[2, 2]);
        let pred_a = a.forward(&x);
        let (_, grad_a) = mse_loss(&pred_a, &target);
        a.backward(&grad_a);
        let pred_b = b.forward(&x);
        let (_, grad_b) = mse_loss(&pred_b, &target);
        b.backward(&grad_b);
        // a and b are identical networks on identical data, so summing b's
        // gradients into a's must exactly double them.
        let before: Vec<f32> = a.grads().iter().flat_map(|g| g.data().to_vec()).collect();
        a.add_gradients_from(&b, 1.0).unwrap();
        let after: Vec<f32> = a.grads().iter().flat_map(|g| g.data().to_vec()).collect();
        for (x1, x2) in before.iter().zip(after.iter()) {
            assert!((x2 - 2.0 * x1).abs() < 1e-6);
        }
        // Structural mismatch is rejected.
        let mut r = rng(22);
        let mut other = Sequential::new();
        other.push(Dense::new(3, 4, &mut r));
        assert!(a.add_gradients_from(&other, 1.0).is_err());
    }

    #[test]
    fn gradient_check_through_whole_network() {
        let mut net = small_mlp(13);
        let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng(14));
        let target = Tensor::zeros(&[2, 2]);
        let pred = net.forward(&x);
        let (loss0, grad) = mse_loss(&pred, &target);
        net.backward(&grad);
        let analytic: Vec<f32> = net.grads().iter().flat_map(|g| g.data().to_vec()).collect();
        let weights = net.to_flat_weights();

        let eps = 1e-3;
        let mut max_err = 0.0f32;
        for idx in (0..weights.len()).step_by(5) {
            let mut w2 = weights.clone();
            w2[idx] += eps;
            let mut net2 = small_mlp(13);
            net2.load_flat_weights(&w2).unwrap();
            let pred2 = net2.forward(&x);
            let (loss2, _) = mse_loss(&pred2, &target);
            let numeric = (loss2 - loss0) / eps;
            max_err = max_err.max((numeric - analytic[idx]).abs());
        }
        assert!(max_err < 2e-2, "gradient check error {max_err}");
    }
}
