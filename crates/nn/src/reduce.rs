//! Fixed-order floating-point reductions.
//!
//! Float addition is not associative, so a reduction's *order* is part of
//! the workspace's bit-exactness contract: golden-pinned statistics stay
//! byte-identical only if every sum on a pinned path folds its terms in
//! one documented order. These helpers make that order explicit — a
//! strictly sequential left fold over the input, independent of worker
//! count, SIMD width or iterator adaptor internals. The
//! `bare-float-reduction` house lint steers `// lint: pinned-path` files
//! here instead of bare `.sum::<f32>()` calls.

/// Sequential left-fold sum of `f32` terms, in iteration order.
///
/// Bitwise-equivalent to `iter.sum::<f32>()` on today's std (also a
/// sequential left fold), but the order is *contractual* here rather
/// than an implementation detail.
pub fn sum_f32_in_order<I: IntoIterator<Item = f32>>(terms: I) -> f32 {
    let mut acc = 0.0f32;
    for term in terms {
        acc += term;
    }
    acc
}

/// Sequential left-fold sum of `f64` terms, in iteration order.
pub fn sum_f64_in_order<I: IntoIterator<Item = f64>>(terms: I) -> f64 {
    let mut acc = 0.0f64;
    for term in terms {
        acc += term;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_std_sum_bitwise() {
        let xs = [0.1f32, 1e8, -1e8, 0.2, 3.7, -0.05];
        assert_eq!(
            sum_f32_in_order(xs.iter().copied()).to_bits(),
            xs.iter().copied().sum::<f32>().to_bits()
        );
        let ys = [0.1f64, 1e16, -1e16, 0.2, 3.7, -0.05];
        assert_eq!(
            sum_f64_in_order(ys.iter().copied()).to_bits(),
            ys.iter().copied().sum::<f64>().to_bits()
        );
    }

    #[test]
    fn order_matters_and_is_preserved() {
        // The catastrophic-cancellation triple: (0.1 + 1e16) - 1e16 ≠
        // 0.1 + (1e16 - 1e16). The helper must fold left-to-right.
        let forward = sum_f64_in_order([0.1, 1e16, -1e16]);
        let reordered = sum_f64_in_order([1e16, -1e16, 0.1]);
        assert_ne!(forward.to_bits(), reordered.to_bits());
        assert_eq!(reordered, 0.1);
    }

    #[test]
    fn empty_sum_is_positive_zero() {
        assert_eq!(sum_f32_in_order(std::iter::empty()).to_bits(), 0.0f32.to_bits());
        assert_eq!(sum_f64_in_order(std::iter::empty()).to_bits(), 0.0f64.to_bits());
    }
}
