//! Weight-initialization schemes.
//!
//! The BERRY policies (C3F2 and C5F4 convolutional Q-networks) use
//! He/Kaiming initialization for ReLU layers and Xavier/Glorot for linear
//! output heads; both are provided here as free functions over [`Tensor`].

use crate::tensor::Tensor;

/// He (Kaiming) normal initialization: `std = sqrt(2 / fan_in)`.
///
/// Appropriate for layers followed by a ReLU non-linearity.
///
/// # Examples
///
/// ```
/// use berry_nn::init::he_normal;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = he_normal(&[16, 8], 8, &mut rng);
/// assert_eq!(w.shape(), &[16, 8]);
/// ```
pub fn he_normal<R: rand::Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::rand_normal(shape, 0.0, std, rng)
}

/// Xavier (Glorot) uniform initialization over
/// `[-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))]`.
///
/// Appropriate for linear output heads (e.g. the Q-value head of a DQN).
pub fn xavier_uniform<R: rand::Rng + ?Sized>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_normal_std_tracks_fan_in() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = he_normal(&[20_000], 50, &mut rng);
        let mean = w.mean();
        let var = w.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / w.len() as f32;
        let expected_var = 2.0 / 50.0;
        assert!((var - expected_var).abs() < 0.2 * expected_var, "var {var}");
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let w = xavier_uniform(&[1000], 30, 10, &mut rng);
        let bound = (6.0f32 / 40.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= bound));
        // Values should actually spread out, not collapse to zero.
        assert!(w.abs_max() > 0.5 * bound);
    }

    #[test]
    fn zero_fan_in_does_not_divide_by_zero() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let w = he_normal(&[4], 0, &mut rng);
        assert!(w.data().iter().all(|v| v.is_finite()));
        let x = xavier_uniform(&[4], 0, 0, &mut rng);
        assert!(x.data().iter().all(|v| v.is_finite()));
    }
}
