//! First-order optimizers operating on a [`Sequential`] network.
//!
//! The BERRY update (Algorithm 1 line 19) is
//! `θ(t+1) = θ(t) − α (∆(t) + ˜∆(t))`: because gradients accumulate across
//! backward passes in this crate, running the clean and perturbed backward
//! passes and then a single optimizer step implements that sum directly.

use crate::network::Sequential;
use crate::tensor::Tensor;

/// An optimizer that updates a network's parameters from its accumulated
/// gradients.
pub trait Optimizer: Send {
    /// Applies one update step using the gradients currently accumulated in
    /// `net`.  Does **not** zero the gradients; call
    /// [`Sequential::zero_grad`] afterwards.
    fn step(&mut self, net: &mut Sequential);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and gradient clipping.
///
/// # Examples
///
/// ```
/// use berry_nn::optim::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.01).with_momentum(0.9).with_grad_clip(1.0);
/// assert_eq!(opt.learning_rate(), 0.01);
/// opt.set_learning_rate(0.005);
/// assert_eq!(opt.learning_rate(), 0.005);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    grad_clip: Option<f32>,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates a plain SGD optimizer with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            grad_clip: None,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum with coefficient `momentum`.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is not in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Enables element-wise gradient clipping to `[-clip, clip]`.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is not strictly positive.
    pub fn with_grad_clip(mut self, clip: f32) -> Self {
        assert!(clip > 0.0, "gradient clip must be positive");
        self.grad_clip = Some(clip);
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential) {
        let grads: Vec<Tensor> = net.grads().into_iter().cloned().collect();
        if self.momentum > 0.0 && self.velocity.len() != grads.len() {
            self.velocity = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        let params = net.params_mut();
        debug_assert_eq!(params.len(), grads.len());
        for (i, (param, grad)) in params.into_iter().zip(grads.iter()).enumerate() {
            let mut g = grad.clone();
            if let Some(clip) = self.grad_clip {
                g.clamp_in_place(-clip, clip);
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.scale_in_place(self.momentum);
                v.add_scaled(&g, 1.0).expect("velocity matches gradient");
                param
                    .add_scaled(v, -self.lr)
                    .expect("parameter matches velocity");
            } else {
                param
                    .add_scaled(&g, -self.lr)
                    .expect("parameter matches gradient");
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam optimizer with bias correction and optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    grad_clip: Option<f32>,
    step_count: u64,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and default
    /// coefficients (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            grad_clip: None,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Overrides the exponential-decay coefficients.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is outside `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Enables element-wise gradient clipping to `[-clip, clip]`.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is not strictly positive.
    pub fn with_grad_clip(mut self, clip: f32) -> Self {
        assert!(clip > 0.0, "gradient clip must be positive");
        self.grad_clip = Some(clip);
        self
    }

    /// Number of optimizer steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Sequential) {
        let grads: Vec<Tensor> = net.grads().into_iter().cloned().collect();
        if self.first_moment.len() != grads.len() {
            self.first_moment = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
            self.second_moment = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);

        let params = net.params_mut();
        for (i, (param, grad)) in params.into_iter().zip(grads.iter()).enumerate() {
            let mut g = grad.clone();
            if let Some(clip) = self.grad_clip {
                g.clamp_in_place(-clip, clip);
            }
            let m = &mut self.first_moment[i];
            let v = &mut self.second_moment[i];
            for ((m_i, v_i), g_i) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data().iter())
            {
                *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * g_i;
                *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * g_i * g_i;
            }
            for ((p_i, m_i), v_i) in param
                .data_mut()
                .iter_mut()
                .zip(m.data().iter())
                .zip(v.data().iter())
            {
                let m_hat = m_i / bias1;
                let v_hat = v_i / bias2;
                *p_i -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use crate::loss::mse_loss;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn toy_net(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(16, 1, &mut rng));
        net
    }

    fn train_step(net: &mut Sequential, opt: &mut dyn Optimizer, x: &Tensor, y: &Tensor) -> f32 {
        let pred = net.forward(x);
        let (loss, grad) = mse_loss(&pred, y);
        net.backward(&grad);
        opt.step(net);
        net.zero_grad();
        loss
    }

    #[test]
    fn sgd_reduces_loss_on_regression() {
        let mut net = toy_net(1);
        let mut opt = Sgd::new(0.05);
        let x = Tensor::from_vec(vec![4, 2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        let y = Tensor::from_vec(vec![4, 1], vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let first = train_step(&mut net, &mut opt, &x, &y);
        let mut last = first;
        for _ in 0..300 {
            last = train_step(&mut net, &mut opt, &x, &y);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn momentum_sgd_converges() {
        let mut net = toy_net(2);
        let mut opt = Sgd::new(0.02).with_momentum(0.9);
        let x = Tensor::from_vec(vec![2, 2], vec![0.5, -0.5, -0.25, 0.75]).unwrap();
        let y = Tensor::from_vec(vec![2, 1], vec![1.0, -1.0]).unwrap();
        let first = train_step(&mut net, &mut opt, &x, &y);
        let mut last = first;
        for _ in 0..200 {
            last = train_step(&mut net, &mut opt, &x, &y);
        }
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn adam_converges_faster_than_needed_tolerance() {
        let mut net = toy_net(3);
        let mut opt = Adam::new(0.01);
        let x = Tensor::from_vec(vec![2, 2], vec![0.5, -0.5, -0.25, 0.75]).unwrap();
        let y = Tensor::from_vec(vec![2, 1], vec![0.3, -0.7]).unwrap();
        let mut last = f32::MAX;
        for _ in 0..300 {
            last = train_step(&mut net, &mut opt, &x, &y);
        }
        assert!(last < 1e-3, "final Adam loss {last}");
        assert_eq!(opt.step_count(), 300);
    }

    #[test]
    fn grad_clip_limits_update_magnitude() {
        let mut net = toy_net(4);
        let before: Vec<f32> = net.params().iter().flat_map(|p| p.data().to_vec()).collect();
        // Huge targets produce huge gradients; clipping keeps the step bounded.
        let mut opt = Sgd::new(0.1).with_grad_clip(0.5);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = Tensor::from_vec(vec![1, 1], vec![1e6]).unwrap();
        train_step(&mut net, &mut opt, &x, &y);
        let after: Vec<f32> = net.params().iter().flat_map(|p| p.data().to_vec()).collect();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((a - b).abs() <= 0.1 * 0.5 + 1e-6);
        }
    }

    #[test]
    fn set_learning_rate_round_trips() {
        let mut sgd = Sgd::new(0.1);
        sgd.set_learning_rate(0.02);
        assert_eq!(sgd.learning_rate(), 0.02);
        let mut adam = Adam::new(0.1).with_betas(0.8, 0.99);
        adam.set_learning_rate(0.001);
        assert_eq!(adam.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_panics() {
        let _ = Sgd::new(0.0);
    }
}
