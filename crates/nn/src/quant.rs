//! Per-layer symmetric fixed-point quantization.
//!
//! The paper's fault model (Section IV, "Fault injection") injects bit
//! errors "following per-layer 8-bit quantization with rounding" into the
//! parameters held in on-chip SRAM.  This module provides that integer view:
//! every parameter tensor is quantized independently with a symmetric scale
//! `s = max|w| / (2^{bits-1} - 1)`, stored as raw two's-complement bytes so
//! that the `berry-faults` crate can flip individual bits, and dequantized
//! back into `f32` weights for inference or the perturbed training pass.

use crate::error::NnError;
use crate::network::Sequential;
use crate::tensor::Tensor;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Maximum supported quantization width in bits.
pub const MAX_BITS: u8 = 8;

/// A quantized view of a single parameter tensor.
///
/// Values are stored as the two's-complement byte pattern of the signed
/// quantized integer, so external code (the bit-error injector) can operate
/// on raw bytes without any unsafe casting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    shape: Vec<usize>,
    scale: f32,
    bits: u8,
    values: Vec<u8>,
}

impl QuantizedTensor {
    /// Quantizes a tensor with a symmetric per-tensor scale and rounding.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] if `bits` is zero or greater
    /// than [`MAX_BITS`].
    pub fn quantize(tensor: &Tensor, bits: u8) -> Result<Self> {
        if bits == 0 || bits > MAX_BITS {
            return Err(NnError::InvalidArgument(format!(
                "quantization width must be in 1..={MAX_BITS}, got {bits}"
            )));
        }
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let abs_max = tensor.abs_max();
        // An all-zero tensor carries no information, so its scale is zero and
        // bit errors in its (all-zero) payload dequantize back to zero.  This
        // mirrors range-based quantization, where the stored range of a
        // constant-zero tensor collapses.
        let scale = if abs_max > 0.0 { abs_max / qmax } else { 0.0 };
        let values = tensor
            .data()
            .iter()
            .map(|&w| {
                if scale == 0.0 {
                    return 0u8;
                }
                let q = (w / scale).round().clamp(-qmax, qmax) as i8;
                q as u8
            })
            .collect();
        Ok(Self {
            shape: tensor.shape().to_vec(),
            scale,
            bits,
            values,
        })
    }

    /// Reconstructs the floating-point tensor from the quantized bytes.
    pub fn dequantize(&self) -> Tensor {
        let data = self
            .values
            .iter()
            .map(|&b| (b as i8) as f32 * self.scale)
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
            .expect("quantized tensor preserves element count")
    }

    /// Dequantizes directly into a caller-owned slice (the allocation-free
    /// variant used by the perturbation hot path).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have exactly `self.len()` elements.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len(), "dequantize_into length mismatch");
        for (o, &b) in out.iter_mut().zip(self.values.iter()) {
            *o = (b as i8) as f32 * self.scale;
        }
    }

    /// Re-quantizes `tensor` into this snapshot in place (fresh scale and
    /// bytes, reusing the byte buffer), producing exactly the same state as
    /// [`QuantizedTensor::quantize`] at the same width.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `tensor`'s shape differs from
    /// the snapshot's.
    pub fn requantize_from(&mut self, tensor: &Tensor) -> Result<()> {
        if tensor.shape() != self.shape.as_slice() {
            return Err(NnError::ShapeMismatch {
                left: self.shape.clone(),
                right: tensor.shape().to_vec(),
            });
        }
        let qmax = ((1i32 << (self.bits - 1)) - 1) as f32;
        let abs_max = tensor.abs_max();
        let scale = if abs_max > 0.0 { abs_max / qmax } else { 0.0 };
        self.scale = scale;
        for (v, &w) in self.values.iter_mut().zip(tensor.data().iter()) {
            *v = if scale == 0.0 {
                0u8
            } else {
                (w / scale).round().clamp(-qmax, qmax) as i8 as u8
            };
        }
        Ok(())
    }

    /// Copies another snapshot's payload (scale and bytes) into this one,
    /// reusing this snapshot's allocations.
    ///
    /// # Errors
    ///
    /// Returns an error if the two snapshots differ in shape or bit width.
    pub fn copy_payload_from(&mut self, other: &QuantizedTensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        if self.bits != other.bits {
            return Err(NnError::InvalidArgument(format!(
                "bit width mismatch: {} vs {}",
                self.bits, other.bits
            )));
        }
        self.scale = other.scale;
        self.values.copy_from_slice(&other.values);
        Ok(())
    }

    /// The quantization scale (`f32` per integer step).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The quantization width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Shape of the original tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of quantized values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tensor holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of bits occupied in the (modelled) SRAM.
    pub fn total_bits(&self) -> usize {
        self.values.len() * self.bits as usize
    }

    /// Immutable view of the raw two's-complement bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.values
    }

    /// Mutable view of the raw two's-complement bytes — the surface into
    /// which low-voltage bit errors are injected.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.values
    }

    /// Maximum absolute quantization error for the given source tensor, in
    /// the original floating-point units.
    ///
    /// # Panics
    ///
    /// Panics if `original` has a different number of elements.
    pub fn max_error(&self, original: &Tensor) -> f32 {
        assert_eq!(original.len(), self.len());
        let deq = self.dequantize();
        deq.data()
            .iter()
            .zip(original.data().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

/// A quantized snapshot of every parameter tensor in a network.
///
/// # Examples
///
/// ```
/// use berry_nn::network::Sequential;
/// use berry_nn::layer::Dense;
/// use berry_nn::quant::QuantizedNetwork;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), berry_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 2, &mut rng));
/// let snapshot = QuantizedNetwork::from_network(&net, 8)?;
/// let mut copy = net.clone();
/// snapshot.write_to_network(&mut copy)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedNetwork {
    tensors: Vec<QuantizedTensor>,
    bits: u8,
}

impl QuantizedNetwork {
    /// Quantizes every parameter tensor of `net` at the given bit width.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] if the bit width is unsupported.
    pub fn from_network(net: &Sequential, bits: u8) -> Result<Self> {
        let tensors = net
            .params()
            .iter()
            .map(|p| QuantizedTensor::quantize(p, bits))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { tensors, bits })
    }

    /// Writes the (possibly perturbed) quantized values back into `net`,
    /// replacing its floating-point parameters with their dequantized
    /// counterparts.
    ///
    /// # Errors
    ///
    /// Returns an error if `net` does not structurally match the snapshot.
    pub fn write_to_network(&self, net: &mut Sequential) -> Result<()> {
        let params = net.params_mut();
        if params.len() != self.tensors.len() {
            return Err(NnError::InvalidArgument(format!(
                "network has {} parameter tensors, snapshot has {}",
                params.len(),
                self.tensors.len()
            )));
        }
        for (p, q) in params.into_iter().zip(self.tensors.iter()) {
            if p.shape() != q.shape() {
                return Err(NnError::ShapeMismatch {
                    left: p.shape().to_vec(),
                    right: q.shape().to_vec(),
                });
            }
            q.dequantize_into(p.data_mut());
        }
        Ok(())
    }

    /// Re-quantizes every parameter tensor of `net` into this snapshot in
    /// place, reusing all allocations — the state afterwards is identical to
    /// a fresh [`QuantizedNetwork::from_network`] at the same width.
    ///
    /// # Errors
    ///
    /// Returns an error if `net` does not structurally match the snapshot.
    pub fn requantize_from(&mut self, net: &Sequential) -> Result<()> {
        let params = net.params();
        if params.len() != self.tensors.len() {
            return Err(NnError::InvalidArgument(format!(
                "network has {} parameter tensors, snapshot has {}",
                params.len(),
                self.tensors.len()
            )));
        }
        for (q, p) in self.tensors.iter_mut().zip(params) {
            q.requantize_from(p)?;
        }
        Ok(())
    }

    /// Copies another snapshot's payload (per-tensor scales and bytes) into
    /// this one, reusing this snapshot's allocations.  This is the cheap
    /// "reset to clean bytes" step each fault-map worker performs before
    /// injecting its flips.
    ///
    /// # Errors
    ///
    /// Returns an error if the two snapshots are not structurally identical.
    pub fn copy_payload_from(&mut self, other: &QuantizedNetwork) -> Result<()> {
        if self.tensors.len() != other.tensors.len() {
            return Err(NnError::InvalidArgument(format!(
                "snapshot has {} tensors, source has {}",
                self.tensors.len(),
                other.tensors.len()
            )));
        }
        for (d, s) in self.tensors.iter_mut().zip(other.tensors.iter()) {
            d.copy_payload_from(s)?;
        }
        Ok(())
    }

    /// The per-tensor quantized views.
    pub fn tensors(&self) -> &[QuantizedTensor] {
        &self.tensors
    }

    /// Mutable access to the per-tensor quantized views (for fault
    /// injection).
    pub fn tensors_mut(&mut self) -> &mut [QuantizedTensor] {
        &mut self.tensors
    }

    /// The quantization width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Total number of parameter bits held in the modelled SRAM.
    pub fn total_bits(&self) -> usize {
        self.tensors.iter().map(|t| t.total_bits()).sum()
    }

    /// Total number of quantized parameter values.
    pub fn total_values(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }
}

/// Quantizes and immediately dequantizes a network's parameters in place,
/// returning the number of parameter tensors processed.
///
/// This emulates running inference from quantized weights *without* bit
/// errors, i.e. the pure quantization noise floor of the deployment.
///
/// # Errors
///
/// Returns an error if the bit width is unsupported.
pub fn quantize_dequantize_in_place(net: &mut Sequential, bits: u8) -> Result<usize> {
    let snapshot = QuantizedNetwork::from_network(net, bits)?;
    snapshot.write_to_network(net)?;
    Ok(snapshot.tensors().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn small_net(seed: u64) -> Sequential {
        let mut r = rng(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(6, 12, &mut r));
        net.push(Relu::new());
        net.push(Dense::new(12, 4, &mut r));
        net
    }

    #[test]
    fn quantize_round_trip_error_is_bounded_by_half_scale() {
        let mut r = rng(1);
        let t = Tensor::rand_uniform(&[64], -2.0, 2.0, &mut r);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        let err = q.max_error(&t);
        assert!(err <= q.scale() * 0.5 + 1e-6, "error {err} vs scale {}", q.scale());
    }

    #[test]
    fn lower_bit_widths_have_larger_error() {
        let mut r = rng(2);
        let t = Tensor::rand_uniform(&[256], -1.0, 1.0, &mut r);
        let q8 = QuantizedTensor::quantize(&t, 8).unwrap();
        let q4 = QuantizedTensor::quantize(&t, 4).unwrap();
        assert!(q4.max_error(&t) > q8.max_error(&t));
        assert_eq!(q8.bits(), 8);
        assert_eq!(q4.bits(), 4);
    }

    #[test]
    fn rejects_unsupported_bit_widths() {
        let t = Tensor::ones(&[4]);
        assert!(QuantizedTensor::quantize(&t, 0).is_err());
        assert!(QuantizedTensor::quantize(&t, 9).is_err());
    }

    #[test]
    fn all_zero_tensor_quantizes_to_zero_bytes() {
        let t = Tensor::zeros(&[10]);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert!(q.bytes().iter().all(|&b| b == 0));
        assert_eq!(q.dequantize().data(), t.data());
    }

    #[test]
    fn extreme_value_maps_to_qmax() {
        let t = Tensor::from_vec(vec![2], vec![1.0, -1.0]).unwrap();
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert_eq!(q.bytes()[0] as i8, 127);
        assert_eq!(q.bytes()[1] as i8, -127);
    }

    #[test]
    fn byte_mutation_changes_dequantized_value() {
        let t = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let mut q = QuantizedTensor::quantize(&t, 8).unwrap();
        let before = q.dequantize();
        // Flip the most significant bit of the first value.
        q.bytes_mut()[0] ^= 0x80;
        let after = q.dequantize();
        assert_ne!(before.data()[0], after.data()[0]);
        assert_eq!(before.data()[1], after.data()[1]);
    }

    #[test]
    fn dequantize_into_matches_dequantize() {
        let mut r = rng(10);
        let t = Tensor::rand_uniform(&[33], -3.0, 3.0, &mut r);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        let mut out = vec![0.0f32; 33];
        q.dequantize_into(&mut out);
        assert_eq!(out.as_slice(), q.dequantize().data());
    }

    #[test]
    fn requantize_from_equals_fresh_quantization() {
        let mut r = rng(11);
        let a = Tensor::rand_uniform(&[40], -2.0, 2.0, &mut r);
        let b = Tensor::rand_uniform(&[40], -5.0, 5.0, &mut r);
        let mut q = QuantizedTensor::quantize(&a, 8).unwrap();
        q.requantize_from(&b).unwrap();
        let fresh = QuantizedTensor::quantize(&b, 8).unwrap();
        assert_eq!(q, fresh);
        // Shape mismatch is rejected.
        let wrong = Tensor::zeros(&[7]);
        assert!(q.requantize_from(&wrong).is_err());
    }

    #[test]
    fn network_requantize_and_payload_copy() {
        let net_a = small_net(12);
        let net_b = small_net(13);
        let mut snapshot = QuantizedNetwork::from_network(&net_a, 8).unwrap();
        snapshot.requantize_from(&net_b).unwrap();
        assert_eq!(snapshot, QuantizedNetwork::from_network(&net_b, 8).unwrap());

        // Payload copy restores the clean bytes after a mutation.
        let clean = snapshot.clone();
        snapshot.tensors_mut()[0].bytes_mut()[0] ^= 0xFF;
        assert_ne!(snapshot, clean);
        snapshot.copy_payload_from(&clean).unwrap();
        assert_eq!(snapshot, clean);

        // Structural mismatches are rejected.
        let mut r = rng(14);
        let mut other = Sequential::new();
        other.push(Dense::new(3, 3, &mut r));
        let other_snapshot = QuantizedNetwork::from_network(&other, 8).unwrap();
        assert!(snapshot.copy_payload_from(&other_snapshot).is_err());
        assert!(snapshot.requantize_from(&other).is_err());
    }

    #[test]
    fn network_snapshot_round_trip_is_close() {
        let net = small_net(3);
        let snapshot = QuantizedNetwork::from_network(&net, 8).unwrap();
        let mut copy = net.clone();
        snapshot.write_to_network(&mut copy).unwrap();
        for (a, b) in net.to_flat_weights().iter().zip(copy.to_flat_weights().iter()) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
        assert_eq!(snapshot.total_values(), net.param_count());
        assert_eq!(snapshot.total_bits(), net.param_count() * 8);
    }

    #[test]
    fn write_to_mismatched_network_fails() {
        let net = small_net(4);
        let snapshot = QuantizedNetwork::from_network(&net, 8).unwrap();
        let mut other = Sequential::new();
        let mut r = rng(5);
        other.push(Dense::new(3, 3, &mut r));
        assert!(snapshot.write_to_network(&mut other).is_err());
    }

    #[test]
    fn quantize_dequantize_in_place_keeps_behaviour_close() {
        let mut net = small_net(6);
        let x = Tensor::rand_uniform(&[1, 6], -1.0, 1.0, &mut rng(7));
        let before = net.forward(&x);
        let count = quantize_dequantize_in_place(&mut net, 8).unwrap();
        assert_eq!(count, 4); // two dense layers x (weight, bias)
        let after = net.forward(&x);
        for (a, b) in before.data().iter().zip(after.data().iter()) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    proptest! {
        #[test]
        fn prop_quantization_error_bounded(values in proptest::collection::vec(-10.0f32..10.0, 1..128), bits in 2u8..=8) {
            let n = values.len();
            let t = Tensor::from_vec(vec![n], values).unwrap();
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            // Symmetric quantization with rounding: error is at most half a step.
            prop_assert!(q.max_error(&t) <= 0.5 * q.scale() + 1e-5);
        }

        #[test]
        fn prop_dequantized_values_do_not_exceed_original_range(values in proptest::collection::vec(-10.0f32..10.0, 1..128)) {
            let n = values.len();
            let t = Tensor::from_vec(vec![n], values).unwrap();
            let q = QuantizedTensor::quantize(&t, 8).unwrap();
            let deq = q.dequantize();
            let bound = t.abs_max() + 1e-5;
            prop_assert!(deq.data().iter().all(|v| v.abs() <= bound));
        }
    }
}
