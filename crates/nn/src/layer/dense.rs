//! Fully-connected (dense) layer.

use super::Layer;
use crate::gemm::{gemm_nt_with, BiasMode, GemmScratch};
use crate::init;
use crate::tensor::Tensor;

/// A fully-connected layer computing `y = x · Wᵀ + b` on batched inputs.
///
/// * weights have shape `[out_features, in_features]`,
/// * bias has shape `[out_features]`,
/// * inputs have shape `[batch, in_features]` and outputs `[batch, out_features]`.
///
/// # Examples
///
/// ```
/// use berry_nn::layer::{Dense, Layer};
/// use berry_nn::tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), berry_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(3, 2, &mut rng);
/// let x = Tensor::from_vec(vec![4, 3], vec![0.1; 12])?;
/// let y = layer.forward(&x);
/// assert_eq!(y.shape(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `in_features` or `out_features` is zero.
    pub fn new<R: rand::Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0, "in_features must be positive");
        assert!(out_features > 0, "out_features must be positive");
        let weight = init::he_normal(&[out_features, in_features], in_features, rng);
        Self {
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            bias: Tensor::zeros(&[out_features]),
            weight,
            cached_input: None,
            in_features,
            out_features,
        }
    }

    /// Creates a dense layer with Xavier-uniform weights (appropriate for an
    /// output head that is not followed by a ReLU).
    ///
    /// # Panics
    ///
    /// Panics if `in_features` or `out_features` is zero.
    pub fn new_xavier<R: rand::Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_features > 0, "in_features must be positive");
        assert!(out_features > 0, "out_features must be positive");
        let weight = init::xavier_uniform(
            &[out_features, in_features],
            in_features,
            out_features,
            rng,
        );
        Self {
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            bias: Tensor::zeros(&[out_features]),
            weight,
            cached_input: None,
            in_features,
            out_features,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Borrow of the weight tensor (`[out_features, in_features]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Borrow of the bias tensor (`[out_features]`).
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 2, "Dense expects [batch, features] input");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Dense input feature mismatch"
        );
        let batch = input.shape()[0];
        let wt = self.weight.transpose().expect("weight is rank 2");
        let mut out = input.matmul(&wt).expect("checked dims");
        for n in 0..batch {
            for o in 0..self.out_features {
                *out.at2_mut(n, o) += self.bias.data()[o];
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.rank(), 2, "Dense expects [batch, features] input");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Dense input feature mismatch"
        );
        let batch = input.shape()[0];
        let (in_f, out_f) = (self.in_features, self.out_features);
        out.reset(&[batch, out_f]);
        let w = self.weight.data();
        let b = self.bias.data();
        let x = input.data();
        let y = out.data_mut();
        for n in 0..batch {
            let row = &x[n * in_f..(n + 1) * in_f];
            for o in 0..out_f {
                let w_row = &w[o * in_f..(o + 1) * in_f];
                // Accumulate over k ascending with the same zero-skip as
                // `Tensor::matmul`, then add the bias last, so the result is
                // bitwise identical to `forward`'s matmul-then-bias.
                let mut acc = 0.0f32;
                for (&xv, &wv) in row.iter().zip(w_row.iter()) {
                    if xv == 0.0 {
                        continue;
                    }
                    acc += xv * wv;
                }
                y[n * out_f + o] = acc + b[o];
            }
        }
    }

    fn infer_with(&self, input: &Tensor, out: &mut Tensor, gemm: &mut GemmScratch) {
        assert_eq!(input.rank(), 2, "Dense expects [batch, features] input");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Dense input feature mismatch"
        );
        let batch = input.shape()[0];
        out.reset(&[batch, self.out_features]);
        // y = x · Wᵀ + b through the tiered GEMM: both operands are
        // already stored as rows over the contraction dimension.  At the
        // default Reference tier each element accumulates k-ascending with
        // the bias added last, so the bits match the scalar `infer`
        // reference (exact-zero activations that the reference skips
        // contribute ±0.0, which cannot change a +0.0-initialized
        // accumulator); the Fast tier follows the scratch's precision
        // setting instead.
        let (packs, precision) = gemm.packs_precision();
        gemm_nt_with(
            batch,
            self.out_features,
            self.in_features,
            input.data(),
            self.weight.data(),
            BiasMode::ColAfter(self.bias.data()),
            out.data_mut(),
            precision,
            packs,
        );
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on Dense");
        assert_eq!(grad_output.rank(), 2, "Dense gradient must be rank 2");
        assert_eq!(grad_output.shape()[0], input.shape()[0]);
        assert_eq!(grad_output.shape()[1], self.out_features);

        // grad_w += dyᵀ · x   ([out, batch] x [batch, in] -> [out, in])
        let dyt = grad_output.transpose().expect("rank 2");
        let gw = dyt.matmul(input).expect("checked dims");
        self.grad_weight
            .add_scaled(&gw, 1.0)
            .expect("gradient shapes match");

        // grad_b += column sums of dy
        let batch = grad_output.shape()[0];
        for n in 0..batch {
            for o in 0..self.out_features {
                self.grad_bias.data_mut()[o] += grad_output.at2(n, o);
            }
        }

        // dx = dy · W   ([batch, out] x [out, in] -> [batch, in])
        grad_output.matmul(&self.weight).expect("checked dims")
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_weight, &mut self.grad_bias]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut r = rng();
        let mut layer = Dense::new(4, 3, &mut r);
        // Zero the weights so output equals the bias.
        layer.params_mut()[0].fill(0.0);
        layer.params_mut()[1].data_mut()[1] = 2.5;
        let x = Tensor::ones(&[2, 4]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.at2(0, 1), 2.5);
        assert_eq!(y.at2(1, 0), 0.0);
    }

    #[test]
    fn param_count_matches_dimensions() {
        let mut r = rng();
        let layer = Dense::new(10, 7, &mut r);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
        assert_eq!(layer.in_features(), 10);
        assert_eq!(layer.out_features(), 7);
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut r = rng();
        let mut layer = Dense::new(7, 5, &mut r);
        let mut x = Tensor::rand_uniform(&[3, 7], -1.0, 1.0, &mut r);
        // Include exact zeros so the matmul zero-skip is exercised.
        x.data_mut()[0] = 0.0;
        x.data_mut()[10] = 0.0;
        let expected = layer.forward(&x);
        let mut out = Tensor::default();
        layer.infer(&x, &mut out);
        assert_eq!(out.shape(), expected.shape());
        for (a, b) in out.data().iter().zip(expected.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gemm_path_matches_scalar_reference_bitwise_across_shapes() {
        let mut r = rng();
        let mut gemm = GemmScratch::new();
        for &(in_f, out_f, batch) in &[
            (1usize, 1usize, 1usize),
            (7, 5, 3),
            (13, 9, 8),
            (64, 25, 6),
            (200, 64, 11),
            (3, 17, 4),
        ] {
            let mut layer = Dense::new(in_f, out_f, &mut r);
            let mut x = Tensor::rand_uniform(&[batch, in_f], -1.0, 1.0, &mut r);
            // Exact zeros (and a negative zero) exercise the reference
            // path's zero-skip, which the GEMM must match bitwise anyway.
            x.data_mut()[0] = 0.0;
            if x.len() > 2 {
                x.data_mut()[2] = -0.0;
            }
            let expected = layer.forward(&x);
            let mut scalar = Tensor::default();
            layer.infer(&x, &mut scalar);
            let mut gemmed = Tensor::default();
            layer.infer_with(&x, &mut gemmed, &mut gemm);
            assert_eq!(gemmed.shape(), expected.shape());
            for (i, ((g, sc), f)) in gemmed
                .data()
                .iter()
                .zip(scalar.data())
                .zip(expected.data())
                .enumerate()
            {
                assert_eq!(
                    g.to_bits(),
                    sc.to_bits(),
                    "gemm vs scalar at ({in_f},{out_f},{batch}) elem {i}"
                );
                assert_eq!(
                    g.to_bits(),
                    f.to_bits(),
                    "gemm vs forward at ({in_f},{out_f},{batch}) elem {i}"
                );
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, &mut r);
        let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut r);
        // Loss = sum(forward(x)) so dL/dy = ones.
        let y = layer.forward(&x);
        let base_loss: f32 = y.sum();
        layer.backward(&Tensor::ones(&[2, 2]));
        let analytic = layer.grads()[0].clone();

        let eps = 1e-3;
        let mut max_err = 0.0f32;
        for idx in 0..layer.weight.len() {
            let mut perturbed = layer.clone();
            perturbed.params_mut()[0].data_mut()[idx] += eps;
            let y2 = perturbed.forward(&x);
            let num = (y2.sum() - base_loss) / eps;
            let ana = analytic.data()[idx];
            max_err = max_err.max((num - ana).abs());
        }
        assert!(max_err < 1e-2, "max finite-difference error {max_err}");
    }

    #[test]
    fn bias_gradient_is_batch_sum() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, &mut r);
        let x = Tensor::rand_uniform(&[5, 2], -1.0, 1.0, &mut r);
        layer.forward(&x);
        let dy = Tensor::ones(&[5, 2]);
        layer.backward(&dy);
        let gb = layer.grads()[1].clone();
        assert!((gb.data()[0] - 5.0).abs() < 1e-5);
        assert!((gb.data()[1] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, &mut r);
        let x = Tensor::ones(&[1, 2]);
        layer.forward(&x);
        layer.backward(&Tensor::ones(&[1, 2]));
        let g1 = layer.grads()[0].clone();
        layer.forward(&x);
        layer.backward(&Tensor::ones(&[1, 2]));
        let g2 = layer.grads()[0].clone();
        for (a, b) in g1.data().iter().zip(g2.data().iter()) {
            assert!((b - 2.0 * a).abs() < 1e-5);
        }
        layer.zero_grad();
        assert!(layer.grads()[0].data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn input_gradient_shape_matches_input() {
        let mut r = rng();
        let mut layer = Dense::new(6, 4, &mut r);
        let x = Tensor::rand_uniform(&[3, 6], -1.0, 1.0, &mut r);
        layer.forward(&x);
        let gx = layer.backward(&Tensor::ones(&[3, 4]));
        assert_eq!(gx.shape(), &[3, 6]);
    }

    #[test]
    #[should_panic(expected = "in_features must be positive")]
    fn zero_in_features_panics() {
        let mut r = rng();
        let _ = Dense::new(0, 4, &mut r);
    }
}
