//! 2-D convolution layer (naïve direct implementation).

use super::Layer;
use crate::gemm::{gemm_nt_with, im2col, BiasMode, GemmScratch, Im2colShape};
use crate::init;
use crate::tensor::Tensor;

/// A 2-D convolution over `[batch, channels, height, width]` inputs.
///
/// Weights have shape `[out_channels, in_channels, kernel, kernel]` and the
/// bias `[out_channels]`.  The implementation is a direct (six-nested-loop)
/// convolution: slow but simple, bounds-checked and easy to audit, which
/// matters more than speed for the small C3F2 / C5F4 policy networks used by
/// the BERRY experiments.
///
/// # Examples
///
/// ```
/// use berry_nn::layer::{Conv2d, Layer};
/// use berry_nn::tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
/// let x = Tensor::zeros(&[1, 2, 9, 9]);
/// let y = conv.forward(&x);
/// assert_eq!(y.shape(), &[1, 4, 9, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `kernel` or `stride`
    /// is zero.
    pub fn new<R: rand::Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0, "in_channels must be positive");
        assert!(out_channels > 0, "out_channels must be positive");
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let weight = init::he_normal(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        );
        Self {
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            bias: Tensor::zeros(&[out_channels]),
            weight,
            cached_input: None,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for a given input spatial size.
    ///
    /// Follows the usual `floor((size + 2·padding − kernel) / stride) + 1`
    /// convention.
    pub fn output_size(&self, input_size: usize) -> usize {
        (input_size + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size (square kernels only).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding applied to each spatial border.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Number of multiply–accumulate operations required for one forward
    /// pass over a single sample with the given input spatial size.
    ///
    /// Used by the `berry-hw` energy model to cost the layer on a systolic
    /// accelerator.
    pub fn macs_per_sample(&self, height: usize, width: usize) -> usize {
        let oh = self.output_size(height);
        let ow = self.output_size(width);
        oh * ow * self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// The im2col geometry of this layer over an `h×w` input plane.
    fn im2col_shape(&self, height: usize, width: usize) -> Im2colShape {
        Im2colShape {
            channels: self.in_channels,
            height,
            width,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            out_h: self.output_size(height),
            out_w: self.output_size(width),
        }
    }

    #[inline]
    fn w_at(&self, oc: usize, ic: usize, kh: usize, kw: usize) -> f32 {
        let k = self.kernel;
        self.weight.data()[((oc * self.in_channels + ic) * k + kh) * k + kw]
    }

    #[inline]
    fn gw_index(&self, oc: usize, ic: usize, kh: usize, kw: usize) -> usize {
        let k = self.kernel;
        ((oc * self.in_channels + ic) * k + kh) * k + kw
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 4, "Conv2d expects [batch, c, h, w] input");
        let (batch, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        assert_eq!(c, self.in_channels, "Conv2d input channel mismatch");
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        let mut out = Tensor::zeros(&[batch, self.out_channels, oh, ow]);
        let in_data = input.data();
        {
            let out_data = out.data_mut();
            for n in 0..batch {
                for oc in 0..self.out_channels {
                    let bias = self.bias.data()[oc];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = bias;
                            for ic in 0..self.in_channels {
                                for kh in 0..self.kernel {
                                    let iy = (oy * self.stride + kh) as isize - self.padding as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kw in 0..self.kernel {
                                        let ix =
                                            (ox * self.stride + kw) as isize - self.padding as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let in_idx = ((n * c + ic) * h + iy as usize) * w
                                            + ix as usize;
                                        acc += in_data[in_idx] * self.w_at(oc, ic, kh, kw);
                                    }
                                }
                            }
                            let out_idx = ((n * self.out_channels + oc) * oh + oy) * ow + ox;
                            out_data[out_idx] = acc;
                        }
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.rank(), 4, "Conv2d expects [batch, c, h, w] input");
        let (batch, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        assert_eq!(c, self.in_channels, "Conv2d input channel mismatch");
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        out.reset(&[batch, self.out_channels, oh, ow]);
        let in_data = input.data();
        let out_data = out.data_mut();
        let w_data = self.weight.data();
        let k = self.kernel;
        let s = self.stride;
        let p = self.padding;
        // Loop-reordered direct convolution: one weight tap is hoisted and
        // swept across a whole output row.  Every output element still
        // starts from the bias and receives its taps in (ic, kh, kw)
        // ascending order — each (ic, kh, kw) iteration touches each
        // accumulator at most once — so the per-element floating-point add
        // sequence, and therefore the result bits, are identical to the
        // index-per-tap training `forward`.  Out-of-bounds taps are
        // range-clipped instead of `continue`d, skipping exactly the same
        // terms.
        for n in 0..batch {
            for oc in 0..self.out_channels {
                let bias = self.bias.data()[oc];
                let out_base = ((n * self.out_channels + oc) * oh) * ow;
                let out_block = &mut out_data[out_base..out_base + oh * ow];
                out_block.fill(bias);
                for ic in 0..self.in_channels {
                    let plane_base = ((n * c + ic) * h) * w;
                    let plane = &in_data[plane_base..plane_base + h * w];
                    let w_base = ((oc * self.in_channels + ic) * k) * k;
                    for kh in 0..k {
                        for kw in 0..k {
                            let wv = w_data[w_base + kh * k + kw];
                            let kwp = kw as isize - p as isize;
                            // Output columns whose input column ix = ox*s + kwp
                            // lands inside [0, w).
                            let ox_lo = if kwp >= 0 {
                                0
                            } else {
                                ((-kwp) as usize).div_ceil(s)
                            };
                            let ox_hi = if (w as isize) > kwp {
                                (((w as isize - 1 - kwp) / s as isize + 1) as usize).min(ow)
                            } else {
                                0
                            };
                            if ox_lo >= ox_hi {
                                continue;
                            }
                            let span = ox_hi - ox_lo;
                            for oy in 0..oh {
                                let iy = (oy * s + kh) as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let in_row =
                                    &plane[iy as usize * w..iy as usize * w + w];
                                let acc_row =
                                    &mut out_block[oy * ow + ox_lo..oy * ow + ox_hi];
                                let ix_lo = (ox_lo * s) as isize + kwp;
                                if s == 1 {
                                    let ix_lo = ix_lo as usize;
                                    for (acc, &iv) in acc_row
                                        .iter_mut()
                                        .zip(in_row[ix_lo..ix_lo + span].iter())
                                    {
                                        *acc += iv * wv;
                                    }
                                } else {
                                    let mut ix = ix_lo as usize;
                                    for acc in acc_row.iter_mut() {
                                        *acc += in_row[ix] * wv;
                                        ix += s;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn infer_with(&self, input: &Tensor, out: &mut Tensor, gemm: &mut GemmScratch) {
        assert_eq!(input.rank(), 4, "Conv2d expects [batch, c, h, w] input");
        let (batch, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        assert_eq!(c, self.in_channels, "Conv2d input channel mismatch");
        let shape = self.im2col_shape(h, w);
        let (oh, ow) = (shape.out_h, shape.out_w);
        let (rows, taps) = (shape.rows(), shape.cols());
        out.reset(&[batch, self.out_channels, oh, ow]);
        let in_data = input.data();
        let out_data = out.data_mut();
        let w_data = self.weight.data();
        let bias = self.bias.data();
        let (col, packs, precision) = gemm.col_packs_precision(rows * taps);
        // im2col + GEMM lowering: out[n][oc][p] = bias[oc] + w_row(oc)·col_row(p).
        // Patch columns follow the (ic, kh, kw) tap order.  At the default
        // Reference tier the GEMM accumulates them ascending, so every
        // output element replays the scalar reference kernel's
        // floating-point sequence exactly (padding cells contribute +0.0
        // products, which never change a bias-initialized accumulator's
        // bits); the Fast tier follows the scratch's precision setting and
        // trades that bitwise identity for SIMD throughput.
        for n in 0..batch {
            let plane = &in_data[n * c * h * w..(n + 1) * c * h * w];
            im2col(plane, &shape, col);
            let out_block =
                &mut out_data[n * self.out_channels * rows..(n + 1) * self.out_channels * rows];
            gemm_nt_with(
                self.out_channels,
                rows,
                taps,
                w_data,
                col,
                BiasMode::RowInit(bias),
                out_block,
                precision,
                packs,
            );
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on Conv2d")
            .clone();
        let (batch, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        assert_eq!(
            grad_output.shape(),
            &[batch, self.out_channels, oh, ow],
            "Conv2d gradient shape mismatch"
        );

        let mut grad_input = Tensor::zeros(&[batch, c, h, w]);
        let in_data = input.data();
        let go_data = grad_output.data();

        for n in 0..batch {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = go_data[((n * self.out_channels + oc) * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        self.grad_bias.data_mut()[oc] += go;
                        for ic in 0..self.in_channels {
                            for kh in 0..self.kernel {
                                let iy = (oy * self.stride + kh) as isize - self.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kw in 0..self.kernel {
                                    let ix =
                                        (ox * self.stride + kw) as isize - self.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let in_idx =
                                        ((n * c + ic) * h + iy as usize) * w + ix as usize;
                                    let gw_idx = self.gw_index(oc, ic, kh, kw);
                                    self.grad_weight.data_mut()[gw_idx] += go * in_data[in_idx];
                                    grad_input.data_mut()[in_idx] +=
                                        go * self.w_at(oc, ic, kh, kw);
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_weight, &mut self.grad_bias]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn output_size_follows_convention() {
        let mut r = rng();
        let conv = Conv2d::new(1, 1, 3, 1, 1, &mut r);
        assert_eq!(conv.output_size(9), 9);
        let conv2 = Conv2d::new(1, 1, 3, 2, 1, &mut r);
        assert_eq!(conv2.output_size(9), 5);
        let conv3 = Conv2d::new(1, 1, 3, 1, 0, &mut r);
        assert_eq!(conv3.output_size(9), 7);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut r);
        // Set the kernel to a centred delta so the convolution is identity.
        conv.params_mut()[0].fill(0.0);
        conv.params_mut()[1].fill(0.0);
        {
            let w = conv.params_mut().remove(0);
            // index [0,0,1,1] in a 3x3 kernel
            w.data_mut()[4] = 1.0;
        }
        let x = Tensor::rand_uniform(&[1, 1, 5, 5], -1.0, 1.0, &mut r);
        let y = conv.forward(&x);
        for (a, b) in x.data().iter().zip(y.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn known_small_convolution() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r);
        conv.params_mut()[0]
            .data_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        conv.params_mut()[1].fill(0.5);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x);
        // 1*1 + 2*2 + 3*3 + 4*4 + 0.5 = 30.5
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.data()[0] - 30.5).abs() < 1e-6);
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut r);
        let x = Tensor::rand_uniform(&[2, 2, 9, 9], -1.0, 1.0, &mut r);
        let expected = conv.forward(&x);
        let mut out = Tensor::default();
        conv.infer(&x, &mut out);
        assert_eq!(out.shape(), expected.shape());
        for (a, b) in out.data().iter().zip(expected.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gemm_path_matches_scalar_reference_bitwise_across_shapes() {
        let mut r = rng();
        let mut gemm = GemmScratch::new();
        // (in_c, out_c, kernel, stride, padding, h, w, batch) — odd sizes,
        // stride 1/2/3, padding 0..=2, kernels larger than the input.
        for &(ic, oc, k, s, p, h, w, batch) in &[
            (1usize, 1usize, 1usize, 1usize, 0usize, 1usize, 1usize, 1usize),
            (2, 3, 3, 1, 1, 9, 9, 2),
            (3, 5, 3, 2, 1, 9, 7, 3),
            (2, 4, 5, 3, 2, 11, 13, 1),
            (4, 2, 3, 1, 0, 5, 5, 5),
            (1, 7, 3, 2, 2, 4, 4, 2),
            (2, 2, 5, 1, 2, 3, 3, 1),
        ] {
            let mut conv = Conv2d::new(ic, oc, k, s, p, &mut r);
            let x = Tensor::rand_uniform(&[batch, ic, h, w], -1.0, 1.0, &mut r);
            let expected = conv.forward(&x);
            let mut scalar = Tensor::default();
            conv.infer(&x, &mut scalar);
            let mut gemmed = Tensor::default();
            conv.infer_with(&x, &mut gemmed, &mut gemm);
            assert_eq!(gemmed.shape(), expected.shape());
            for (i, ((g, sc), f)) in gemmed
                .data()
                .iter()
                .zip(scalar.data())
                .zip(expected.data())
                .enumerate()
            {
                assert_eq!(
                    g.to_bits(),
                    sc.to_bits(),
                    "gemm vs scalar at ({ic},{oc},{k},{s},{p},{h},{w},{batch}) elem {i}"
                );
                assert_eq!(
                    g.to_bits(),
                    f.to_bits(),
                    "gemm vs forward at ({ic},{oc},{k},{s},{p},{h},{w},{batch}) elem {i}"
                );
            }
        }
    }

    #[test]
    fn weight_gradients_match_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, &mut r);
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut r);
        let y = conv.forward(&x);
        let base: f32 = y.sum();
        let go = Tensor::ones(&[1, 2, 4, 4]);
        conv.backward(&go);
        let analytic = conv.grads()[0].clone();

        let eps = 1e-2;
        let mut max_err = 0.0f32;
        for idx in (0..conv.weight.len()).step_by(7) {
            let mut p = conv.clone();
            p.params_mut()[0].data_mut()[idx] += eps;
            let y2 = p.forward(&x);
            let num = (y2.sum() - base) / eps;
            let ana = analytic.data()[idx];
            max_err = max_err.max((num - ana).abs());
        }
        assert!(max_err < 5e-2, "max finite-difference error {max_err}");
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut r);
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut r);
        let y = conv.forward(&x);
        let base: f32 = y.sum();
        let gx = conv.backward(&Tensor::ones(&[1, 2, 4, 4]));

        let eps = 1e-2;
        let mut max_err = 0.0f32;
        for idx in 0..x.len() {
            let mut x2 = x.clone();
            x2.data_mut()[idx] += eps;
            let y2 = conv.forward(&x2);
            let num = (y2.sum() - base) / eps;
            let ana = gx.data()[idx];
            max_err = max_err.max((num - ana).abs());
        }
        assert!(max_err < 5e-2, "max finite-difference error {max_err}");
    }

    #[test]
    fn strided_convolution_downsamples() {
        let mut r = rng();
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, &mut r);
        let x = Tensor::zeros(&[2, 3, 9, 9]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[2, 8, 5, 5]);
        let gx = conv.backward(&Tensor::ones(&[2, 8, 5, 5]));
        assert_eq!(gx.shape(), &[2, 3, 9, 9]);
    }

    #[test]
    fn macs_per_sample_counts_kernel_work() {
        let mut r = rng();
        let conv = Conv2d::new(2, 4, 3, 1, 1, &mut r);
        // 9x9 output, 4 out channels, 2 in channels, 3x3 kernel
        assert_eq!(conv.macs_per_sample(9, 9), 81 * 4 * 2 * 9);
    }

    #[test]
    fn param_count_matches_dimensions() {
        let mut r = rng();
        let conv = Conv2d::new(3, 5, 3, 1, 1, &mut r);
        assert_eq!(conv.param_count(), 5 * 3 * 9 + 5);
    }

    #[test]
    fn gradients_accumulate_and_reset() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut r);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        conv.forward(&x);
        conv.backward(&Tensor::ones(&[1, 1, 3, 3]));
        let g1: f32 = conv.grads()[0].sum();
        conv.forward(&x);
        conv.backward(&Tensor::ones(&[1, 1, 3, 3]));
        let g2: f32 = conv.grads()[0].sum();
        assert!((g2 - 2.0 * g1).abs() < 1e-4);
        conv.zero_grad();
        assert_eq!(conv.grads()[0].sum(), 0.0);
    }
}
