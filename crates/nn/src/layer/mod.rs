//! Neural-network layers with explicit forward and backward passes.
//!
//! Each layer caches whatever it needs from its most recent forward pass so
//! that a subsequent [`Layer::backward`] call can produce parameter gradients
//! and the gradient with respect to the layer input.  Gradients accumulate
//! until [`Layer::zero_grad`] is called, which is what lets the BERRY
//! trainer *average* the clean-pass and perturbed-pass gradients (Algorithm 1
//! line 19) simply by running two backward passes before one optimizer step.

mod conv;
mod dense;

pub use conv::Conv2d;
pub use dense::Dense;

use crate::gemm::GemmScratch;
use crate::tensor::Tensor;

/// A differentiable network layer.
///
/// Layers operate on *batched* inputs: dense layers expect `[batch, features]`
/// tensors and convolutions expect `[batch, channels, height, width]`.
///
/// `Send + Sync` is part of the contract so whole networks can be shared
/// by reference across the data-parallel fault-map evaluation workers;
/// layers are plain buffers of `f32`, so every implementation satisfies it
/// automatically.
pub trait Layer: Send + Sync {
    /// Runs the forward pass, caching anything needed by [`Layer::backward`].
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Runs an immutable, cache-free forward pass, writing the layer output
    /// into the caller-owned `out` scratch tensor (resizing it in place).
    ///
    /// This is the deployment/evaluation inference path: it takes `&self`,
    /// so one network can be shared by reference across data-parallel
    /// fault-map workers, and it allocates nothing once `out` has reached
    /// its steady-state capacity.  Implementations MUST produce outputs that
    /// are **bitwise identical** to [`Layer::forward`] for the same input —
    /// the floating-point operations and their order are part of the
    /// contract (pinned by `tests/parallel_determinism.rs`), because the
    /// evaluation harnesses mix the two paths and average hundreds of
    /// fault maps whose statistics must not depend on which path ran.
    fn infer(&self, input: &Tensor, out: &mut Tensor);

    /// [`Layer::infer`] through the shared im2col/GEMM inference core.
    ///
    /// This is the path [`crate::network::Sequential`] drives on its hot
    /// loop: layers with a matrix-product forward (dense, convolution)
    /// override it to route through [`crate::gemm::gemm_nt`] using the
    /// caller-owned [`GemmScratch`] for im2col patch buffers, while
    /// element-wise layers fall back to their scalar `infer`.  The output
    /// is **bitwise identical** to [`Layer::infer`] (and therefore to
    /// [`Layer::forward`]) — the GEMM kernel accumulates each output
    /// element's terms in the same ascending order as the scalar
    /// reference, and the GEMM-vs-scalar layer tests pin the equality.
    fn infer_with(&self, input: &Tensor, out: &mut Tensor, gemm: &mut GemmScratch) {
        let _ = gemm;
        self.infer(input, out);
    }

    /// Runs the backward pass for the most recent forward input, accumulating
    /// parameter gradients and returning the gradient with respect to the
    /// layer input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before any forward pass.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Borrowed views of the layer's trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable views of the layer's trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Borrowed views of the accumulated parameter gradients, in the same
    /// order as [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor>;

    /// Mutable views of the accumulated parameter gradients, in the same
    /// order as [`Layer::params`] (empty for parameter-free layers).
    fn grads_mut(&mut self) -> Vec<&mut Tensor>;

    /// Resets all accumulated gradients to zero.
    fn zero_grad(&mut self);

    /// Human-readable layer name used in summaries.
    fn name(&self) -> &'static str;

    /// Total number of trainable scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Clones the layer into a boxed trait object (parameters and gradients
    /// included), enabling target-network copies and perturbed snapshots.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Rectified linear unit activation, applied element-wise.
///
/// # Examples
///
/// ```
/// use berry_nn::layer::{Layer, Relu};
/// use berry_nn::tensor::Tensor;
/// # fn main() -> Result<(), berry_nn::NnError> {
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![1, 3], vec![-1.0, 0.0, 2.0])?;
/// let y = relu.forward(&x);
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU activation layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let out = input.mul(&mask).expect("mask shares input shape");
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Tensor, out: &mut Tensor) {
        out.reset(input.shape());
        // Same mask-multiply arithmetic as `forward` (v * 0.0 keeps the sign
        // of zero identical between the two paths).
        for (o, &v) in out.data_mut().iter_mut().zip(input.data()) {
            *o = v * if v > 0.0 { 1.0 } else { 0.0 };
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward called before forward on Relu");
        grad_output
            .mul(mask)
            .expect("gradient must share the forward shape")
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Leaky rectified linear unit with configurable negative slope.
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    slope: f32,
    mask: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope.
    pub fn new(slope: f32) -> Self {
        Self { slope, mask: None }
    }

    /// The configured negative-side slope.
    pub fn slope(&self) -> f32 {
        self.slope
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let slope = self.slope;
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { slope });
        let out = input.mul(&mask).expect("mask shares input shape");
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Tensor, out: &mut Tensor) {
        let slope = self.slope;
        out.reset(input.shape());
        for (o, &v) in out.data_mut().iter_mut().zip(input.data()) {
            *o = v * if v > 0.0 { 1.0 } else { slope };
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward called before forward on LeakyRelu");
        grad_output
            .mul(mask)
            .expect("gradient must share the forward shape")
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "LeakyRelu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic-tangent activation, applied element-wise.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a new tanh activation layer.
    pub fn new() -> Self {
        Self { output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(f32::tanh);
        self.output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor, out: &mut Tensor) {
        out.reset(input.shape());
        for (o, &v) in out.data_mut().iter_mut().zip(input.data()) {
            *o = v.tanh();
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self
            .output
            .as_ref()
            .expect("backward called before forward on Tanh");
        let deriv = out.map(|y| 1.0 - y * y);
        grad_output
            .mul(&deriv)
            .expect("gradient must share the forward shape")
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Flattens `[batch, ...]` inputs into `[batch, features]`, remembering the
/// original shape so the gradient can be restored on the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a new flatten layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let shape = input.shape().to_vec();
        assert!(
            !shape.is_empty(),
            "Flatten requires an input with at least one dimension"
        );
        let batch = shape[0];
        let features: usize = shape[1..].iter().product();
        self.input_shape = Some(shape);
        input
            .reshape(&[batch, features])
            .expect("flatten preserves element count")
    }

    fn infer(&self, input: &Tensor, out: &mut Tensor) {
        let shape = input.shape();
        assert!(
            !shape.is_empty(),
            "Flatten requires an input with at least one dimension"
        );
        let batch = shape[0];
        let features: usize = shape[1..].iter().product();
        out.reset(&[batch, features]);
        out.data_mut().copy_from_slice(input.data());
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .as_ref()
            .expect("backward called before forward on Flatten");
        grad_output
            .reshape(shape)
            .expect("flatten gradient preserves element count")
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_and_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-2.0, -0.5, 0.5, 2.0]).unwrap();
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = Tensor::ones(&[1, 4]);
        let gx = relu.backward(&g);
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn leaky_relu_passes_scaled_negatives() {
        let mut l = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![1, 2], vec![-1.0, 1.0]).unwrap();
        let y = l.forward(&x);
        assert!((y.data()[0] + 0.1).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
        let gx = l.backward(&Tensor::ones(&[1, 2]));
        assert!((gx.data()[0] - 0.1).abs() < 1e-6);
        assert!((gx.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_analytic_derivative() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![1, 3], vec![-1.0, 0.0, 0.5]).unwrap();
        let y = t.forward(&x);
        let gx = t.backward(&Tensor::ones(&[1, 3]));
        for (out, grad) in y.data().iter().zip(gx.data().iter()) {
            assert!((grad - (1.0 - out * out)).abs() < 1e-6);
        }
    }

    #[test]
    fn flatten_round_trips_gradient_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[2, 48]);
        let gx = f.backward(&Tensor::ones(&[2, 48]));
        assert_eq!(gx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn activations_have_no_parameters() {
        let relu = Relu::new();
        assert_eq!(relu.param_count(), 0);
        assert!(relu.params().is_empty());
        assert!(relu.grads().is_empty());
        let tanh = Tanh::new();
        assert_eq!(tanh.param_count(), 0);
        let flat = Flatten::new();
        assert_eq!(flat.param_count(), 0);
    }

    #[test]
    fn infer_matches_forward_bitwise_for_parameter_free_layers() {
        let x =
            Tensor::from_vec(vec![2, 3], vec![-2.0, -0.0, 0.0, 0.5, 1.5, -0.25]).unwrap();
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Relu::new()),
            Box::new(LeakyRelu::new(0.1)),
            Box::new(Tanh::new()),
            Box::new(Flatten::new()),
        ];
        for mut layer in layers {
            let expected = layer.forward(&x);
            let mut out = Tensor::default();
            layer.infer(&x, &mut out);
            assert_eq!(out.shape(), expected.shape(), "{}", layer.name());
            for (a, b) in out.data().iter().zip(expected.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", layer.name());
            }
        }
    }

    #[test]
    fn boxed_layer_clone_is_independent() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, -1.0]).unwrap();
        relu.forward(&x);
        let boxed: Box<dyn Layer> = Box::new(relu);
        let mut cloned = boxed.clone();
        // The clone can run its own forward/backward without touching the original.
        let y = cloned.forward(&x);
        assert_eq!(y.data(), &[1.0, 0.0]);
    }
}
