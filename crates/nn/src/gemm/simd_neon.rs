//! NEON implementation of the Fast tier's eight-lane accumulation spec
//! (see [`super::fast`]): the spec's eight lanes split across two 128-bit
//! registers — `lo` holds lanes `p ≡ 0..4 (mod 8)`, `hi` lanes
//! `p ≡ 4..8 (mod 8)` — and each `fmla` performs one fused spec step for
//! four lanes.  NEON `fmla` is correctly-rounded fused like AVX2
//! `vfmadd` and `f32::mul_add`, so the three backends agree bit for bit.
#![allow(unsafe_code)]

use super::fast::{KR, MR_F, NR_F};
use std::arch::aarch64::{
    float32x4_t, vadd_f32, vaddq_f32, vdupq_n_f32, vfmaq_f32, vget_high_f32, vget_lane_f32,
    vget_low_f32, vld1q_f32,
};

/// Safe strip entry used by the [`super::fast`] driver: `A` rows
/// `[i_begin, i_end)` (a multiple of [`MR_F`] rows) against `B` rows
/// `[j0, j0 + NR_F)`, raw spec dots written row-major into `out`.  All
/// unsafe preconditions are discharged here — panel bounds by assertion,
/// ISA availability by (cached) runtime detection — and amortize over the
/// strip's whole column of microtiles.
pub(crate) fn strip_at(
    kp: usize,
    pa: &[f32],
    i_begin: usize,
    i_end: usize,
    pb: &[f32],
    j0: usize,
    out: &mut [f32],
) {
    assert_eq!(kp % KR, 0);
    assert!(i_begin <= i_end && (i_end - i_begin).is_multiple_of(MR_F));
    assert!(pa.len() >= i_end * kp);
    assert!(pb.len() >= (j0 + NR_F) * kp);
    assert_eq!(out.len(), (i_end - i_begin) * NR_F);
    assert!(
        std::arch::is_aarch64_feature_detected!("neon"),
        "NEON backend selected on a CPU without neon"
    );
    // SAFETY: the asserts above guarantee the strip's row-bounds contract
    // and that the required target features are present.
    unsafe {
        strip(
            kp,
            pa.as_ptr().add(i_begin * kp),
            i_end - i_begin,
            pb.as_ptr().add(j0 * kp),
            out.as_mut_ptr(),
        );
    }
}

/// Sweeps `rows / MR_F` microtiles down the strip, one uninterrupted
/// spec-order accumulation per output element.
///
/// # Safety
///
/// The caller must guarantee NEON is available (runtime detection),
/// `kp % 8 == 0`, `rows % MR_F == 0`, that `a` points at `rows` and `b`
/// at `NR_F` consecutive `kp`-stride rows of readable `f32`s, and that
/// `out` holds `rows * NR_F` writable `f32`s.
#[target_feature(enable = "neon")]
unsafe fn strip(kp: usize, a: *const f32, rows: usize, b: *const f32, out: *mut f32) {
    let zero = vdupq_n_f32(0.0);
    let mut i0 = 0;
    while i0 < rows {
        let mut acc_lo = [[zero; NR_F]; MR_F];
        let mut acc_hi = [[zero; NR_F]; MR_F];
        let a0 = a.add(i0 * kp);
        let mut p = 0;
        while p < kp {
            let va: [[float32x4_t; 2]; MR_F] = [
                [vld1q_f32(a0.add(p)), vld1q_f32(a0.add(p + 4))],
                [vld1q_f32(a0.add(kp + p)), vld1q_f32(a0.add(kp + p + 4))],
            ];
            for s in 0..NR_F {
                let vb_lo = vld1q_f32(b.add(s * kp + p));
                let vb_hi = vld1q_f32(b.add(s * kp + p + 4));
                for r in 0..MR_F {
                    acc_lo[r][s] = vfmaq_f32(acc_lo[r][s], va[r][0], vb_lo);
                    acc_hi[r][s] = vfmaq_f32(acc_hi[r][s], va[r][1], vb_hi);
                }
            }
            p += KR;
        }
        // The spec's fixed reduction tree, in registers: `lo + hi` is the
        // four parallel adds `s0..s3 = l0+l4 .. l3+l7`, the half-width
        // add performs `s0+s2` and `s1+s3`, and the final scalar add
        // joins them.  Every spec add is one distinct IEEE operation, so
        // the result is bitwise identical to
        // [`super::fast_scalar::reduce8`].
        for r in 0..MR_F {
            for s in 0..NR_F {
                let sums = vaddq_f32(acc_lo[r][s], acc_hi[r][s]); // s0 s1 s2 s3
                let pair = vadd_f32(vget_low_f32(sums), vget_high_f32(sums)); // s0+s2, s1+s3
                *out.add((i0 + r) * NR_F + s) =
                    vget_lane_f32::<0>(pair) + vget_lane_f32::<1>(pair);
            }
        }
        i0 += MR_F;
    }
}
