//! The shared im2col/GEMM inference core.
//!
//! Every inference-path matrix product in the crate — the batched dense
//! layer and the im2col-lowered convolution — funnels through
//! [`gemm_nt`]: a cache-friendly, register-tiled `C = A · Bᵀ` kernel over
//! row-major operands whose rows share the contraction dimension.  One
//! kernel serving every layer is what makes the batched lockstep rollout
//! engine pay a *single* well-optimized forward pass per timestep for all
//! concurrent episode lanes, instead of many tiny cache-unfriendly ones.
//!
//! # Bitwise contract
//!
//! The kernel is register-tiled over the *output* dimensions only: every
//! output element still accumulates its `k` terms in strictly ascending
//! order with separate multiply and add (no FMA contraction), so each
//! element's floating-point sequence — and therefore its bits — is
//! identical to the naive scalar reference regardless of the tile shape or
//! the batch size.  Two consequences the evaluation protocol relies on:
//!
//! * **batch invariance** — row `i` of a batched product is bitwise equal
//!   to the same row computed alone, which is what lets the lockstep
//!   rollout engine retire and refill episode lanes without perturbing the
//!   surviving lanes' Q-values;
//! * **reference equality** — the GEMM path is bitwise identical to the
//!   loop-reordered scalar kernels each layer keeps as its auditable
//!   reference ([`crate::layer::Layer::infer`]), pinned by the
//!   GEMM-vs-scalar layer tests.
//!
//! Zero-valued contraction terms (im2col padding cells, exact-zero
//! activations skipped by [`crate::tensor::Tensor::matmul`]) contribute
//! `±0.0` products; since accumulators start from `+0.0` (or a real-valued
//! bias) and IEEE-754 round-to-nearest addition never turns such a sum into
//! `-0.0`, including the terms is bitwise equivalent to skipping them.
//!
//! # Precision tiers
//!
//! The contract above — one strictly ascending accumulation chain per
//! output element — is exactly what keeps a scalar kernel an order of
//! magnitude below one core's FMA units: the next multiply-add cannot
//! start until the previous one retires.  SIMD with multiple accumulators
//! reassociates the sum and FMA skips an intermediate rounding, so a fast
//! kernel *cannot* be bitwise-identical to the reference.  Rather than
//! silently trade bits for speed, the crate names the trade:
//!
//! * [`Precision::Reference`] (the default) — the k-ascending separate
//!   mul+add kernel above.  Bitwise identical to every scalar layer
//!   reference and to all historical golden pins.
//! * [`Precision::Fast`] — packed, cache-blocked microkernels
//!   ([`fast`]) built on an **eight-lane mod-8 accumulation spec** with
//!   fused multiply-adds and a fixed reduction tree.  The spec is defined
//!   arithmetically, not by an instruction set, and every backend
//!   (AVX2+FMA, NEON, and the scalar `f32::mul_add` fallback) implements
//!   it exactly — so Fast-tier results are *themselves* deterministic and
//!   bitwise-reproducible across machines, just along a different (and
//!   more accurate) rounding path than Reference.
//!
//! Tier selection is carried by [`GemmScratch`] (and therefore by
//! `InferScratch`), defaulting to `Reference` everywhere; the backend is
//! picked once per process by [`detected_fast_backend`] and can be pinned
//! to the scalar fallback with `BERRY_GEMM_FORCE_SCALAR=1`.

// lint: pinned-path — reductions here feed golden-pinned statistics; use berry_nn::reduce helpers

mod fast;
mod fast_scalar;
#[cfg(target_arch = "x86_64")]
mod simd_avx2;
#[cfg(target_arch = "aarch64")]
mod simd_neon;

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Rows of `A` (output rows) processed per register tile.
const MR: usize = 4;
/// Rows of `B` (output columns) processed per register tile.
const NR: usize = 4;

/// Where the bias enters the accumulation, mirroring the two layer
/// conventions the training path established.
#[derive(Debug, Clone, Copy)]
pub enum BiasMode<'a> {
    /// No bias: accumulators start from `+0.0`.
    None,
    /// One bias value per output **row** (`A` row), *initializing* the
    /// accumulator — the convolution convention (`acc = bias; acc += taps`).
    RowInit(&'a [f32]),
    /// One bias value per output **column** (`B` row), added *after* the
    /// accumulation — the dense convention (`y = x·Wᵀ + b`).
    ColAfter(&'a [f32]),
}

impl BiasMode<'_> {
    #[inline]
    fn init(&self, row: usize) -> f32 {
        match self {
            BiasMode::RowInit(bias) => bias[row],
            _ => 0.0,
        }
    }

    #[inline]
    fn finish(&self, col: usize, acc: f32) -> f32 {
        match self {
            BiasMode::ColAfter(bias) => acc + bias[col],
            _ => acc,
        }
    }
}

/// `C[i][j] = bias ⊕ Σₚ A[i][p] · B[j][p]` over row-major `A` (`m×k`),
/// row-major `B` (`n×k`) and row-major `C` (`m×n`).
///
/// Both operands are indexed by *rows sharing the contraction dimension*
/// (`NT` layout: `A · Bᵀ`), which is exactly how the layers store their
/// data — dense weights are `[out, in]`, im2col patches are
/// `[pixels, taps]` — so no packing or transposition is ever needed.
///
/// # Panics
///
/// Panics if a slice is shorter than its `m`/`n`/`k` extent implies.
/// These are real (release-mode) asserts: they name the offending shape
/// instead of letting the kernel die mid-tile on an opaque slice index,
/// and they are the soundness precondition the unsafe SIMD microkernels
/// of the Fast tier rely on.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], bias: BiasMode, c: &mut [f32]) {
    check_gemm_shapes(m, n, k, a, b, c);
    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let nr = NR.min(n - j0);
            if mr == MR && nr == NR {
                tile_4x4(i0, j0, n, k, a, b, &bias, c);
            } else {
                tile_edge(i0, mr, j0, nr, n, k, a, b, &bias, c);
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Validates `A`/`B`/`C` slice lengths against the `m`/`n`/`k` extents at
/// the API boundary, shared by both precision tiers.
#[inline]
pub(crate) fn check_gemm_shapes(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(
        a.len() >= m * k,
        "gemm_nt: A holds {} elements but m×k = {m}×{k} requires {}",
        a.len(),
        m * k
    );
    assert!(
        b.len() >= n * k,
        "gemm_nt: B holds {} elements but n×k = {n}×{k} requires {}",
        b.len(),
        n * k
    );
    assert!(
        c.len() >= m * n,
        "gemm_nt: C holds {} elements but m×n = {m}×{n} requires {}",
        c.len(),
        m * n
    );
}

/// Which accumulation semantics a GEMM call uses — see the
/// [module docs](self) for the full contract of each tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// k-ascending separate mul+add; bitwise identical to the scalar layer
    /// references and to every historical golden pin.  The default.
    #[default]
    Reference,
    /// Eight-lane mod-8 FMA accumulation with a fixed reduction tree;
    /// bitwise-reproducible across AVX2/NEON/scalar backends but *not*
    /// bitwise-equal to `Reference` (FMA skips a rounding and the lanes
    /// reassociate the sum).
    Fast,
}

impl Precision {
    /// Parses a tier name (`reference`, `fast`, case-insensitive).
    /// Returns `None` for anything else so callers can distinguish
    /// "not given" from "given but wrong".
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_lowercase().as_str() {
            "reference" | "ref" => Some(Precision::Reference),
            "fast" => Some(Precision::Fast),
            _ => None,
        }
    }

    /// The canonical lowercase name [`Precision::parse`] inverts.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Reference => "reference",
            Precision::Fast => "fast",
        }
    }
}

/// The instruction-set backend executing the Fast tier's accumulation
/// spec.  All three produce identical bits; the choice only affects speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastBackend {
    /// 256-bit AVX2 + FMA microkernel (x86_64).
    Avx2,
    /// 128-bit NEON microkernel (aarch64; FMA is baseline there).
    Neon,
    /// Portable `f32::mul_add` fallback — correct on every target, and the
    /// path the CI tier matrix forces with `BERRY_GEMM_FORCE_SCALAR=1` to
    /// prove backend equivalence on SIMD-capable hosts.
    Scalar,
}

impl FastBackend {
    /// Lowercase backend name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            FastBackend::Avx2 => "avx2",
            FastBackend::Neon => "neon",
            FastBackend::Scalar => "scalar",
        }
    }
}

/// The Fast-tier backend this process uses, decided once: the scalar
/// fallback if `BERRY_GEMM_FORCE_SCALAR` is set to `1`/`true`, otherwise
/// the widest SIMD extension the CPU reports at runtime.
pub fn detected_fast_backend() -> FastBackend {
    static BACKEND: OnceLock<FastBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        let forced = std::env::var("BERRY_GEMM_FORCE_SCALAR")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        if forced {
            return FastBackend::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return FastBackend::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return FastBackend::Neon;
            }
        }
        FastBackend::Scalar
    })
}

/// [`gemm_nt`] with an explicit precision tier: `Reference` delegates to
/// the bitwise kernel unchanged, `Fast` routes through the packed SIMD
/// driver using the process-wide [`detected_fast_backend`].
///
/// # Panics
///
/// Panics if a slice is shorter than its `m`/`n`/`k` extent implies.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_with(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: BiasMode,
    c: &mut [f32],
    precision: Precision,
    packs: &mut PackScratch,
) {
    match precision {
        Precision::Reference => gemm_nt(m, n, k, a, b, bias, c),
        Precision::Fast => fast::gemm_nt_fast(m, n, k, a, b, bias, c, packs, detected_fast_backend()),
    }
}

/// Test/bench hook: the Fast tier on an explicitly chosen backend, so the
/// cross-backend bitwise-equivalence guarantee can be asserted in-process.
/// A backend the current CPU cannot execute is silently demoted to
/// [`FastBackend::Scalar`] (which is bitwise-identical anyway).
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_fast_with_backend(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: BiasMode,
    c: &mut [f32],
    packs: &mut PackScratch,
    backend: FastBackend,
) {
    let backend = match backend {
        #[cfg(target_arch = "x86_64")]
        FastBackend::Avx2
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma") =>
        {
            FastBackend::Avx2
        }
        #[cfg(target_arch = "aarch64")]
        FastBackend::Neon if std::arch::is_aarch64_feature_detected!("neon") => FastBackend::Neon,
        _ => FastBackend::Scalar,
    };
    fast::gemm_nt_fast(m, n, k, a, b, bias, c, packs, backend);
}

/// The full `MR×NR` register tile: sixteen scalar accumulators live in
/// registers across the whole `k` sweep, and each `k` step reuses four
/// loads of `A` and four of `B` for sixteen multiply-adds.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_4x4(i0: usize, j0: usize, n: usize, k: usize, a: &[f32], b: &[f32], bias: &BiasMode, c: &mut [f32]) {
    let a0 = &a[i0 * k..(i0 + 1) * k];
    let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
    let a2 = &a[(i0 + 2) * k..(i0 + 3) * k];
    let a3 = &a[(i0 + 3) * k..(i0 + 4) * k];
    let b0 = &b[j0 * k..(j0 + 1) * k];
    let b1 = &b[(j0 + 1) * k..(j0 + 2) * k];
    let b2 = &b[(j0 + 2) * k..(j0 + 3) * k];
    let b3 = &b[(j0 + 3) * k..(j0 + 4) * k];

    let mut acc = [[0.0f32; NR]; MR];
    for (row, acc_row) in acc.iter_mut().enumerate() {
        let init = bias.init(i0 + row);
        *acc_row = [init; NR];
    }
    for p in 0..k {
        let av = [a0[p], a1[p], a2[p], a3[p]];
        let bv = [b0[p], b1[p], b2[p], b3[p]];
        for (acc_row, &avi) in acc.iter_mut().zip(av.iter()) {
            for (accv, &bvj) in acc_row.iter_mut().zip(bv.iter()) {
                // Separate mul + add (not mul_add): the rounding sequence is
                // part of the bitwise contract with the scalar reference.
                *accv += avi * bvj;
            }
        }
    }
    for (row, acc_row) in acc.iter().enumerate() {
        let c_row = &mut c[(i0 + row) * n + j0..(i0 + row) * n + j0 + NR];
        for (col, (dst, &accv)) in c_row.iter_mut().zip(acc_row.iter()).enumerate() {
            *dst = bias.finish(j0 + col, accv);
        }
    }
}

/// Scalar fringe tile for the `m % MR` / `n % NR` remainders — same
/// ascending-`k` accumulation, so the bits match the fast tile exactly.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_edge(
    i0: usize,
    mr: usize,
    j0: usize,
    nr: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &BiasMode,
    c: &mut [f32],
) {
    for i in i0..i0 + mr {
        let a_row = &a[i * k..(i + 1) * k];
        for j in j0..j0 + nr {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = bias.init(i);
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            c[i * n + j] = bias.finish(j, acc);
        }
    }
}

/// Reusable zero-padded operand panels for the Fast tier's packed
/// microkernels.  Owned by [`GemmScratch`]; a `Reference`-tier call never
/// touches (or grows) these buffers.
#[derive(Debug, Clone, Default)]
pub struct PackScratch {
    pack_a: Vec<f32>,
    pack_b: Vec<f32>,
}

impl PackScratch {
    /// Creates an empty scratch; panels grow on first Fast-tier use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Both packing panels, resized to at least the requested lengths.
    /// Contents are unspecified; the packing routine overwrites every
    /// element (including the zero padding) on each call.
    pub(crate) fn panels(&mut self, a_len: usize, b_len: usize) -> (&mut [f32], &mut [f32]) {
        if self.pack_a.len() < a_len {
            self.pack_a.resize(a_len, 0.0);
        }
        if self.pack_b.len() < b_len {
            self.pack_b.resize(b_len, 0.0);
        }
        (&mut self.pack_a[..a_len], &mut self.pack_b[..b_len])
    }
}

/// Reusable buffers of the im2col/GEMM inference core.
///
/// One `GemmScratch` lives inside every
/// [`crate::network::InferScratch`], so the whole lockstep rollout hot
/// path — im2col patch matrices included — stops allocating once the
/// buffers reach steady-state capacity.  The scratch also carries the
/// [`Precision`] tier every layer routed through it uses, so tier choice
/// travels with the inference state instead of with the (tier-agnostic)
/// network weights.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    col: Vec<f32>,
    packs: PackScratch,
    precision: Precision,
}

impl GemmScratch {
    /// Creates an empty scratch at the default [`Precision::Reference`];
    /// buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty scratch pinned to the given precision tier.
    pub fn with_precision(precision: Precision) -> Self {
        Self {
            precision,
            ..Self::default()
        }
    }

    /// The precision tier layers routed through this scratch will use.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Switches the precision tier; buffers are retained.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    /// The im2col patch buffer, resized to at least `len` elements.
    ///
    /// Contents are unspecified; callers overwrite every element they read.
    pub fn col_buffer(&mut self, len: usize) -> &mut [f32] {
        if self.col.len() < len {
            self.col.resize(len, 0.0);
        }
        &mut self.col[..len]
    }

    /// Splits the scratch into the im2col patch buffer (at least `len`
    /// elements), the packing panels, and the tier — the disjoint borrows
    /// the convolution path needs to im2col into `col` while handing the
    /// panels to [`gemm_nt_with`].
    pub fn col_packs_precision(&mut self, len: usize) -> (&mut [f32], &mut PackScratch, Precision) {
        if self.col.len() < len {
            self.col.resize(len, 0.0);
        }
        (&mut self.col[..len], &mut self.packs, self.precision)
    }

    /// The packing panels and tier without the patch buffer — what the
    /// dense path (no im2col) hands to [`gemm_nt_with`].
    pub fn packs_precision(&mut self) -> (&mut PackScratch, Precision) {
        (&mut self.packs, self.precision)
    }
}

/// Geometry of one im2col lowering: a `[c, h, w]` input plane unrolled into
/// a `[out_h·out_w, c·kernel·kernel]` row-major patch matrix.
#[derive(Debug, Clone, Copy)]
pub struct Im2colShape {
    /// Input channels.
    pub channels: usize,
    /// Input spatial height.
    pub height: usize,
    /// Input spatial width.
    pub width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on each spatial border.
    pub padding: usize,
    /// Output spatial height.
    pub out_h: usize,
    /// Output spatial width.
    pub out_w: usize,
}

impl Im2colShape {
    /// Patch-matrix row count (one row per output pixel).
    pub fn rows(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Patch-matrix column count (one column per kernel tap), i.e. the GEMM
    /// contraction dimension.
    pub fn cols(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }

    /// Checks internal consistency: non-degenerate extents, a kernel that
    /// fits the padded input, and — crucially — that the caller-supplied
    /// `out_h`/`out_w` equal the geometry the convolution formula implies.
    /// An inconsistent output extent would otherwise make [`im2col`]
    /// silently unroll the wrong input rows.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] naming the first inconsistent
    /// field.
    pub fn validate(&self) -> crate::Result<()> {
        let Im2colShape {
            channels,
            height,
            width,
            kernel,
            stride,
            padding,
            out_h,
            out_w,
        } = *self;
        let invalid = |msg: String| Err(crate::NnError::InvalidArgument(msg));
        if channels == 0 || height == 0 || width == 0 {
            return invalid(format!(
                "im2col input plane is degenerate: channels={channels}, height={height}, width={width}"
            ));
        }
        if kernel == 0 || stride == 0 {
            return invalid(format!(
                "im2col kernel geometry is degenerate: kernel={kernel}, stride={stride}"
            ));
        }
        if height + 2 * padding < kernel || width + 2 * padding < kernel {
            return invalid(format!(
                "im2col kernel {kernel}×{kernel} does not fit the padded {height}×{width} input (padding {padding})"
            ));
        }
        let expect_h = (height + 2 * padding - kernel) / stride + 1;
        let expect_w = (width + 2 * padding - kernel) / stride + 1;
        if out_h != expect_h || out_w != expect_w {
            return invalid(format!(
                "im2col output extent {out_h}×{out_w} does not match the \
                 {expect_h}×{expect_w} implied by input {height}×{width}, kernel {kernel}, \
                 stride {stride}, padding {padding}"
            ));
        }
        Ok(())
    }
}

/// Unrolls one sample's `[c, h, w]` plane into the row-major patch matrix
/// `col[p][(ic·kernel + kh)·kernel + kw] = input[ic][iy][ix]` with `+0.0`
/// in padding cells.
///
/// Column order matches the `(ic, kh, kw)` tap order of the scalar
/// convolution kernels, so a `k`-ascending GEMM over these rows replays the
/// reference accumulation sequence exactly.
///
/// # Panics
///
/// Panics if `shape` fails [`Im2colShape::validate`], if `input` is not
/// exactly one `[c, h, w]` plane, or if `col` cannot hold the patch
/// matrix — an inconsistent shape must fail loudly rather than silently
/// unroll the wrong input rows.
pub fn im2col(input: &[f32], shape: &Im2colShape, col: &mut [f32]) {
    if let Err(e) = shape.validate() {
        panic!("im2col: {e}");
    }
    let Im2colShape {
        channels,
        height,
        width,
        kernel,
        stride,
        padding,
        out_h,
        out_w,
    } = *shape;
    let cols = shape.cols();
    assert_eq!(
        input.len(),
        channels * height * width,
        "im2col: input holds {} elements but [c, h, w] = [{channels}, {height}, {width}] requires {}",
        input.len(),
        channels * height * width
    );
    assert!(
        col.len() >= shape.rows() * cols,
        "im2col: col buffer holds {} elements but the {}×{} patch matrix requires {}",
        col.len(),
        shape.rows(),
        cols,
        shape.rows() * cols
    );
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = &mut col[(oy * out_w + ox) * cols..(oy * out_w + ox + 1) * cols];
            let mut tap = 0usize;
            for ic in 0..channels {
                let plane = &input[ic * height * width..(ic + 1) * height * width];
                for kh in 0..kernel {
                    let iy = (oy * stride + kh) as isize - padding as isize;
                    if iy < 0 || iy >= height as isize {
                        row[tap..tap + kernel].fill(0.0);
                        tap += kernel;
                        continue;
                    }
                    let in_row = &plane[iy as usize * width..(iy as usize + 1) * width];
                    for kw in 0..kernel {
                        let ix = (ox * stride + kw) as isize - padding as isize;
                        row[tap] = if ix < 0 || ix >= width as isize {
                            0.0
                        } else {
                            in_row[ix as usize]
                        };
                        tap += 1;
                    }
                }
            }
        }
    }
}

/// Convenience used by tests and benches: the naive triple loop the tiled
/// kernel must agree with bitwise.
pub fn gemm_nt_reference(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: BiasMode,
    c: &mut [f32],
) {
    tile_edge(0, m, 0, n, n, k, a, b, &bias, c);
}

/// FLOP count of one `gemm_nt` call (a multiply and an add per `(i, j, p)`
/// triple), used by the throughput reports.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn rand_vec(len: usize, r: &mut rand::rngs::StdRng) -> Vec<f32> {
        Tensor::rand_uniform(&[len.max(1)], -1.0, 1.0, r).data()[..len].to_vec()
    }

    #[test]
    fn tiled_gemm_matches_reference_bitwise_across_shapes() {
        let mut r = rng(0);
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (4, 4, 7),
            (5, 9, 13),
            (8, 3, 1),
            (3, 17, 45),
            (16, 25, 72),
            (7, 81, 18),
        ] {
            let a = rand_vec(m * k, &mut r);
            let b = rand_vec(n * k, &mut r);
            let row_bias = rand_vec(m, &mut r);
            let col_bias = rand_vec(n, &mut r);
            for bias in [
                BiasMode::None,
                BiasMode::RowInit(&row_bias),
                BiasMode::ColAfter(&col_bias),
            ] {
                let mut c_tiled = vec![0.0f32; m * n];
                let mut c_ref = vec![0.0f32; m * n];
                gemm_nt(m, n, k, &a, &b, bias, &mut c_tiled);
                gemm_nt_reference(m, n, k, &a, &b, bias, &mut c_ref);
                for (i, (x, y)) in c_tiled.iter().zip(c_ref.iter()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "({m},{n},{k}) {bias:?} element {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_rows_are_batch_invariant() {
        // Row i of a batched product equals the same row computed alone —
        // the property that makes lane retirement bitwise-safe.
        let (m, n, k) = (6usize, 10usize, 23usize);
        let mut r = rng(1);
        let a = rand_vec(m * k, &mut r);
        let b = rand_vec(n * k, &mut r);
        let bias = rand_vec(n, &mut r);
        let mut full = vec![0.0f32; m * n];
        gemm_nt(m, n, k, &a, &b, BiasMode::ColAfter(&bias), &mut full);
        for i in 0..m {
            let mut single = vec![0.0f32; n];
            gemm_nt(
                1,
                n,
                k,
                &a[i * k..(i + 1) * k],
                &b,
                BiasMode::ColAfter(&bias),
                &mut single,
            );
            for (j, (x, y)) in single.iter().zip(full[i * n..(i + 1) * n].iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} col {j}");
            }
        }
    }

    #[test]
    fn im2col_layout_matches_tap_order() {
        // 1 channel, 3×3 input, 2×2 kernel, stride 1, no padding.
        let input: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let shape = Im2colShape {
            channels: 1,
            height: 3,
            width: 3,
            kernel: 2,
            stride: 1,
            padding: 0,
            out_h: 2,
            out_w: 2,
        };
        let mut col = vec![0.0f32; shape.rows() * shape.cols()];
        im2col(&input, &shape, &mut col);
        // First output pixel sees the top-left 2×2 patch in (kh, kw) order.
        assert_eq!(&col[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // Last output pixel sees the bottom-right patch.
        assert_eq!(&col[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_pads_with_positive_zero() {
        let input = vec![-3.0f32];
        let shape = Im2colShape {
            channels: 1,
            height: 1,
            width: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
            out_h: 1,
            out_w: 1,
        };
        let mut col = vec![f32::NAN; 9];
        im2col(&input, &shape, &mut col);
        assert_eq!(col[4], -3.0);
        for (i, v) in col.iter().enumerate() {
            if i != 4 {
                assert_eq!(v.to_bits(), 0.0f32.to_bits(), "padding cell {i} must be +0.0");
            }
        }
    }

    #[test]
    fn scratch_buffer_grows_and_is_reused() {
        let mut scratch = GemmScratch::new();
        assert_eq!(scratch.col_buffer(16).len(), 16);
        scratch.col_buffer(16)[3] = 7.0;
        // Asking for less never shrinks; asking for more grows.
        assert_eq!(scratch.col_buffer(8).len(), 8);
        assert_eq!(scratch.col_buffer(64).len(), 64);
    }

    #[test]
    fn flops_count_both_mul_and_add() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    /// The Fast tier's spec, written as directly as possible: the oracle
    /// the packed/blocked/SIMD machinery must reproduce bit for bit.
    fn fast_spec_dot(a_row: &[f32], b_row: &[f32]) -> f32 {
        let mut lanes = [0.0f32; 8];
        for (p, (&av, &bv)) in a_row.iter().zip(b_row.iter()).enumerate() {
            lanes[p % 8] = av.mul_add(bv, lanes[p % 8]);
        }
        let s0 = lanes[0] + lanes[4];
        let s1 = lanes[1] + lanes[5];
        let s2 = lanes[2] + lanes[6];
        let s3 = lanes[3] + lanes[7];
        (s0 + s2) + (s1 + s3)
    }

    fn fast_spec_gemm(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        bias: BiasMode,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let dot = fast_spec_dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                c[i * n + j] = match bias {
                    BiasMode::None => dot,
                    BiasMode::RowInit(bb) => bb[i] + dot,
                    BiasMode::ColAfter(bb) => dot + bb[j],
                };
            }
        }
    }

    const FAST_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (2, 4, 8),
        (4, 4, 7),
        (5, 9, 13),
        (8, 3, 1),
        (3, 17, 45),
        (16, 25, 72),
        (7, 81, 18),
        (70, 55, 19), // crosses both MC and NC block boundaries
        (1, 130, 600),
    ];

    #[test]
    fn fast_tier_matches_spec_oracle_bitwise_across_shapes_and_backends() {
        // Packing, m/n blocking and every backend must reproduce the
        // eight-lane spec exactly — this is what makes Fast-tier goldens
        // portable across machines and force-scalar CI legs.
        let mut r = rng(7);
        let mut packs = PackScratch::new();
        for &(m, n, k) in FAST_SHAPES {
            let a = rand_vec(m * k, &mut r);
            let b = rand_vec(n * k, &mut r);
            let row_bias = rand_vec(m, &mut r);
            let col_bias = rand_vec(n, &mut r);
            for bias in [
                BiasMode::None,
                BiasMode::RowInit(&row_bias),
                BiasMode::ColAfter(&col_bias),
            ] {
                let mut c_spec = vec![0.0f32; m * n];
                fast_spec_gemm(m, n, k, &a, &b, bias, &mut c_spec);
                for backend in [FastBackend::Scalar, FastBackend::Avx2, FastBackend::Neon] {
                    let mut c_fast = vec![0.0f32; m * n];
                    gemm_nt_fast_with_backend(
                        m, n, k, &a, &b, bias, &mut c_fast, &mut packs, backend,
                    );
                    for (i, (x, y)) in c_fast.iter().zip(c_spec.iter()).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "({m},{n},{k}) {bias:?} {backend:?} element {i}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fast_tier_is_close_to_reference() {
        // Fast reassociates, so equality is tolerance-based: both tiers
        // approximate the exact sum, and for these magnitudes and k
        // extents a few ULP of the term-magnitude sum is a generous bound.
        let mut r = rng(8);
        let mut packs = PackScratch::new();
        for &(m, n, k) in FAST_SHAPES {
            let a = rand_vec(m * k, &mut r);
            let b = rand_vec(n * k, &mut r);
            let mut c_ref = vec![0.0f32; m * n];
            let mut c_fast = vec![0.0f32; m * n];
            gemm_nt(m, n, k, &a, &b, BiasMode::None, &mut c_ref);
            gemm_nt_with(
                m,
                n,
                k,
                &a,
                &b,
                BiasMode::None,
                &mut c_fast,
                Precision::Fast,
                &mut packs,
            );
            for i in 0..m {
                for j in 0..n {
                    let mag: f32 = a[i * k..(i + 1) * k]
                        .iter()
                        .zip(&b[j * k..(j + 1) * k])
                        .map(|(x, y)| (x * y).abs())
                        .sum();
                    let bound = 2.0 * (k as f32) * f32::EPSILON * mag + 1e-30;
                    let diff = (c_ref[i * n + j] - c_fast[i * n + j]).abs();
                    assert!(
                        diff <= bound,
                        "({m},{n},{k}) element ({i},{j}): |{}-{}| = {diff} > {bound}",
                        c_ref[i * n + j],
                        c_fast[i * n + j]
                    );
                }
            }
        }
    }

    #[test]
    fn reference_precision_through_gemm_nt_with_is_bitwise_gemm_nt() {
        let (m, n, k) = (6usize, 10usize, 23usize);
        let mut r = rng(9);
        let a = rand_vec(m * k, &mut r);
        let b = rand_vec(n * k, &mut r);
        let bias = rand_vec(n, &mut r);
        let mut c_direct = vec![0.0f32; m * n];
        let mut c_with = vec![0.0f32; m * n];
        gemm_nt(m, n, k, &a, &b, BiasMode::ColAfter(&bias), &mut c_direct);
        let mut packs = PackScratch::new();
        gemm_nt_with(
            m,
            n,
            k,
            &a,
            &b,
            BiasMode::ColAfter(&bias),
            &mut c_with,
            Precision::Reference,
            &mut packs,
        );
        assert_eq!(
            c_direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            c_with.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scratch_carries_precision_and_splits_borrows() {
        let mut scratch = GemmScratch::new();
        assert_eq!(scratch.precision(), Precision::Reference);
        scratch.set_precision(Precision::Fast);
        assert_eq!(scratch.precision(), Precision::Fast);
        let (col, _packs, precision) = scratch.col_packs_precision(12);
        assert_eq!(col.len(), 12);
        assert_eq!(precision, Precision::Fast);
        let fast = GemmScratch::with_precision(Precision::Fast);
        assert_eq!(fast.precision(), Precision::Fast);
    }

    #[test]
    fn precision_parse_inverts_name() {
        for p in [Precision::Reference, Precision::Fast] {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse("REF"), Some(Precision::Reference));
        assert_eq!(Precision::parse("bogus"), None);
    }

    #[test]
    fn gemm_shape_asserts_fire_in_release_builds() {
        let a = vec![0.0f32; 3];
        let b = vec![0.0f32; 4];
        let mut c = vec![0.0f32; 4];
        let err = std::panic::catch_unwind(move || {
            gemm_nt(2, 2, 2, &a, &b, BiasMode::None, &mut c);
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("m×k = 2×2"), "unexpected panic message: {msg}");
    }

    #[test]
    fn im2col_shape_validate_rejects_mismatched_output_extent() {
        // The regression shape: consistent input geometry, wrong out_h.
        let shape = Im2colShape {
            channels: 1,
            height: 5,
            width: 5,
            kernel: 3,
            stride: 2,
            padding: 1,
            out_h: 4, // correct value is 3
            out_w: 2, // correct value is 3
        };
        let err = shape.validate().unwrap_err();
        assert!(
            err.to_string().contains("does not match"),
            "unexpected error: {err}"
        );
        let mut good = shape;
        good.out_h = 3;
        good.out_w = 3;
        good.validate().expect("consistent shape must validate");
        // And im2col itself must refuse the bad shape loudly.
        let input = vec![0.0f32; 25];
        let mut col = vec![0.0f32; shape.rows() * shape.cols()];
        let result = std::panic::catch_unwind(move || {
            im2col(&input, &shape, &mut col);
        });
        assert!(result.is_err(), "im2col accepted an inconsistent shape");
    }

    #[test]
    fn im2col_shape_validate_rejects_degenerate_geometry() {
        let mut shape = Im2colShape {
            channels: 1,
            height: 3,
            width: 3,
            kernel: 2,
            stride: 1,
            padding: 0,
            out_h: 2,
            out_w: 2,
        };
        shape.kernel = 0;
        assert!(shape.validate().is_err());
        shape.kernel = 5;
        assert!(shape.validate().is_err(), "kernel larger than padded input");
    }
}
