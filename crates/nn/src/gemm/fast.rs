//! The Fast tier: packed, cache-blocked microkernels behind one
//! backend-independent accumulation spec.
//!
//! # The eight-lane accumulation spec
//!
//! Every Fast-tier output element `C[i][j]` is computed as follows, and
//! *every* backend — AVX2+FMA ([`super::simd_avx2`]), NEON
//! ([`super::simd_neon`]) and the portable scalar fallback
//! ([`super::fast_scalar`]) — implements these exact steps:
//!
//! 1. Round `k` up to `kp`, the next multiple of [`KR`] (= 8), and
//!    zero-pad both operand rows to `kp` terms.  `fma(0, 0, acc) == acc`
//!    bitwise for the finite values networks hold, so the padding terms
//!    are arithmetic no-ops.
//! 2. Keep eight lane accumulators `l[0..8]`, all starting at `+0.0`.
//!    Lane `t` accumulates the terms with index `p ≡ t (mod 8)` in
//!    ascending `p` order, each via one *fused* multiply-add
//!    (`l[t] = fma(a[p], b[p], l[t])`) — a single rounding per term.
//! 3. Reduce with a fixed tree:
//!    `s0 = l0+l4`, `s1 = l1+l5`, `s2 = l2+l6`, `s3 = l3+l7`,
//!    `dot = (s0+s2) + (s1+s3)`.
//! 4. Apply the bias with one plain IEEE add:
//!    `RowInit` → `bias[i] + dot`, `ColAfter` → `dot + bias[j]`,
//!    `None` → `dot`.
//!
//! `f32::mul_add`, AVX2 `vfmadd231ps` and NEON `fmla` are all
//! correctly-rounded fused operations, and IEEE adds are identical on
//! every target, so the three backends agree *bit for bit* — which is
//! what lets the Fast tier ship its own golden snapshot and lets CI prove
//! the scalar fallback equals the SIMD path on the same host.
//!
//! # Packing and blocking
//!
//! Operands are packed into zero-padded row-major panels (`kp`-strided
//! rows, row counts rounded up to the microtile extents).  Packing buys
//! three things: unit-stride loads, a tail-free `k` loop, and — because
//! the SIMD entry points assert the panel bounds — safely encapsulated
//! raw-pointer access for the microkernels.
//!
//! When an operand **already is** a valid panel, packing is skipped and
//! the microkernels read the caller's slice directly: `A` when `kp == k`
//! and `m` is a multiple of [`MR_F`], and every full row group of `B`
//! when `kp == k` (only `B`'s final partial group, if any, is packed).
//! The policy networks' hot shapes — even batches, `k` a multiple of
//! eight — take the zero-copy path for `A` and for all of dense `B`; the
//! aliased rows hold exactly the bytes packing would have copied, so the
//! skip cannot change bits.
//!
//! The microtile sweep is blocked over `m` and `n` only ([`MC`]×[`NC`]),
//! never over `k`: each output element is still produced by one
//! uninterrupted spec-order accumulation, so block sizes can change cache
//! behaviour but never bits.  (Policy-network `k` extents are at most a
//! few thousand — two microtile operand sets stay resident in L1.)

use super::{fast_scalar, BiasMode, FastBackend, PackScratch};

#[cfg(target_arch = "x86_64")]
use super::simd_avx2;
#[cfg(target_arch = "aarch64")]
use super::simd_neon;

/// Lane count of the accumulation spec (terms per fused step).
pub(crate) const KR: usize = 8;
/// `A` rows per microtile.
pub(crate) const MR_F: usize = 2;
/// `B` rows per microtile.
pub(crate) const NR_F: usize = 4;
/// `A`-row block extent of the microtile sweep (L2-resident panel slice).
const MC: usize = 64;
/// `B`-row block extent of the microtile sweep (L1-resident panel slice).
const NC: usize = 48;

/// The Fast-tier `C = A · Bᵀ` driver: packs both operands, then sweeps
/// `MR_F`×`NR_F` microtiles of the chosen backend over the panels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_nt_fast(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: BiasMode,
    c: &mut [f32],
    packs: &mut PackScratch,
    backend: FastBackend,
) {
    super::check_gemm_shapes(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    let kp = k.next_multiple_of(KR);
    let mp = m.next_multiple_of(MR_F);
    let np = n.next_multiple_of(NR_F);

    // Zero-copy fast paths: an operand whose rows already have the panel
    // layout is read in place (see the module docs), so the hot policy
    // shapes copy nothing for `A` and only `B`'s partial final row group.
    let alias_a = kp == k && mp == m;
    let alias_b = kp == k;
    // First `B` panel row group that is *not* fully backed by `b`.
    let n_full = if alias_b { n - n % NR_F } else { 0 };
    let (pa, pb) = packs.panels(
        if alias_a { 0 } else { mp * kp },
        if alias_b { np * kp - n_full * kp } else { np * kp },
    );
    if !alias_a {
        pack_rows(a, m, k, kp, mp, pa);
    }
    if alias_b {
        if n_full < n {
            pack_rows(&b[n_full * k..], n - n_full, k, kp, NR_F, pb);
        }
    } else {
        pack_rows(b, n, k, kp, np, pb);
    }
    let (pa, pb): (&[f32], &[f32]) = (pa, pb);

    // m/n-blocked strip sweep: one backend call covers a whole column of
    // microtiles ([`MR_F`] ≤ MC rows against one NR_F row group), so the
    // SIMD entry points' per-call costs amortize over the column.  The
    // padded fringe rows multiply into dots we simply never store, which
    // keeps every microtile the full MR_F×NR_F shape (no edge-kernel
    // variants to keep in bitwise sync).
    let mut dots = [0.0f32; MC * NR_F];
    let mut jc = 0;
    while jc < np {
        let jc_end = (jc + NC).min(np);
        let mut ic = 0;
        while ic < mp {
            let ic_end = (ic + MC).min(mp);
            let ra: &[f32] = if alias_a { a } else { pa };
            let mut j0 = jc;
            while j0 < jc_end {
                // Resolve the strip's B rows: the caller's slice on the
                // zero-copy path, the packed panel otherwise (B's packed
                // fringe group sits at offset 0).
                let (rb, bj) = if !alias_b {
                    (pb, j0)
                } else if j0 < n_full {
                    (b, j0)
                } else {
                    (pb, j0 - n_full)
                };
                let strip = &mut dots[..(ic_end - ic) * NR_F];
                match backend {
                    #[cfg(target_arch = "x86_64")]
                    FastBackend::Avx2 => simd_avx2::strip_at(kp, ra, ic, ic_end, rb, bj, strip),
                    #[cfg(target_arch = "aarch64")]
                    FastBackend::Neon => simd_neon::strip_at(kp, ra, ic, ic_end, rb, bj, strip),
                    _ => fast_scalar::strip(kp, ra, ic, ic_end, rb, bj, strip),
                }
                // Store the strip's in-bounds dots (`ni` rows × `nj`
                // columns; the rest is padded fringe), bias applied per
                // the mode — resolved once out here, so the inner loops
                // stay branch-free.
                let ni = (ic_end - ic).min(m - ic);
                let nj = NR_F.min(n - j0);
                match bias {
                    BiasMode::None => {
                        for (r, dot_row) in strip.chunks_exact(NR_F).take(ni).enumerate() {
                            let at = (ic + r) * n + j0;
                            c[at..at + nj].copy_from_slice(&dot_row[..nj]);
                        }
                    }
                    BiasMode::RowInit(bias) if nj == NR_F => {
                        // Full-width groups get a fixed-trip inner loop
                        // the compiler unrolls flat.
                        for (r, dot_row) in strip.chunks_exact(NR_F).take(ni).enumerate() {
                            let i = ic + r;
                            let row_bias = bias[i];
                            let out = &mut c[i * n + j0..i * n + j0 + NR_F];
                            for (out_el, &dot) in out.iter_mut().zip(dot_row) {
                                *out_el = row_bias + dot;
                            }
                        }
                    }
                    BiasMode::RowInit(bias) => {
                        for (r, dot_row) in strip.chunks_exact(NR_F).take(ni).enumerate() {
                            let i = ic + r;
                            let row_bias = bias[i];
                            for (out, &dot) in
                                c[i * n + j0..i * n + j0 + nj].iter_mut().zip(dot_row)
                            {
                                *out = row_bias + dot;
                            }
                        }
                    }
                    BiasMode::ColAfter(bias) => {
                        let col_bias = &bias[j0..j0 + nj];
                        for (r, dot_row) in strip.chunks_exact(NR_F).take(ni).enumerate() {
                            let at = (ic + r) * n + j0;
                            for ((out, &dot), &cb) in
                                c[at..at + nj].iter_mut().zip(dot_row).zip(col_bias)
                            {
                                *out = dot + cb;
                            }
                        }
                    }
                }
                j0 += NR_F;
            }
            ic += MC;
        }
        jc += NC;
    }
}

/// Packs `rows`×`k` row-major `src` into a `rows_padded`×`kp` panel:
/// each row's `k..kp` tail and every row past `rows` is zero-filled, so
/// the microkernels can run tail-free full-shape loops.
fn pack_rows(src: &[f32], rows: usize, k: usize, kp: usize, rows_padded: usize, dst: &mut [f32]) {
    for r in 0..rows {
        dst[r * kp..r * kp + k].copy_from_slice(&src[r * k..(r + 1) * k]);
        dst[r * kp + k..(r + 1) * kp].fill(0.0);
    }
    dst[rows * kp..rows_padded * kp].fill(0.0);
}
