//! Portable scalar implementation of the Fast tier's eight-lane
//! accumulation spec (see [`super::fast`]): the fallback on CPUs without
//! AVX2/NEON and the arbiter CI pins the SIMD backends against.
//!
//! `f32::mul_add` lowers to a hardware FMA where one exists and to the
//! correctly-rounded libm `fmaf` otherwise — either way a single rounding
//! per term, exactly what the vector `fmadd` lanes compute.

use super::fast::{KR, MR_F, NR_F};

/// A strip of microtiles: `A` rows `[i_begin, i_end)` (a multiple of
/// [`MR_F`] rows) against `B` rows `[j0, j0 + NR_F)`, raw spec dots
/// written row-major into `out` (`NR_F` dots per `A` row).  One call per
/// strip is the granularity all backends share, so the per-call cost of
/// the SIMD entry points (bounds asserts, ISA detection) amortizes over
/// the whole column of microtiles.
pub(crate) fn strip(
    kp: usize,
    a: &[f32],
    i_begin: usize,
    i_end: usize,
    b: &[f32],
    j0: usize,
    out: &mut [f32],
) {
    debug_assert_eq!((i_end - i_begin) % MR_F, 0);
    debug_assert_eq!(out.len(), (i_end - i_begin) * NR_F);
    let mut i0 = i_begin;
    while i0 < i_end {
        let dots = microkernel(kp, &a[i0 * kp..], &b[j0 * kp..]);
        for (r, dot_row) in dots.iter().enumerate() {
            let base = (i0 - i_begin + r) * NR_F;
            out[base..base + NR_F].copy_from_slice(dot_row);
        }
        i0 += MR_F;
    }
}

/// One `MR_F`×`NR_F` microtile of raw spec dots over zero-padded packed
/// rows: `a` holds `MR_F` consecutive `kp`-strided rows, `b` holds `NR_F`.
pub(crate) fn microkernel(kp: usize, a: &[f32], b: &[f32]) -> [[f32; NR_F]; MR_F] {
    debug_assert_eq!(kp % KR, 0);
    let mut out = [[0.0f32; NR_F]; MR_F];
    for (r, out_row) in out.iter_mut().enumerate() {
        let a_row = &a[r * kp..(r + 1) * kp];
        for (s, out_el) in out_row.iter_mut().enumerate() {
            let b_row = &b[s * kp..(s + 1) * kp];
            let mut lanes = [0.0f32; KR];
            for (a_chunk, b_chunk) in a_row.chunks_exact(KR).zip(b_row.chunks_exact(KR)) {
                for (t, lane) in lanes.iter_mut().enumerate() {
                    *lane = a_chunk[t].mul_add(b_chunk[t], *lane);
                }
            }
            *out_el = reduce8(&lanes);
        }
    }
    out
}

/// The spec's fixed reduction tree, shared verbatim by every backend so
/// the final sums round identically.
#[inline]
pub(crate) fn reduce8(l: &[f32; KR]) -> f32 {
    let s0 = l[0] + l[4];
    let s1 = l[1] + l[5];
    let s2 = l[2] + l[6];
    let s3 = l[3] + l[7];
    (s0 + s2) + (s1 + s3)
}
