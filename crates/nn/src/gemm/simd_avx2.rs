//! AVX2+FMA implementation of the Fast tier's eight-lane accumulation
//! spec (see [`super::fast`]): one 256-bit register *is* the spec's eight
//! lanes, so each `vfmadd231ps` performs one spec step for all lanes of
//! one output element at once.
//!
//! This module is the crate's only x86 unsafe surface (with its NEON
//! twin); the crate root demotes `forbid(unsafe_code)` to `deny` solely
//! so these two leaf modules can opt in.  All pointer arithmetic is
//! bounds-justified by the panel invariants asserted in [`strip_at`].
#![allow(unsafe_code)]

use super::fast::{KR, MR_F, NR_F};
use std::arch::x86_64::{
    __m128, __m256, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_fmadd_ps,
    _mm256_loadu_ps, _mm256_setzero_ps, _mm_add_ps, _mm_movehl_ps, _mm_movelh_ps, _mm_storeu_ps,
    _mm_unpackhi_ps, _mm_unpacklo_ps,
};

/// Safe strip entry used by the [`super::fast`] driver: `A` rows
/// `[i_begin, i_end)` (a multiple of [`MR_F`] rows) against `B` rows
/// `[j0, j0 + NR_F)`, raw spec dots written row-major into `out`.  All
/// unsafe preconditions are discharged here — panel bounds by assertion,
/// ISA availability by (cached) runtime detection — and amortize over the
/// strip's whole column of microtiles.
pub(crate) fn strip_at(
    kp: usize,
    pa: &[f32],
    i_begin: usize,
    i_end: usize,
    pb: &[f32],
    j0: usize,
    out: &mut [f32],
) {
    assert_eq!(kp % KR, 0);
    assert!(i_begin <= i_end && (i_end - i_begin).is_multiple_of(MR_F));
    assert!(pa.len() >= i_end * kp);
    assert!(pb.len() >= (j0 + NR_F) * kp);
    assert_eq!(out.len(), (i_end - i_begin) * NR_F);
    assert!(
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma"),
        "AVX2 backend selected on a CPU without avx2+fma"
    );
    // SAFETY: the asserts above guarantee the strip's row-bounds contract
    // and that the required target features are present.
    unsafe {
        strip(
            kp,
            pa.as_ptr().add(i_begin * kp),
            i_end - i_begin,
            pb.as_ptr().add(j0 * kp),
            out.as_mut_ptr(),
        );
    }
}

/// Sweeps `rows / MR_F` microtiles down the strip, one uninterrupted
/// spec-order accumulation per output element.
///
/// # Safety
///
/// The caller must guarantee AVX2 and FMA are available (runtime
/// detection), `kp % 8 == 0`, `rows % MR_F == 0`, that `a` points at
/// `rows` and `b` at `NR_F` consecutive `kp`-stride rows of readable
/// `f32`s, and that `out` holds `rows * NR_F` writable `f32`s.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn strip(kp: usize, a: *const f32, rows: usize, b: *const f32, out: *mut f32) {
    let mut i0 = 0;
    while i0 < rows {
        let mut acc = [[_mm256_setzero_ps(); NR_F]; MR_F];
        let a0 = a.add(i0 * kp);
        // One spec step: terms [p, p+KR) of all eight accumulators, each
        // one fused multiply-add.  The two-step unroll below only trims
        // loop overhead — each accumulator's FMA chain stays sequential
        // in ascending p, so the unroll cannot change bits.
        macro_rules! spec_step {
            ($p:expr) => {{
                let p = $p;
                let va0 = _mm256_loadu_ps(a0.add(p));
                let va1 = _mm256_loadu_ps(a0.add(kp + p));
                let vb0 = _mm256_loadu_ps(b.add(p));
                acc[0][0] = _mm256_fmadd_ps(va0, vb0, acc[0][0]);
                acc[1][0] = _mm256_fmadd_ps(va1, vb0, acc[1][0]);
                let vb1 = _mm256_loadu_ps(b.add(kp + p));
                acc[0][1] = _mm256_fmadd_ps(va0, vb1, acc[0][1]);
                acc[1][1] = _mm256_fmadd_ps(va1, vb1, acc[1][1]);
                let vb2 = _mm256_loadu_ps(b.add(2 * kp + p));
                acc[0][2] = _mm256_fmadd_ps(va0, vb2, acc[0][2]);
                acc[1][2] = _mm256_fmadd_ps(va1, vb2, acc[1][2]);
                let vb3 = _mm256_loadu_ps(b.add(3 * kp + p));
                acc[0][3] = _mm256_fmadd_ps(va0, vb3, acc[0][3]);
                acc[1][3] = _mm256_fmadd_ps(va1, vb3, acc[1][3]);
            }};
        }
        let mut p = 0;
        while p + 2 * KR <= kp {
            spec_step!(p);
            spec_step!(p + KR);
            p += 2 * KR;
        }
        if p < kp {
            spec_step!(p);
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let dots = reduce_row(acc_row);
            _mm_storeu_ps(out.add((i0 + r) * NR_F), dots);
        }
        i0 += MR_F;
    }
}

/// Applies the spec's fixed reduction tree to one microtile row's four
/// accumulators **in registers**, yielding their four dots as one vector.
///
/// Per accumulator `j`, `lo + hi` performs `s0..s3 = l0+l4 .. l3+l7` as
/// four parallel IEEE adds; the 4×4 transpose then lines the four
/// accumulators' `s`-terms up lanewise, so `(p0+p2) + (p1+p3)` computes
/// every dot's `(s0+s2) + (s1+s3)` — each spec add one distinct IEEE
/// operation, bitwise identical to the other backends' reductions
/// ([`super::fast_scalar::reduce8`]) at a fraction of the
/// spill-and-rescan cost.
#[inline]
unsafe fn reduce_row(acc_row: &[__m256; NR_F]) -> __m128 {
    let s: [__m128; NR_F] = [
        _mm_add_ps(_mm256_castps256_ps128(acc_row[0]), _mm256_extractf128_ps::<1>(acc_row[0])),
        _mm_add_ps(_mm256_castps256_ps128(acc_row[1]), _mm256_extractf128_ps::<1>(acc_row[1])),
        _mm_add_ps(_mm256_castps256_ps128(acc_row[2]), _mm256_extractf128_ps::<1>(acc_row[2])),
        _mm_add_ps(_mm256_castps256_ps128(acc_row[3]), _mm256_extractf128_ps::<1>(acc_row[3])),
    ];
    // 4×4 transpose: p_t[j] = s[j][t].
    let t0 = _mm_unpacklo_ps(s[0], s[1]); // s00 s10 s01 s11
    let t1 = _mm_unpackhi_ps(s[0], s[1]); // s02 s12 s03 s13
    let t2 = _mm_unpacklo_ps(s[2], s[3]); // s20 s30 s21 s31
    let t3 = _mm_unpackhi_ps(s[2], s[3]); // s22 s32 s23 s33
    let p0 = _mm_movelh_ps(t0, t2); // s00 s10 s20 s30
    let p1 = _mm_movehl_ps(t2, t0); // s01 s11 s21 s31
    let p2 = _mm_movelh_ps(t1, t3); // s02 s12 s22 s32
    let p3 = _mm_movehl_ps(t3, t1); // s03 s13 s23 s33
    _mm_add_ps(_mm_add_ps(p0, p2), _mm_add_ps(p1, p3)) // (s0+s2)+(s1+s3), per j
}
