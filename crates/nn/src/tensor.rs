//! A minimal owned, contiguous, row-major tensor of `f32` values.
//!
//! [`Tensor`] deliberately implements only what the BERRY training loop
//! needs: construction, element-wise arithmetic, 2-D matrix multiplication,
//! simple reductions and shape manipulation.  All operations are bounds
//! checked and allocate fresh output tensors; in-place variants are provided
//! where the DQN inner loop benefits from them.

use crate::error::NnError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// An owned, contiguous, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use berry_nn::tensor::Tensor;
///
/// # fn main() -> Result<(), berry_nn::NnError> {
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::full(&[2, 2], 1.0);
/// let c = a.add(&b)?;
/// assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and a data buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeDataMismatch`] if the product of the shape
    /// does not equal `data.len()`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(NnError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a tensor with values drawn from a uniform distribution over
    /// `[low, high)` using the supplied random number generator.
    pub fn rand_uniform<R: rand::Rng + ?Sized>(
        shape: &[usize],
        low: f32,
        high: f32,
        rng: &mut R,
    ) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.gen_range(low..high)).collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor with values drawn from a normal distribution with the
    /// given mean and standard deviation (Box–Muller transform, so only the
    /// supplied [`rand::Rng`] is needed).
    pub fn rand_normal<R: rand::Rng + ?Sized>(
        shape: &[usize],
        mean: f32,
        std: f32,
        rng: &mut R,
    ) -> Self {
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            let z0 = mag * (2.0 * std::f32::consts::PI * u2).cos();
            let z1 = mag * (2.0 * std::f32::consts::PI * u2).sin();
            data.push(mean + std * z0);
            if data.len() < len {
                data.push(mean + std * z1);
            }
        }
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tensor rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape holding the same number of elements.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeDataMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(NnError::ShapeDataMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Element access by flat (row-major) index.
    pub fn get(&self, index: usize) -> Option<f32> {
        self.data.get(index).copied()
    }

    /// Element access for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.rank(), 2, "at2 requires a rank-2 tensor");
        let cols = self.shape[1];
        self.data[row * cols + col]
    }

    /// Mutable element access for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    pub fn at2_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        assert_eq!(self.rank(), 2, "at2_mut requires a rank-2 tensor");
        let cols = self.shape[1];
        &mut self.data[row * cols + col]
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += scale * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Returns a new tensor whose elements are `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|v| v * scalar)
    }

    /// In-place multiplication by a scalar.
    pub fn scale_in_place(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Fills the tensor with a constant value.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Reshapes the tensor in place to `shape`, growing or shrinking the
    /// backing buffer while reusing its allocation.
    ///
    /// Existing element values are unspecified afterwards; callers are
    /// expected to overwrite every element (this is the resize primitive
    /// behind the reusable inference scratch buffers).
    pub fn reset(&mut self, shape: &[usize]) {
        let len: usize = shape.iter().product();
        self.data.resize(len, 0.0);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Copies `other`'s shape and data into `self`, reusing `self`'s
    /// allocations.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.reset(other.shape());
        self.data.copy_from_slice(&other.data);
    }

    /// Applies `f` element-wise, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Matrix multiplication of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::RankMismatch`] if either operand is not rank 2, or
    /// [`NnError::MatmulMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(NnError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(NnError::RankMismatch {
                expected: 2,
                actual: other.rank(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        if k != k2 {
            return Err(NnError::MatmulMismatch {
                left_cols: k,
                right_rows: k2,
            });
        }
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.data[i * k..(i + 1) * k];
            for (p, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(NnError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for the empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for the empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value of any element (0.0 for the empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element (ties resolved toward the lower index).
    ///
    /// Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        argmax_slice(&self.data)
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Clamps every element into `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }

    /// Extracts row `index` of a rank-2 tensor as a `[1, cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the row index is out of bounds.
    pub fn row(&self, index: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row requires a rank-2 tensor");
        let cols = self.shape[1];
        let start = index * cols;
        Tensor {
            shape: vec![1, cols],
            data: self.data[start..start + cols].to_vec(),
        }
    }

    /// Stacks rank-1 or `[1, n]` tensors into a `[rows, n]` batch tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] if `rows` is empty or the rows do
    /// not all share the same length.
    pub fn stack_rows(rows: &[Tensor]) -> Result<Tensor> {
        if rows.is_empty() {
            return Err(NnError::InvalidArgument(
                "stack_rows requires at least one row".into(),
            ));
        }
        let width = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * width);
        for r in rows {
            if r.len() != width {
                return Err(NnError::InvalidArgument(format!(
                    "stack_rows: row of length {} does not match width {}",
                    r.len(),
                    width
                )));
            }
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(vec![rows.len(), width], data)
    }
}

/// Index of the maximum element of a slice, with ties resolved toward the
/// lower index; `None` for an empty slice.
///
/// This is the **single source** of the argmax scan and tie-break shared by
/// [`Tensor::argmax`] and the batched rollout engine's per-row greedy
/// action selection — the two must agree bitwise for the lane-count
/// invariance contract to hold, so neither reimplements the loop.
pub fn argmax_slice(data: &[f32]) -> Option<usize> {
    if data.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_v = data[0];
    for (i, &v) in data.iter().enumerate().skip(1) {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    Some(best)
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            NnError::ShapeDataMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[3, 2]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[2]);
        assert!(o.data().iter().all(|&v| v == 1.0));
        let f = Tensor::full(&[2, 2], 3.5);
        assert!(f.data().iter().all(|&v| v == 3.5));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![4.0, 3.0, 2.0, 1.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_errors() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(
            a.add(&b).unwrap_err(),
            NnError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn matmul_correctness() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            NnError::MatmulMismatch { .. }
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            v.matmul(&b).unwrap_err(),
            NnError::RankMismatch { .. }
        ));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(0, 1), 4.0);
        let back = t.transpose().unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![4], vec![1.0, -2.0, 3.0, 0.5]).unwrap();
        assert_eq!(a.sum(), 2.5);
        assert!((a.mean() - 0.625).abs() < 1e-6);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.abs_max(), 3.0);
        assert_eq!(a.argmax(), Some(2));
    }

    #[test]
    fn argmax_of_empty_is_none() {
        let a = Tensor::zeros(&[0]);
        assert_eq!(a.argmax(), None);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = a.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), a.data());
        assert!(a.reshape(&[7]).is_err());
    }

    #[test]
    fn row_and_stack_rows() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r1 = a.row(1);
        assert_eq!(r1.data(), &[4.0, 5.0, 6.0]);
        let stacked = Tensor::stack_rows(&[a.row(0), a.row(1)]).unwrap();
        assert_eq!(stacked, a);
        assert!(Tensor::stack_rows(&[]).is_err());
    }

    #[test]
    fn rand_normal_statistics_are_sane() {
        let mut r = rng();
        let t = Tensor::rand_normal(&[10_000], 1.0, 2.0, &mut r);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.4, "variance was {var}");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut r = rng();
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut r);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn add_scaled_and_scale_in_place() {
        let mut a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![1.0, 1.0, 1.0]).unwrap();
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
        a.scale_in_place(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        let c = Tensor::zeros(&[2]);
        assert!(a.add_scaled(&c, 1.0).is_err());
    }

    #[test]
    fn reset_and_copy_from_reuse_buffers() {
        let mut t = Tensor::from_vec(vec![2, 3], vec![1.0; 6]).unwrap();
        t.reset(&[4]);
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.len(), 4);
        let src = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        t.copy_from(&src);
        assert_eq!(t, src);
    }

    #[test]
    fn clamp_in_place_bounds_values() {
        let mut a = Tensor::from_vec(vec![4], vec![-5.0, -0.5, 0.5, 5.0]).unwrap();
        a.clamp_in_place(-1.0, 1.0);
        assert_eq!(a.data(), &[-1.0, -0.5, 0.5, 1.0]);
    }

    #[test]
    fn display_is_compact_for_large_tensors() {
        let a = Tensor::zeros(&[100]);
        let s = format!("{a}");
        assert!(s.contains("100 elements"));
        let b = Tensor::zeros(&[2]);
        assert!(format!("{b}").contains("[0.0, 0.0]"));
    }

    proptest! {
        #[test]
        fn prop_add_commutes(values in proptest::collection::vec(-1e3f32..1e3, 1..64)) {
            let n = values.len();
            let a = Tensor::from_vec(vec![n], values.clone()).unwrap();
            let rev: Vec<f32> = values.iter().rev().copied().collect();
            let b = Tensor::from_vec(vec![n], rev).unwrap();
            let ab = a.add(&b).unwrap();
            let ba = b.add(&a).unwrap();
            prop_assert_eq!(ab.data(), ba.data());
        }

        #[test]
        fn prop_transpose_is_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let t = Tensor::rand_uniform(&[rows, cols], -1.0, 1.0, &mut r);
            let tt = t.transpose().unwrap().transpose().unwrap();
            prop_assert_eq!(t, tt);
        }

        #[test]
        fn prop_matmul_identity(n in 1usize..8, seed in 0u64..1000) {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
            let mut eye = Tensor::zeros(&[n, n]);
            for i in 0..n {
                *eye.at2_mut(i, i) = 1.0;
            }
            let prod = a.matmul(&eye).unwrap();
            for (x, y) in prod.data().iter().zip(a.data().iter()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_scale_then_sum_scales_sum(scale in -10.0f32..10.0, values in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
            let n = values.len();
            let t = Tensor::from_vec(vec![n], values).unwrap();
            let lhs = t.scale(scale).sum();
            let rhs = t.sum() * scale;
            prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs.abs()));
        }
    }
}
