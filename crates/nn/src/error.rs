//! Error types for the `berry-nn` crate.

use std::fmt;

/// Errors produced by tensor and network operations.
///
/// All fallible public functions in this crate return [`NnError`] so callers
/// can distinguish shape mismatches from invalid arguments without panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// The number of elements implied by a shape does not match the length of
    /// the provided data buffer.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// A matrix product was requested with incompatible inner dimensions.
    MatmulMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A tensor of a particular rank was required.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Provided rank.
        actual: usize,
    },
    /// A parameter value was outside its valid domain.
    InvalidArgument(String),
    /// A serialized model could not be restored.
    DeserializeMismatch(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were provided"
            ),
            NnError::ShapeMismatch { left, right } => {
                write!(f, "tensor shapes {left:?} and {right:?} are incompatible")
            }
            NnError::MatmulMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matrix product inner dimensions differ: {left_cols} vs {right_rows}"
            ),
            NnError::RankMismatch { expected, actual } => {
                write!(f, "expected a rank-{expected} tensor, got rank {actual}")
            }
            NnError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            NnError::DeserializeMismatch(msg) => write!(f, "deserialize mismatch: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            NnError::ShapeDataMismatch {
                expected: 4,
                actual: 3,
            },
            NnError::ShapeMismatch {
                left: vec![2, 2],
                right: vec![3],
            },
            NnError::MatmulMismatch {
                left_cols: 2,
                right_rows: 3,
            },
            NnError::RankMismatch {
                expected: 2,
                actual: 1,
            },
            NnError::InvalidArgument("x".into()),
            NnError::DeserializeMismatch("y".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
