//! Lockstep episode lanes: many concurrent episodes, one forward pass.
//!
//! The paper's evaluation protocol runs hundreds of thousands of greedy
//! environment steps per operating point (500 fault maps × episodes ×
//! steps), and after the quantize-once pipeline the dominant cost is the
//! batch-1 policy forward pass each step pays.  [`VecEnv`] amortizes it:
//! `N` episode *lanes* advance in lockstep, their observations are stacked
//! into one `[N, ...]` batch, a single [`berry_nn::network::Sequential`]
//! inference serves every lane, and finished lanes retire and are refilled
//! with the next pending episode until the budget is exhausted.
//!
//! # Determinism
//!
//! Every episode owns an RNG stream seeded by [`episode_seed`] from the
//! evaluation's map seed and the episode's index — never from a shared
//! generator whose consumption order would depend on lane scheduling.
//! Combined with the batch invariance of the GEMM inference core (row `i`
//! of a batched forward is bitwise equal to the same row alone), the
//! aggregate statistics are **bitwise identical for any lane count**,
//! including the serial one-lane reference; `tests/parallel_determinism.rs`
//! and the batched-rollout property tests pin this.

use crate::env::{Environment, TerminalKind};
use berry_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the RNG seed of episode `episode_index` within one fault map's
/// evaluation from the map's seed (a SplitMix64-style mix, mirroring
/// `fault_map_seed` with distinct constants so the two streams never
/// collide).
///
/// Both the batched lockstep engine and the serial per-episode reference
/// seed each episode's RNG with exactly this function, which is what makes
/// their statistics bitwise identical for any lane count.
#[must_use]
pub fn episode_seed(map_seed: u64, episode_index: u64) -> u64 {
    let mut z = map_seed
        .wrapping_add(episode_index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything one finished episode contributes to the aggregate
/// statistics, tagged with its index so records can be folded in episode
/// order no matter which lane finished first.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Index of the episode within the evaluation (its seed index).
    pub episode: usize,
    /// Number of environment steps taken.
    pub steps: usize,
    /// Undiscounted return, accumulated in step order.
    pub ret: f64,
    /// Distance travelled, accumulated in step order.
    pub distance: f64,
    /// How the episode ended; `None` means it hit the step limit.
    pub terminal: Option<TerminalKind>,
}

impl EpisodeRecord {
    /// Whether the episode ended at the goal.
    pub fn is_success(&self) -> bool {
        matches!(self.terminal, Some(TerminalKind::Goal))
    }
}

/// One in-flight episode: its environment clone, its private RNG stream and
/// its running statistics.
#[derive(Debug)]
struct Lane<E> {
    env: E,
    rng: StdRng,
    episode: usize,
    obs: Tensor,
    steps: usize,
    ret: f64,
    distance: f64,
    /// Set when the episode just ended (terminal kind, or `None` for a
    /// step-limit timeout) — the retire/refill pass consumes it.
    finished: Option<Option<TerminalKind>>,
}

impl<E: Environment> Lane<E> {
    fn start(template: &E, episode: usize, map_seed: u64) -> Self
    where
        E: Clone,
    {
        let mut env = template.clone();
        let mut rng = StdRng::seed_from_u64(episode_seed(map_seed, episode as u64));
        let obs = env.reset(&mut rng);
        Self {
            env,
            rng,
            episode,
            obs,
            steps: 0,
            ret: 0.0,
            distance: 0.0,
            finished: None,
        }
    }
}

/// A fixed-width set of episode lanes stepped in lockstep.
///
/// `VecEnv` owns the episode schedule: it starts with up to `max_lanes`
/// lanes, stacks the current lane observations into one batch tensor for a
/// single forward pass, applies one action per lane, and refills lanes
/// from the pending episode queue as they terminate.  The caller drives
/// the loop with reused buffers — nothing in it allocates per step once
/// warm:
///
/// ```text
/// while !vec_env.is_done() {
///     vec_env.stack_observations(&mut batch);
///     let q = policy.infer_into(&batch, scratch);
///     greedy_actions(q, &mut actions);
///     vec_env.step(&actions, &mut finished);
///     for record in finished.drain(..) { fold(record); }
/// }
/// ```
#[derive(Debug)]
pub struct VecEnv<'a, E> {
    template: &'a E,
    map_seed: u64,
    episodes: usize,
    max_steps: usize,
    next_episode: usize,
    lanes: Vec<Lane<E>>,
    /// Reused `[active_lanes, ...obs_shape]` shape buffer for
    /// [`VecEnv::stack_observations`].
    batched_shape: Vec<usize>,
}

impl<'a, E: Environment + Clone> VecEnv<'a, E> {
    /// Creates the lane set: `min(max_lanes, episodes)` lanes are reset and
    /// ready, the remaining episodes wait in the queue.
    ///
    /// # Panics
    ///
    /// Panics if `max_lanes` or `max_steps` is zero.
    pub fn new(template: &'a E, episodes: usize, max_steps: usize, max_lanes: usize, map_seed: u64) -> Self {
        assert!(max_lanes > 0, "lane count must be positive");
        assert!(max_steps > 0, "step limit must be positive");
        let width = max_lanes.min(episodes);
        let mut lanes = Vec::with_capacity(width);
        for episode in 0..width {
            lanes.push(Lane::start(template, episode, map_seed));
        }
        let mut batched_shape = Vec::with_capacity(1 + template.observation_shape().len());
        batched_shape.push(width);
        batched_shape.extend_from_slice(&template.observation_shape());
        Self {
            template,
            map_seed,
            episodes,
            max_steps,
            next_episode: width,
            lanes,
            batched_shape,
        }
    }

    /// Whether every episode has finished.
    pub fn is_done(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Number of currently active lanes.
    pub fn active_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Total number of episodes this engine will run.
    pub fn episodes(&self) -> usize {
        self.episodes
    }

    /// Stacks the active lanes' current observations, in lane order, into
    /// `out` as one `[active_lanes, ...obs_shape]` batch tensor, reusing
    /// `out`'s allocation (and an internal shape buffer) so the lockstep
    /// hot loop performs no per-step allocation once warm.
    ///
    /// # Panics
    ///
    /// Panics if a lane observation's length does not match the
    /// environment's observation shape.
    pub fn stack_observations(&mut self, out: &mut Tensor) {
        self.batched_shape[0] = self.lanes.len();
        let per_obs: usize = self.batched_shape[1..].iter().product();
        out.reset(&self.batched_shape);
        let data = out.data_mut();
        for (i, lane) in self.lanes.iter().enumerate() {
            data[i * per_obs..(i + 1) * per_obs].copy_from_slice(lane.obs.data());
        }
    }

    /// Advances every lane by one step with its action (`actions[i]` pairs
    /// with batch row `i` of [`VecEnv::stack_observations`]), retiring
    /// lanes whose episode terminated or hit the step limit and refilling
    /// them from the pending queue.
    ///
    /// Records of the episodes that finished on this step are pushed onto
    /// `finished` (the caller clears/drains it between steps, so the
    /// buffer's allocation is reused).
    ///
    /// # Panics
    ///
    /// Panics if `actions.len()` differs from the active lane count.
    pub fn step(&mut self, actions: &[usize], finished: &mut Vec<EpisodeRecord>) {
        assert_eq!(
            actions.len(),
            self.lanes.len(),
            "one action per active lane"
        );
        // Pass 1: step every lane with the action computed for its current
        // batch row.  No lane moves during this pass, so `actions[i]` always
        // pairs with the lane that produced `observations()[i]`.
        for (lane, &action) in self.lanes.iter_mut().zip(actions) {
            let outcome = lane.env.step(action, &mut lane.rng);
            lane.ret += outcome.reward as f64;
            lane.distance += outcome.distance_travelled;
            lane.steps += 1;
            lane.obs = outcome.observation;
            if outcome.terminal.is_some() || lane.steps >= self.max_steps {
                lane.finished = Some(outcome.terminal);
            }
        }
        // Pass 2: retire finished lanes in lane order, refilling from the
        // pending queue while episodes remain and compacting (order
        // preserved) once the queue is dry.
        let mut i = 0usize;
        while i < self.lanes.len() {
            let Some(terminal) = self.lanes[i].finished else {
                i += 1;
                continue;
            };
            let lane = &self.lanes[i];
            finished.push(EpisodeRecord {
                episode: lane.episode,
                steps: lane.steps,
                ret: lane.ret,
                distance: lane.distance,
                terminal,
            });
            if self.next_episode < self.episodes {
                self.lanes[i] = Lane::start(self.template, self.next_episode, self.map_seed);
                self.next_episode += 1;
                i += 1;
            } else {
                self.lanes.remove(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::StepOutcome;

    /// Counts down `fuel` steps, then terminates at the goal; the reward is
    /// the episode seed's low bits so records are distinguishable.
    #[derive(Clone)]
    struct Countdown {
        fuel: usize,
        remaining: usize,
        tag: f32,
    }

    impl Countdown {
        fn new(fuel: usize) -> Self {
            Self {
                fuel,
                remaining: 0,
                tag: 0.0,
            }
        }
    }

    impl Environment for Countdown {
        fn reset(&mut self, rng: &mut dyn rand::RngCore) -> Tensor {
            self.remaining = self.fuel;
            self.tag = (rng.next_u32() % 8) as f32;
            Tensor::from_vec(vec![1], vec![self.tag]).unwrap()
        }

        fn step(&mut self, _action: usize, _rng: &mut dyn rand::RngCore) -> StepOutcome {
            self.remaining = self.remaining.saturating_sub(1);
            let terminal = (self.remaining == 0).then_some(TerminalKind::Goal);
            StepOutcome {
                observation: Tensor::from_vec(vec![1], vec![self.tag]).unwrap(),
                reward: self.tag,
                terminal,
                distance_travelled: 1.0,
            }
        }

        fn num_actions(&self) -> usize {
            2
        }

        fn observation_shape(&self) -> Vec<usize> {
            vec![1]
        }
    }

    #[test]
    fn episode_seeds_are_distinct_and_differ_from_identity() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| episode_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(episode_seed(42, 0), 42);
    }

    #[test]
    fn lanes_retire_and_refill_until_all_episodes_ran() {
        let env = Countdown::new(3);
        let mut vec_env = VecEnv::new(&env, 7, 10, 3, 99);
        assert_eq!(vec_env.active_lanes(), 3);
        assert_eq!(vec_env.episodes(), 7);
        let mut records = Vec::new();
        let mut finished = Vec::new();
        let mut batch = Tensor::default();
        let mut guard = 0;
        while !vec_env.is_done() {
            vec_env.stack_observations(&mut batch);
            let n = batch.shape()[0];
            assert_eq!(n, vec_env.active_lanes());
            vec_env.step(&vec![0; n], &mut finished);
            records.append(&mut finished);
            guard += 1;
            assert!(guard < 100, "lockstep loop failed to terminate");
        }
        assert_eq!(records.len(), 7);
        let mut episodes: Vec<usize> = records.iter().map(|r| r.episode).collect();
        episodes.sort_unstable();
        assert_eq!(episodes, (0..7).collect::<Vec<_>>());
        for r in &records {
            assert_eq!(r.steps, 3);
            assert!(r.is_success());
            assert_eq!(r.distance, 3.0);
        }
    }

    #[test]
    fn step_limit_retires_lanes_without_terminal() {
        let env = Countdown::new(100);
        let mut vec_env = VecEnv::new(&env, 2, 4, 2, 1);
        let mut records = Vec::new();
        let mut finished = Vec::new();
        while !vec_env.is_done() {
            let n = vec_env.active_lanes();
            vec_env.step(&vec![0; n], &mut finished);
            records.append(&mut finished);
        }
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.steps, 4);
            assert_eq!(r.terminal, None);
            assert!(!r.is_success());
        }
    }

    #[test]
    fn lane_width_never_exceeds_episode_budget() {
        let env = Countdown::new(2);
        let vec_env = VecEnv::new(&env, 2, 5, 16, 0);
        assert_eq!(vec_env.active_lanes(), 2);
    }

    #[test]
    fn record_stream_is_independent_of_lane_count() {
        // Same seeds → same per-episode records, regardless of how many
        // lanes interleaved them (the environment RNG is per-episode).
        let env = Countdown::new(4);
        let run = |lanes: usize| {
            let mut vec_env = VecEnv::new(&env, 6, 10, lanes, 7);
            let mut records = Vec::new();
            let mut finished = Vec::new();
            while !vec_env.is_done() {
                let n = vec_env.active_lanes();
                vec_env.step(&vec![1; n], &mut finished);
                records.append(&mut finished);
            }
            records.sort_by_key(|r| r.episode);
            records
        };
        assert_eq!(run(1), run(3));
        assert_eq!(run(1), run(8));
    }
}
