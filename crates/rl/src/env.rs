//! The episodic environment interface and the transition record.
//!
//! The paper models the navigation task as an MDP `M = (S, A, P, R, γ)`
//! whose agent observes tuples `(sᵢ, aᵢ, sᵢ₊₁, rᵢ)` (Section II-A).  The
//! [`Environment`] trait is the minimal interface the UAV simulator needs to
//! expose for both the classical DQN baseline and BERRY's robust trainer;
//! observations are `berry_nn` tensors so they can feed the convolutional
//! policies directly.

use berry_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Why an episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminalKind {
    /// The agent reached the goal — a successful mission.
    Goal,
    /// The agent collided with an obstacle or the arena boundary.
    Collision,
    /// The episode hit the step limit without reaching the goal.
    Timeout,
}

impl TerminalKind {
    /// Whether this terminal state counts as a successful mission.
    pub fn is_success(self) -> bool {
        matches!(self, TerminalKind::Goal)
    }
}

/// The result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The next observation.
    pub observation: Tensor,
    /// The immediate reward.
    pub reward: f32,
    /// `Some` if the episode ended on this step.
    pub terminal: Option<TerminalKind>,
    /// Distance (metres, or environment units) travelled during this step —
    /// used by the quality-of-flight model to turn trajectories into flight
    /// time and energy.
    pub distance_travelled: f64,
}

impl StepOutcome {
    /// Whether the episode ended on this step.
    pub fn is_terminal(&self) -> bool {
        self.terminal.is_some()
    }
}

/// One experience-replay transition `(s, a, r, s', done)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State before the action.
    pub state: Tensor,
    /// The action taken.
    pub action: usize,
    /// The immediate reward.
    pub reward: f32,
    /// State after the action.
    pub next_state: Tensor,
    /// Whether the episode terminated after this transition (the Bellman
    /// target then omits the bootstrap term).
    pub done: bool,
}

/// An episodic Markov decision process with tensor observations and a
/// discrete action space.
///
/// All randomness is drawn from the caller-provided generator so that
/// training and evaluation runs are reproducible.
pub trait Environment {
    /// Resets the environment to a new episode and returns the initial
    /// observation.
    fn reset(&mut self, rng: &mut dyn rand::RngCore) -> Tensor;

    /// Applies `action` and advances one step.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()` or if called
    /// after the episode terminated without an intervening reset.
    fn step(&mut self, action: usize, rng: &mut dyn rand::RngCore) -> StepOutcome;

    /// Size of the discrete action space.
    fn num_actions(&self) -> usize;

    /// Shape of the observations this environment produces.
    fn observation_shape(&self) -> Vec<usize>;

    /// A short human-readable name (used in reports and tables).
    fn name(&self) -> String {
        "environment".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_kind_success_classification() {
        assert!(TerminalKind::Goal.is_success());
        assert!(!TerminalKind::Collision.is_success());
        assert!(!TerminalKind::Timeout.is_success());
    }

    #[test]
    fn step_outcome_terminal_detection() {
        let outcome = StepOutcome {
            observation: Tensor::zeros(&[2]),
            reward: 1.0,
            terminal: Some(TerminalKind::Goal),
            distance_travelled: 0.5,
        };
        assert!(outcome.is_terminal());
        let ongoing = StepOutcome {
            observation: Tensor::zeros(&[2]),
            reward: 0.0,
            terminal: None,
            distance_travelled: 0.5,
        };
        assert!(!ongoing.is_terminal());
    }

    #[test]
    fn transition_holds_its_fields() {
        let t = Transition {
            state: Tensor::zeros(&[3]),
            action: 2,
            reward: -1.0,
            next_state: Tensor::ones(&[3]),
            done: true,
        };
        assert_eq!(t.action, 2);
        assert!(t.done);
        assert_eq!(t.next_state.data(), &[1.0, 1.0, 1.0]);
    }
}
