//! Exploration schedules for ε-greedy action selection (Algorithm 1 line 6).

use crate::error::RlError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A linearly decaying ε-greedy exploration schedule.
///
/// ε starts at `start`, decays linearly over `decay_steps` environment
/// steps and stays at `end` afterwards.
///
/// # Examples
///
/// ```
/// use berry_rl::schedule::EpsilonSchedule;
/// # fn main() -> Result<(), berry_rl::RlError> {
/// let schedule = EpsilonSchedule::new(1.0, 0.05, 1000)?;
/// assert_eq!(schedule.value(0), 1.0);
/// assert!(schedule.value(500) < 1.0);
/// assert_eq!(schedule.value(10_000), 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    start: f32,
    end: f32,
    decay_steps: u64,
}

impl EpsilonSchedule {
    /// Creates a schedule decaying from `start` to `end` over `decay_steps`.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] if either endpoint is outside
    /// `[0, 1]`, if `end > start`, or if `decay_steps` is zero.
    pub fn new(start: f32, end: f32, decay_steps: u64) -> Result<Self> {
        if !(0.0..=1.0).contains(&start) || !(0.0..=1.0).contains(&end) {
            return Err(RlError::InvalidConfig(
                "epsilon endpoints must lie in [0, 1]".into(),
            ));
        }
        if end > start {
            return Err(RlError::InvalidConfig(
                "epsilon must decay: end must not exceed start".into(),
            ));
        }
        if decay_steps == 0 {
            return Err(RlError::InvalidConfig(
                "decay_steps must be positive".into(),
            ));
        }
        Ok(Self {
            start,
            end,
            decay_steps,
        })
    }

    /// A constant schedule (useful for pure evaluation or pure exploration).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] if `epsilon` is outside `[0, 1]`.
    pub fn constant(epsilon: f32) -> Result<Self> {
        Self::new(epsilon, epsilon, 1)
    }

    /// ε at a given global step.
    pub fn value(&self, step: u64) -> f32 {
        if step >= self.decay_steps {
            return self.end;
        }
        let frac = step as f32 / self.decay_steps as f32;
        self.start + (self.end - self.start) * frac
    }

    /// The initial ε.
    pub fn start(&self) -> f32 {
        self.start
    }

    /// The final ε.
    pub fn end(&self) -> f32 {
        self.end
    }

    /// Number of steps over which ε decays.
    pub fn decay_steps(&self) -> u64 {
        self.decay_steps
    }
}

impl Default for EpsilonSchedule {
    fn default() -> Self {
        Self::new(1.0, 0.05, 20_000).expect("default constants are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decays_linearly_then_clamps() {
        let s = EpsilonSchedule::new(1.0, 0.0, 100).unwrap();
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.5).abs() < 1e-6);
        assert_eq!(s.value(100), 0.0);
        assert_eq!(s.value(1_000_000), 0.0);
    }

    #[test]
    fn constant_schedule_never_changes() {
        let s = EpsilonSchedule::constant(0.3).unwrap();
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(999), 0.3);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(EpsilonSchedule::new(1.5, 0.0, 10).is_err());
        assert!(EpsilonSchedule::new(0.5, -0.1, 10).is_err());
        assert!(EpsilonSchedule::new(0.1, 0.5, 10).is_err());
        assert!(EpsilonSchedule::new(1.0, 0.1, 0).is_err());
        assert!(EpsilonSchedule::constant(2.0).is_err());
    }

    #[test]
    fn accessors_round_trip() {
        let s = EpsilonSchedule::new(0.9, 0.1, 500).unwrap();
        assert_eq!(s.start(), 0.9);
        assert_eq!(s.end(), 0.1);
        assert_eq!(s.decay_steps(), 500);
    }

    #[test]
    fn default_is_valid_and_decaying() {
        let s = EpsilonSchedule::default();
        assert!(s.value(0) > s.value(s.decay_steps()));
    }

    proptest! {
        #[test]
        fn prop_value_always_between_end_and_start(step in 0u64..1_000_000) {
            let s = EpsilonSchedule::new(0.8, 0.02, 10_000).unwrap();
            let v = s.value(step);
            prop_assert!((0.02 - 1e-6..=0.8 + 1e-6).contains(&v));
        }

        #[test]
        fn prop_value_is_monotone_nonincreasing(a in 0u64..100_000, b in 0u64..100_000) {
            let s = EpsilonSchedule::new(1.0, 0.05, 30_000).unwrap();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(s.value(lo) >= s.value(hi) - 1e-6);
        }
    }
}
