//! Uniform experience-replay buffer (Algorithm 1 lines 8–10).

use crate::env::Transition;
use crate::error::RlError;
use crate::Result;
use rand::Rng;

/// A fixed-capacity ring buffer of transitions with uniform sampling.
///
/// # Examples
///
/// ```
/// use berry_rl::replay::ReplayBuffer;
/// use berry_rl::env::Transition;
/// use berry_nn::tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), berry_rl::RlError> {
/// let mut buffer = ReplayBuffer::new(100)?;
/// for i in 0..10 {
///     buffer.push(Transition {
///         state: Tensor::zeros(&[2]),
///         action: i % 3,
///         reward: 0.0,
///         next_state: Tensor::zeros(&[2]),
///         done: false,
///     });
/// }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let batch = buffer.sample(4, &mut rng)?;
/// assert_eq!(batch.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    storage: Vec<Transition>,
    next_slot: usize,
    total_pushed: u64,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(RlError::InvalidConfig(
                "replay buffer capacity must be positive".into(),
            ));
        }
        Ok(Self {
            capacity,
            storage: Vec::with_capacity(capacity.min(4096)),
            next_slot: 0,
            total_pushed: 0,
        })
    }

    /// Adds a transition, evicting the oldest one once the buffer is full.
    pub fn push(&mut self, transition: Transition) {
        if self.storage.len() < self.capacity {
            self.storage.push(transition);
        } else {
            self.storage[self.next_slot] = transition;
        }
        self.next_slot = (self.next_slot + 1) % self.capacity;
        self.total_pushed += 1;
    }

    /// Number of transitions currently stored.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of transitions ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Samples `batch_size` transitions uniformly with replacement.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::NotEnoughSamples`] if the buffer holds fewer than
    /// `batch_size` transitions (sampling with replacement from a nearly
    /// empty buffer would produce degenerate, highly correlated batches).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Result<Vec<Transition>> {
        if self.storage.len() < batch_size {
            return Err(RlError::NotEnoughSamples {
                requested: batch_size,
                available: self.storage.len(),
            });
        }
        Ok((0..batch_size)
            .map(|_| self.storage[rng.gen_range(0..self.storage.len())].clone())
            .collect())
    }

    /// Removes every stored transition (used when switching from offline to
    /// on-device learning so stale error-free experience does not dominate).
    pub fn clear(&mut self) {
        self.storage.clear();
        self.next_slot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berry_nn::tensor::Tensor;
    use rand::SeedableRng;

    fn transition(tag: f32) -> Transition {
        Transition {
            state: Tensor::full(&[1], tag),
            action: 0,
            reward: tag,
            next_state: Tensor::full(&[1], tag + 0.5),
            done: false,
        }
    }

    #[test]
    fn capacity_must_be_positive() {
        assert!(ReplayBuffer::new(0).is_err());
        assert!(ReplayBuffer::new(1).is_ok());
    }

    #[test]
    fn push_evicts_oldest_when_full() {
        let mut buf = ReplayBuffer::new(3).unwrap();
        for i in 0..5 {
            buf.push(transition(i as f32));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.total_pushed(), 5);
        // Oldest two (0.0, 1.0) are gone; rewards present are 2,3,4.
        let rewards: Vec<f32> = buf.storage.iter().map(|t| t.reward).collect();
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn sample_requires_enough_transitions() {
        let mut buf = ReplayBuffer::new(10).unwrap();
        buf.push(transition(1.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(matches!(
            buf.sample(4, &mut rng),
            Err(RlError::NotEnoughSamples { .. })
        ));
        for i in 0..4 {
            buf.push(transition(i as f32));
        }
        assert_eq!(buf.sample(4, &mut rng).unwrap().len(), 4);
    }

    #[test]
    fn sample_draws_only_stored_transitions() {
        let mut buf = ReplayBuffer::new(8).unwrap();
        for i in 0..8 {
            buf.push(transition(i as f32));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..4 {
            let batch = buf.sample(8, &mut rng).unwrap();
            assert!(batch.iter().all(|t| (0.0..8.0).contains(&t.reward)));
        }
    }

    #[test]
    fn clear_empties_buffer() {
        let mut buf = ReplayBuffer::new(4).unwrap();
        buf.push(transition(1.0));
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 4);
    }
}
