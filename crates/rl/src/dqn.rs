//! Deep Q-Network agent: Q-network / target-network pair and TD updates.
//!
//! This module implements the *classical* DQN machinery of the paper's
//! Algorithm 1 (lines 2–13 and 19–21): ε-greedy acting, Bellman targets
//! computed by a periodically synchronized target network, and gradient
//! accumulation of the TD loss.  The bit-error-aware *perturbed* pass
//! (lines 14–18) lives in `berry-core`, which reuses
//! [`accumulate_td_gradients`] on a perturbed copy of both networks and sums
//! the two gradient sets before a single optimizer step.

use crate::env::Transition;
use crate::error::RlError;
use crate::policy::QNetworkSpec;
use crate::Result;
use berry_nn::loss::masked_mse_loss;
use berry_nn::network::{InferScratch, Sequential};
use berry_nn::optim::{Adam, Optimizer};
use berry_nn::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the DQN agent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// Adam learning rate α.
    pub learning_rate: f32,
    /// Mini-batch size B sampled from the replay buffer.
    pub batch_size: usize,
    /// Target-network synchronization period C (in optimizer steps).
    pub target_sync_every: u64,
    /// Element-wise gradient clip applied inside the optimizer.
    pub grad_clip: f32,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            gamma: 0.95,
            learning_rate: 1.0e-3,
            batch_size: 32,
            target_sync_every: 200,
            grad_clip: 1.0,
        }
    }
}

impl DqnConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.gamma) {
            return Err(RlError::InvalidConfig("gamma must lie in [0, 1)".into()));
        }
        if self.learning_rate <= 0.0 {
            return Err(RlError::InvalidConfig(
                "learning rate must be positive".into(),
            ));
        }
        if self.batch_size == 0 {
            return Err(RlError::InvalidConfig("batch size must be positive".into()));
        }
        if self.target_sync_every == 0 {
            return Err(RlError::InvalidConfig(
                "target_sync_every must be positive".into(),
            ));
        }
        if self.grad_clip <= 0.0 {
            return Err(RlError::InvalidConfig("grad_clip must be positive".into()));
        }
        Ok(())
    }
}

/// Stacks the `state` (or `next_state`) tensors of a batch into one
/// `[batch, ...observation_shape]` tensor.
fn stack_observations(
    batch: &[Transition],
    observation_shape: &[usize],
    next: bool,
) -> Result<Tensor> {
    let per_obs: usize = observation_shape.iter().product();
    let mut shape = Vec::with_capacity(observation_shape.len() + 1);
    shape.push(batch.len());
    shape.extend_from_slice(observation_shape);
    let mut out = Tensor::zeros(&shape);
    for (i, t) in batch.iter().enumerate() {
        let obs = if next { &t.next_state } else { &t.state };
        if obs.len() != per_obs {
            return Err(RlError::ObservationShapeMismatch {
                expected: observation_shape.to_vec(),
                actual: obs.shape().to_vec(),
            });
        }
        out.data_mut()[i * per_obs..(i + 1) * per_obs].copy_from_slice(obs.data());
    }
    Ok(out)
}

/// Computes the TD loss of `q_net` against Bellman targets produced by
/// `target_net` on `batch`, runs the backward pass and **accumulates** the
/// gradients in `q_net`.
///
/// Returns the scalar loss.  The caller owns zeroing gradients and stepping
/// the optimizer, which is what lets BERRY accumulate a clean pass and a
/// perturbed pass before one update (Algorithm 1 line 19).
///
/// # Errors
///
/// Returns an error if observation shapes are inconsistent or an action
/// index is out of range.
pub fn accumulate_td_gradients(
    q_net: &mut Sequential,
    target_net: &mut Sequential,
    batch: &[Transition],
    observation_shape: &[usize],
    num_actions: usize,
    gamma: f32,
) -> Result<f32> {
    if batch.is_empty() {
        return Err(RlError::InvalidConfig(
            "cannot train on an empty batch".into(),
        ));
    }
    let states = stack_observations(batch, observation_shape, false)?;
    let next_states = stack_observations(batch, observation_shape, true)?;

    // y_j = r_j + γ max_a' Q(s_{j+1}, a'; θ⁻)            (paper Eq. 1 / line 12)
    let next_q = target_net.forward(&next_states);
    let pred = q_net.forward(&states);
    let batch_size = batch.len();

    let mut target = pred.clone();
    let mut mask = Tensor::zeros(pred.shape());
    for (j, transition) in batch.iter().enumerate() {
        if transition.action >= num_actions {
            return Err(RlError::InvalidAction {
                action: transition.action,
                num_actions,
            });
        }
        let mut max_next = f32::NEG_INFINITY;
        for a in 0..num_actions {
            max_next = max_next.max(next_q.at2(j, a));
        }
        let bootstrap = if transition.done { 0.0 } else { gamma * max_next };
        let y = transition.reward + bootstrap;
        *target.at2_mut(j, transition.action) = y;
        *mask.at2_mut(j, transition.action) = 1.0;
    }
    let _ = batch_size;

    let (loss, grad) = masked_mse_loss(&pred, &target, &mask);
    q_net.backward(&grad);
    Ok(loss)
}

/// A Deep-Q-Network agent: evaluation network, target network and optimizer.
///
/// # Examples
///
/// ```
/// use berry_rl::dqn::{DqnAgent, DqnConfig};
/// use berry_rl::policy::QNetworkSpec;
/// use berry_nn::tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), berry_rl::RlError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut agent = DqnAgent::new(
///     &QNetworkSpec::mlp(vec![16]),
///     &[3],
///     4,
///     DqnConfig::default(),
///     &mut rng,
/// )?;
/// let action = agent.act_epsilon(&Tensor::zeros(&[3]), 0.1, &mut rng);
/// assert!(action < 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DqnAgent {
    q_net: Sequential,
    target_net: Sequential,
    optimizer: Adam,
    config: DqnConfig,
    num_actions: usize,
    observation_shape: Vec<usize>,
    train_steps: u64,
}

impl DqnAgent {
    /// Creates an agent with freshly initialized Q and target networks
    /// (θ⁻ = θ, Algorithm 1 lines 2–3).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or network spec is invalid.
    pub fn new<R: Rng + ?Sized>(
        spec: &QNetworkSpec,
        observation_shape: &[usize],
        num_actions: usize,
        config: DqnConfig,
        rng: &mut R,
    ) -> Result<Self> {
        config.validate()?;
        let q_net = spec.build(observation_shape, num_actions, rng)?;
        let target_net = q_net.clone();
        let optimizer = Adam::new(config.learning_rate).with_grad_clip(config.grad_clip);
        Ok(Self {
            q_net,
            target_net,
            optimizer,
            config,
            num_actions,
            observation_shape: observation_shape.to_vec(),
            train_steps: 0,
        })
    }

    /// The agent's hyper-parameters.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Number of discrete actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Observation shape the agent was built for.
    pub fn observation_shape(&self) -> &[usize] {
        &self.observation_shape
    }

    /// Number of optimizer steps taken so far.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Borrow of the evaluation (Q) network.
    pub fn q_net(&self) -> &Sequential {
        &self.q_net
    }

    /// Mutable borrow of the evaluation (Q) network.
    pub fn q_net_mut(&mut self) -> &mut Sequential {
        &mut self.q_net
    }

    /// Borrow of the target network.
    pub fn target_net(&self) -> &Sequential {
        &self.target_net
    }

    /// Mutable borrow of the target network.
    pub fn target_net_mut(&mut self) -> &mut Sequential {
        &mut self.target_net
    }

    /// Simultaneous mutable borrows of the Q-network and the target network
    /// (needed by trainers that run [`accumulate_td_gradients`] themselves).
    pub fn nets_mut(&mut self) -> (&mut Sequential, &mut Sequential) {
        (&mut self.q_net, &mut self.target_net)
    }

    /// Replaces the Q-network weights (used when loading a trained policy).
    ///
    /// # Errors
    ///
    /// Returns an error if the weight buffer does not match the network.
    pub fn load_weights(&mut self, weights: &[f32]) -> Result<f32> {
        self.q_net.load_flat_weights(weights)?;
        self.target_net.copy_params_from(&self.q_net)?;
        Ok(0.0)
    }

    /// Q-values for a single observation, as a `[1, num_actions]` tensor.
    ///
    /// Uses the immutable inference path ([`Sequential::infer`]), which is
    /// bitwise identical to a `forward` pass but leaves the network's
    /// training caches untouched, so action selection never needs `&mut`
    /// access to the agent.
    ///
    /// # Panics
    ///
    /// Panics if the observation's element count does not match the shape
    /// the agent was built for.
    pub fn q_values(&self, observation: &Tensor) -> Tensor {
        let mut scratch = InferScratch::new();
        self.q_values_into(observation, &mut scratch).clone()
    }

    /// [`DqnAgent::q_values`] through a caller-owned inference scratch —
    /// the allocation-free form every in-repo rollout loop uses; the
    /// returned borrow lives inside `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if the observation's element count does not match the shape
    /// the agent was built for.
    #[must_use = "the Q-values live in the scratch; dropping them wastes the forward pass"]
    pub fn q_values_into<'s>(
        &self,
        observation: &Tensor,
        scratch: &'s mut InferScratch,
    ) -> &'s Tensor {
        let per_obs: usize = self.observation_shape.iter().product();
        assert_eq!(
            observation.len(),
            per_obs,
            "observation has {} elements, agent expects {}",
            observation.len(),
            per_obs
        );
        let mut shape = Vec::with_capacity(self.observation_shape.len() + 1);
        shape.push(1);
        shape.extend_from_slice(&self.observation_shape);
        let batched = observation
            .reshape(&shape)
            .expect("element count already checked");
        self.q_net.infer_into(&batched, scratch)
    }

    /// Greedy action for an observation.
    ///
    /// Allocates a fresh inference scratch per call; loops should prefer
    /// [`DqnAgent::act_greedy_with_scratch`].
    pub fn act_greedy(&self, observation: &Tensor) -> usize {
        let mut scratch = InferScratch::new();
        self.act_greedy_with_scratch(observation, &mut scratch)
    }

    /// Greedy action through a caller-owned inference scratch.
    pub fn act_greedy_with_scratch(
        &self,
        observation: &Tensor,
        scratch: &mut InferScratch,
    ) -> usize {
        self.q_values_into(observation, scratch)
            .argmax()
            .expect("num_actions is positive")
    }

    /// ε-greedy action for an observation (Algorithm 1 line 6).
    ///
    /// Allocates a fresh inference scratch on greedy steps; training loops
    /// should prefer [`DqnAgent::act_epsilon_with_scratch`].
    pub fn act_epsilon<R: Rng + ?Sized>(
        &self,
        observation: &Tensor,
        epsilon: f32,
        rng: &mut R,
    ) -> usize {
        let mut scratch = InferScratch::new();
        self.act_epsilon_with_scratch(observation, epsilon, rng, &mut scratch)
    }

    /// ε-greedy action through a caller-owned inference scratch, so the
    /// exploitation branch's forward pass reuses warm buffers across the
    /// whole training run.
    pub fn act_epsilon_with_scratch<R: Rng + ?Sized>(
        &self,
        observation: &Tensor,
        epsilon: f32,
        rng: &mut R,
        scratch: &mut InferScratch,
    ) -> usize {
        if rng.gen::<f32>() < epsilon {
            rng.gen_range(0..self.num_actions)
        } else {
            self.act_greedy_with_scratch(observation, scratch)
        }
    }

    /// Copies the Q-network parameters into the target network
    /// (θ⁻ ← θ, Algorithm 1 line 21).
    pub fn sync_target(&mut self) {
        self.target_net
            .copy_params_from(&self.q_net)
            .expect("networks share a structure by construction");
    }

    /// One classical DQN optimizer step on a replay batch.
    ///
    /// Returns the TD loss.  The target network is synchronized every
    /// `target_sync_every` steps.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch is malformed.
    pub fn train_on_batch(&mut self, batch: &[Transition]) -> Result<f32> {
        self.q_net.zero_grad();
        let loss = accumulate_td_gradients(
            &mut self.q_net,
            &mut self.target_net,
            batch,
            &self.observation_shape,
            self.num_actions,
            self.config.gamma,
        )?;
        self.optimizer.step(&mut self.q_net);
        self.q_net.zero_grad();
        self.register_step();
        Ok(loss)
    }

    /// Applies one optimizer step using whatever gradients are currently
    /// accumulated in the Q-network, then handles target synchronization.
    ///
    /// This is the entry point BERRY's dual-pass trainer uses after it has
    /// accumulated both the clean and the perturbed gradients.
    pub fn apply_accumulated_gradients(&mut self) {
        self.optimizer.step(&mut self.q_net);
        self.q_net.zero_grad();
        self.register_step();
    }

    fn register_step(&mut self) {
        self.train_steps += 1;
        if self.train_steps.is_multiple_of(self.config.target_sync_every) {
            self.sync_target();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn transition(state: Vec<f32>, action: usize, reward: f32, next: Vec<f32>, done: bool) -> Transition {
        let n = state.len();
        Transition {
            state: Tensor::from_vec(vec![n], state).unwrap(),
            action,
            reward,
            next_state: Tensor::from_vec(vec![n], next).unwrap(),
            done,
        }
    }

    fn small_agent(seed: u64) -> DqnAgent {
        let mut r = rng(seed);
        DqnAgent::new(
            &QNetworkSpec::mlp(vec![24]),
            &[2],
            3,
            DqnConfig {
                gamma: 0.9,
                learning_rate: 5e-3,
                batch_size: 8,
                target_sync_every: 10,
                grad_clip: 1.0,
            },
            &mut r,
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(DqnConfig::default().validate().is_ok());
        assert!(DqnConfig { gamma: 1.0, ..Default::default() }.validate().is_err());
        assert!(DqnConfig { learning_rate: 0.0, ..Default::default() }.validate().is_err());
        assert!(DqnConfig { batch_size: 0, ..Default::default() }.validate().is_err());
        assert!(DqnConfig { target_sync_every: 0, ..Default::default() }.validate().is_err());
        assert!(DqnConfig { grad_clip: 0.0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn greedy_action_matches_argmax_of_q_values() {
        let agent = small_agent(1);
        let obs = Tensor::from_vec(vec![2], vec![0.3, -0.7]).unwrap();
        let q = agent.q_values(&obs);
        assert_eq!(q.shape(), &[1, 3]);
        assert_eq!(agent.act_greedy(&obs), q.argmax().unwrap());
    }

    #[test]
    fn epsilon_one_explores_uniformly() {
        let agent = small_agent(2);
        let mut r = rng(3);
        let obs = Tensor::zeros(&[2]);
        let mut counts = [0usize; 3];
        for _ in 0..300 {
            counts[agent.act_epsilon(&obs, 1.0, &mut r)] += 1;
        }
        for c in counts {
            assert!(c > 50, "action distribution {counts:?} is not uniform-ish");
        }
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let agent = small_agent(4);
        let mut r = rng(5);
        let obs = Tensor::from_vec(vec![2], vec![0.1, 0.9]).unwrap();
        let greedy = agent.act_greedy(&obs);
        for _ in 0..20 {
            assert_eq!(agent.act_epsilon(&obs, 0.0, &mut r), greedy);
        }
    }

    #[test]
    fn training_reduces_td_loss_on_fixed_batch() {
        let mut agent = small_agent(6);
        // A deterministic 2-state problem: action 1 from state A yields +1 and ends.
        let batch: Vec<Transition> = (0..8)
            .map(|i| {
                transition(
                    vec![1.0, 0.0],
                    i % 3,
                    if i % 3 == 1 { 1.0 } else { -0.2 },
                    vec![0.0, 1.0],
                    true,
                )
            })
            .collect();
        let first = agent.train_on_batch(&batch).unwrap();
        let mut last = first;
        for _ in 0..150 {
            last = agent.train_on_batch(&batch).unwrap();
        }
        assert!(last < first * 0.2, "loss {first} -> {last}");
        // The learned policy should prefer the rewarded action.
        let obs = Tensor::from_vec(vec![2], vec![1.0, 0.0]).unwrap();
        assert_eq!(agent.act_greedy(&obs), 1);
    }

    #[test]
    fn target_network_syncs_periodically() {
        let mut agent = small_agent(7);
        let batch = vec![transition(vec![0.5, 0.5], 0, 1.0, vec![0.0, 0.0], true); 4];
        // Before any sync the target differs from the online net after training.
        for _ in 0..9 {
            agent.train_on_batch(&batch).unwrap();
        }
        assert_ne!(
            agent.q_net().to_flat_weights(),
            agent.target_net().to_flat_weights()
        );
        // The 10th step triggers the periodic sync (target_sync_every = 10).
        agent.train_on_batch(&batch).unwrap();
        assert_eq!(
            agent.q_net().to_flat_weights(),
            agent.target_net().to_flat_weights()
        );
        assert_eq!(agent.train_steps(), 10);
    }

    #[test]
    fn bellman_target_uses_bootstrap_only_when_not_done() {
        // Single transition, zero rewards: with done=true the target is 0, so
        // training drives Q(s, a) toward 0. With done=false it bootstraps.
        let mut r = rng(8);
        let mut q = QNetworkSpec::mlp(vec![8]).build(&[1], 2, &mut r).unwrap();
        let mut tgt = q.clone();
        let done_batch = vec![transition(vec![1.0], 0, 0.0, vec![1.0], true)];
        let not_done_batch = vec![transition(vec![1.0], 0, 0.0, vec![1.0], false)];
        q.zero_grad();
        let loss_done =
            accumulate_td_gradients(&mut q, &mut tgt, &done_batch, &[1], 2, 0.9).unwrap();
        q.zero_grad();
        let loss_not_done =
            accumulate_td_gradients(&mut q, &mut tgt, &not_done_batch, &[1], 2, 0.9).unwrap();
        // With bootstrapping the target moves toward gamma*maxQ which is closer
        // to the prediction than 0 only if maxQ has the same sign; the two
        // losses must simply differ, proving the done flag is honoured.
        assert_ne!(loss_done, loss_not_done);
    }

    #[test]
    fn invalid_batches_are_rejected() {
        let mut agent = small_agent(9);
        assert!(agent.train_on_batch(&[]).is_err());
        let bad_action = vec![transition(vec![0.0, 0.0], 7, 0.0, vec![0.0, 0.0], true)];
        assert!(matches!(
            agent.train_on_batch(&bad_action),
            Err(RlError::InvalidAction { .. })
        ));
        let bad_shape = vec![transition(vec![0.0, 0.0, 0.0], 1, 0.0, vec![0.0, 0.0, 0.0], true)];
        assert!(matches!(
            agent.train_on_batch(&bad_shape),
            Err(RlError::ObservationShapeMismatch { .. })
        ));
    }

    #[test]
    fn load_weights_round_trips_and_syncs_target() {
        let mut a = small_agent(10);
        let b = small_agent(11);
        let w = b.q_net().to_flat_weights();
        a.load_weights(&w).unwrap();
        assert_eq!(a.q_net().to_flat_weights(), w);
        assert_eq!(a.target_net().to_flat_weights(), w);
        assert!(a.load_weights(&w[..5]).is_err());
    }

    #[test]
    fn apply_accumulated_gradients_changes_weights() {
        let mut agent = small_agent(12);
        let batch = vec![transition(vec![1.0, -1.0], 2, 1.0, vec![0.0, 0.0], true); 4];
        let before = agent.q_net().to_flat_weights();
        agent.q_net_mut().zero_grad();
        let shape = agent.observation_shape().to_vec();
        let actions = agent.num_actions();
        let gamma = agent.config().gamma;
        // Split borrows: accumulate manually, then apply.
        {
            let DqnAgent {
                ref mut q_net,
                ref mut target_net,
                ..
            } = agent;
            accumulate_td_gradients(q_net, target_net, &batch, &shape, actions, gamma).unwrap();
        }
        agent.apply_accumulated_gradients();
        assert_ne!(agent.q_net().to_flat_weights(), before);
        assert_eq!(agent.train_steps(), 1);
    }
}
