//! Error types for the `berry-rl` crate.

use std::fmt;

/// Errors produced by agents, buffers and training loops.
#[derive(Debug, Clone, PartialEq)]
pub enum RlError {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// An observation's shape did not match what the agent was built for.
    ObservationShapeMismatch {
        /// Shape the agent expects.
        expected: Vec<usize>,
        /// Shape that was provided.
        actual: Vec<usize>,
    },
    /// An action index was outside the environment's action space.
    InvalidAction {
        /// The offending action.
        action: usize,
        /// Number of valid actions.
        num_actions: usize,
    },
    /// Not enough transitions are stored to sample the requested batch.
    NotEnoughSamples {
        /// Requested batch size.
        requested: usize,
        /// Transitions currently available.
        available: usize,
    },
    /// An error bubbled up from the neural-network substrate.
    Network(String),
}

impl fmt::Display for RlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RlError::ObservationShapeMismatch { expected, actual } => write!(
                f,
                "observation shape {actual:?} does not match the expected {expected:?}"
            ),
            RlError::InvalidAction {
                action,
                num_actions,
            } => write!(f, "action {action} is outside the 0..{num_actions} range"),
            RlError::NotEnoughSamples {
                requested,
                available,
            } => write!(
                f,
                "cannot sample a batch of {requested} from {available} stored transitions"
            ),
            RlError::Network(msg) => write!(f, "network error: {msg}"),
        }
    }
}

impl std::error::Error for RlError {}

impl From<berry_nn::NnError> for RlError {
    fn from(err: berry_nn::NnError) -> Self {
        RlError::Network(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            RlError::InvalidConfig("x".into()),
            RlError::ObservationShapeMismatch {
                expected: vec![2],
                actual: vec![3],
            },
            RlError::InvalidAction {
                action: 7,
                num_actions: 5,
            },
            RlError::NotEnoughSamples {
                requested: 32,
                available: 4,
            },
            RlError::Network("boom".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn nn_errors_convert() {
        let nn_err = berry_nn::NnError::InvalidArgument("bad".into());
        let rl_err: RlError = nn_err.into();
        assert!(matches!(rl_err, RlError::Network(_)));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RlError>();
    }
}
