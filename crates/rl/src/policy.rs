//! Q-network architectures: the paper's C3F2 and C5F4 policies plus an MLP.
//!
//! The paper's autonomy policies are convolutional Q-networks named after
//! their layer counts: **C3F2** (3 convolution + 2 fully-connected layers,
//! the default navigation policy) and **C5F4** (5 convolution + 4
//! fully-connected layers, ≈2× the parameters, evaluated in Fig. 7).  The
//! reproduction's simulator feeds them a compact `[channels, 9, 9]`
//! perception patch instead of the paper's full camera frames, so the
//! builders below size every layer from the requested input shape.

use crate::error::RlError;
use crate::Result;
use berry_nn::layer::{Conv2d, Dense, Flatten, Relu};
use berry_nn::network::Sequential;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A description of a Q-network architecture that can be instantiated for
/// any observation shape and action count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QNetworkSpec {
    /// A multi-layer perceptron over flat observations (fast; used by unit
    /// tests and ablations).
    Mlp {
        /// Hidden-layer widths.
        hidden: Vec<usize>,
    },
    /// The paper's C3F2 policy: 3 convolutions + 2 fully-connected layers.
    C3F2,
    /// The paper's C5F4 policy: 5 convolutions + 4 fully-connected layers.
    C5F4,
}

impl QNetworkSpec {
    /// Convenience constructor for an MLP spec.
    pub fn mlp(hidden: Vec<usize>) -> Self {
        QNetworkSpec::Mlp { hidden }
    }

    /// Short name used in tables and file names.
    pub fn name(&self) -> &'static str {
        match self {
            QNetworkSpec::Mlp { .. } => "MLP",
            QNetworkSpec::C3F2 => "C3F2",
            QNetworkSpec::C5F4 => "C5F4",
        }
    }

    /// Builds the network for the given observation shape and action count.
    ///
    /// Convolutional specs require a `[channels, height, width]` observation
    /// shape; the MLP accepts any shape and flattens it.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] if the observation shape is
    /// incompatible with the spec or `num_actions` is zero.
    pub fn build<R: rand::Rng + ?Sized>(
        &self,
        observation_shape: &[usize],
        num_actions: usize,
        rng: &mut R,
    ) -> Result<Sequential> {
        if num_actions == 0 {
            return Err(RlError::InvalidConfig(
                "num_actions must be positive".into(),
            ));
        }
        if observation_shape.is_empty() || observation_shape.contains(&0) {
            return Err(RlError::InvalidConfig(format!(
                "observation shape {observation_shape:?} must be non-empty with positive dims"
            )));
        }
        match self {
            QNetworkSpec::Mlp { hidden } => {
                let input: usize = observation_shape.iter().product();
                let mut net = Sequential::new();
                net.push(Flatten::new());
                let mut prev = input;
                for &width in hidden {
                    if width == 0 {
                        return Err(RlError::InvalidConfig(
                            "hidden layer widths must be positive".into(),
                        ));
                    }
                    net.push(Dense::new(prev, width, rng));
                    net.push(Relu::new());
                    prev = width;
                }
                net.push(Dense::new_xavier(prev, num_actions, rng));
                Ok(net)
            }
            QNetworkSpec::C3F2 => {
                let (c, h, w) = Self::require_chw(observation_shape)?;
                let mut net = Sequential::new();
                // conv1: stride 1, conv2: stride 2 (downsample), conv3: stride 1.
                net.push(Conv2d::new(c, 8, 3, 1, 1, rng));
                net.push(Relu::new());
                net.push(Conv2d::new(8, 16, 3, 2, 1, rng));
                net.push(Relu::new());
                net.push(Conv2d::new(16, 16, 3, 1, 1, rng));
                net.push(Relu::new());
                net.push(Flatten::new());
                let (h2, w2) = (conv_out(h, 3, 2, 1), conv_out(w, 3, 2, 1));
                net.push(Dense::new(16 * h2 * w2, 64, rng));
                net.push(Relu::new());
                net.push(Dense::new_xavier(64, num_actions, rng));
                Ok(net)
            }
            QNetworkSpec::C5F4 => {
                let (c, h, w) = Self::require_chw(observation_shape)?;
                let mut net = Sequential::new();
                net.push(Conv2d::new(c, 8, 3, 1, 1, rng));
                net.push(Relu::new());
                net.push(Conv2d::new(8, 16, 3, 2, 1, rng));
                net.push(Relu::new());
                net.push(Conv2d::new(16, 16, 3, 1, 1, rng));
                net.push(Relu::new());
                net.push(Conv2d::new(16, 24, 3, 1, 1, rng));
                net.push(Relu::new());
                net.push(Conv2d::new(24, 24, 3, 1, 1, rng));
                net.push(Relu::new());
                net.push(Flatten::new());
                let (h2, w2) = (conv_out(h, 3, 2, 1), conv_out(w, 3, 2, 1));
                net.push(Dense::new(24 * h2 * w2, 96, rng));
                net.push(Relu::new());
                net.push(Dense::new(96, 64, rng));
                net.push(Relu::new());
                net.push(Dense::new(64, 32, rng));
                net.push(Relu::new());
                net.push(Dense::new_xavier(32, num_actions, rng));
                Ok(net)
            }
        }
    }

    /// Rebuilds a network of this architecture from a flat-weight snapshot
    /// (the round trip used by the trained-policy cache: a stored policy is
    /// its spec plus [`Sequential::to_flat_weights`]).
    ///
    /// The layer structure is instantiated from a fixed throwaway RNG and
    /// every parameter is then overwritten from `weights`, so the result is
    /// **bitwise identical** to the network the weights were read from.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] if the spec cannot be built for
    /// the shape, or a length-mismatch error if `weights` does not match
    /// the architecture's parameter count.
    pub fn build_with_flat_weights(
        &self,
        observation_shape: &[usize],
        num_actions: usize,
        weights: &[f32],
    ) -> Result<Sequential> {
        let mut init_rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = self.build(observation_shape, num_actions, &mut init_rng)?;
        net.load_flat_weights(weights).map_err(RlError::from)?;
        Ok(net)
    }

    fn require_chw(shape: &[usize]) -> Result<(usize, usize, usize)> {
        if shape.len() != 3 {
            return Err(RlError::InvalidConfig(format!(
                "convolutional policies need a [channels, height, width] observation, got {shape:?}"
            )));
        }
        Ok((shape[0], shape[1], shape[2]))
    }
}

/// Output spatial size of a convolution.
fn conv_out(size: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (size + 2 * padding - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use berry_nn::tensor::Tensor;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn mlp_builds_and_produces_action_values() {
        let mut r = rng(1);
        let mut net = QNetworkSpec::mlp(vec![16, 16])
            .build(&[6], 4, &mut r)
            .unwrap();
        let obs = Tensor::zeros(&[1, 6]);
        let q = net.forward(&obs);
        assert_eq!(q.shape(), &[1, 4]);
    }

    #[test]
    fn c3f2_builds_for_2x9x9_observations() {
        let mut r = rng(2);
        let mut net = QNetworkSpec::C3F2.build(&[2, 9, 9], 25, &mut r).unwrap();
        let obs = Tensor::zeros(&[3, 2, 9, 9]);
        let q = net.forward(&obs);
        assert_eq!(q.shape(), &[3, 25]);
        // 3 convs + 2 dense = 5 parameterized layers.
        let dense_and_conv = net
            .layer_names()
            .iter()
            .filter(|n| **n == "Dense" || **n == "Conv2d")
            .count();
        assert_eq!(dense_and_conv, 5);
    }

    #[test]
    fn c5f4_has_more_parameters_than_c3f2() {
        let mut r = rng(3);
        let c3 = QNetworkSpec::C3F2.build(&[2, 9, 9], 25, &mut r).unwrap();
        let c5 = QNetworkSpec::C5F4.build(&[2, 9, 9], 25, &mut r).unwrap();
        assert!(c5.param_count() > c3.param_count());
        let dense_and_conv = c5
            .layer_names()
            .iter()
            .filter(|n| **n == "Dense" || **n == "Conv2d")
            .count();
        assert_eq!(dense_and_conv, 9);
    }

    #[test]
    fn c5f4_forward_shape() {
        let mut r = rng(4);
        let mut net = QNetworkSpec::C5F4.build(&[2, 9, 9], 25, &mut r).unwrap();
        let obs = Tensor::zeros(&[1, 2, 9, 9]);
        assert_eq!(net.forward(&obs).shape(), &[1, 25]);
    }

    #[test]
    fn conv_specs_reject_flat_observations() {
        let mut r = rng(5);
        assert!(QNetworkSpec::C3F2.build(&[10], 5, &mut r).is_err());
        assert!(QNetworkSpec::C5F4.build(&[2, 9], 5, &mut r).is_err());
    }

    #[test]
    fn invalid_action_or_shape_is_rejected() {
        let mut r = rng(6);
        assert!(QNetworkSpec::C3F2.build(&[2, 9, 9], 0, &mut r).is_err());
        assert!(QNetworkSpec::mlp(vec![8]).build(&[], 4, &mut r).is_err());
        assert!(QNetworkSpec::mlp(vec![0]).build(&[4], 4, &mut r).is_err());
        assert!(QNetworkSpec::mlp(vec![8]).build(&[0], 4, &mut r).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(QNetworkSpec::C3F2.name(), "C3F2");
        assert_eq!(QNetworkSpec::C5F4.name(), "C5F4");
        assert_eq!(QNetworkSpec::mlp(vec![1]).name(), "MLP");
    }

    #[test]
    fn flat_weight_round_trip_is_bitwise_exact() {
        let mut r = rng(8);
        for spec in [
            QNetworkSpec::mlp(vec![16, 8]),
            QNetworkSpec::C3F2,
            QNetworkSpec::C5F4,
        ] {
            let original = spec.build(&[2, 9, 9], 25, &mut r).unwrap();
            let weights = original.to_flat_weights();
            let rebuilt = spec.build_with_flat_weights(&[2, 9, 9], 25, &weights).unwrap();
            assert_eq!(rebuilt.to_flat_weights(), weights, "{} round trip", spec.name());
        }
        // A truncated snapshot is rejected, not silently padded.
        let spec = QNetworkSpec::mlp(vec![4]);
        let net = spec.build(&[3], 2, &mut r).unwrap();
        let weights = net.to_flat_weights();
        assert!(spec
            .build_with_flat_weights(&[3], 2, &weights[..weights.len() - 1])
            .is_err());
    }

    #[test]
    fn builds_are_deterministic_given_the_same_seed() {
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        let a = QNetworkSpec::C3F2.build(&[2, 9, 9], 25, &mut r1).unwrap();
        let b = QNetworkSpec::C3F2.build(&[2, 9, 9], 25, &mut r2).unwrap();
        assert_eq!(a.to_flat_weights(), b.to_flat_weights());
    }
}
