//! Tiny deterministic environments shared by tests across the workspace.
//!
//! Several crates exercise training loops against the same toy MDP; this
//! module is the single definition (it used to be copy-pasted into
//! `berry-rl`'s trainer tests and `berry-core`'s robust-trainer tests).
//! It ships in the library (not behind `cfg(test)`) so downstream crates'
//! unit tests can reuse it, but it is not part of the supported API
//! surface.

use crate::env::{Environment, StepOutcome, TerminalKind};
use berry_nn::tensor::Tensor;

/// A tiny deterministic corridor MDP: the agent starts at cell 0 and must
/// walk right (action 1) to cell `length`; walking left of cell 0 is a
/// "collision", and exceeding the step budget is a timeout.  The
/// observation is the normalized position.
///
/// DQN learns this in a few hundred episodes, which makes it the standard
/// fixture for "does this training loop learn at all?" tests.
pub struct Corridor {
    length: i32,
    position: i32,
    steps: usize,
    timeout_steps: usize,
}

impl Corridor {
    /// A corridor of `length` cells with the default 40-step episode
    /// budget.
    pub fn new(length: i32) -> Self {
        Self::with_timeout(length, 40)
    }

    /// A corridor with an explicit per-episode step budget.
    pub fn with_timeout(length: i32, timeout_steps: usize) -> Self {
        Self {
            length,
            position: 0,
            steps: 0,
            timeout_steps,
        }
    }
}

impl Environment for Corridor {
    fn reset(&mut self, _rng: &mut dyn rand::RngCore) -> Tensor {
        self.position = 0;
        self.steps = 0;
        Tensor::from_vec(vec![1], vec![0.0]).expect("1-element observation")
    }

    fn step(&mut self, action: usize, _rng: &mut dyn rand::RngCore) -> StepOutcome {
        self.steps += 1;
        self.position += if action == 1 { 1 } else { -1 };
        let obs = Tensor::from_vec(vec![1], vec![self.position as f32 / self.length as f32])
            .expect("1-element observation");
        let terminal = if self.position >= self.length {
            Some(TerminalKind::Goal)
        } else if self.position < 0 {
            Some(TerminalKind::Collision)
        } else if self.steps >= self.timeout_steps {
            Some(TerminalKind::Timeout)
        } else {
            None
        };
        let reward = match terminal {
            Some(TerminalKind::Goal) => 1.0,
            Some(TerminalKind::Collision) => -1.0,
            _ => -0.01,
        };
        StepOutcome {
            observation: obs,
            reward,
            terminal,
            distance_travelled: 1.0,
        }
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn observation_shape(&self) -> Vec<usize> {
        vec![1]
    }

    fn name(&self) -> String {
        "corridor".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn walking_right_reaches_the_goal() {
        let mut env = Corridor::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        let mut last = None;
        for _ in 0..3 {
            last = env.step(1, &mut rng).terminal;
        }
        assert_eq!(last, Some(TerminalKind::Goal));
    }

    #[test]
    fn walking_left_collides_immediately() {
        let mut env = Corridor::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        assert_eq!(
            env.step(0, &mut rng).terminal,
            Some(TerminalKind::Collision)
        );
    }

    #[test]
    fn hovering_times_out_at_the_configured_budget() {
        let mut env = Corridor::with_timeout(5, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        let mut last = None;
        for _ in 0..4 {
            // Alternate left/right so the position oscillates in-bounds.
            last = env.step(1, &mut rng).terminal;
            if last.is_some() {
                break;
            }
            last = env.step(0, &mut rng).terminal;
            if last.is_some() {
                break;
            }
        }
        assert_eq!(last, Some(TerminalKind::Timeout));
        assert_eq!(env.name(), "corridor");
        assert_eq!(env.num_actions(), 2);
        assert_eq!(env.observation_shape(), vec![1]);
    }
}
