//! # berry-rl
//!
//! The reinforcement-learning substrate of the BERRY reproduction
//! (DAC 2023): everything a classical Deep-Q-Network needs, factored so
//! that the bit-error-robust trainer in `berry-core` can reuse the same
//! pieces while replacing the gradient step with the paper's dual-pass
//! (clean + perturbed) update.
//!
//! * [`env::Environment`] — the episodic MDP interface the UAV navigation
//!   simulator implements,
//! * [`replay::ReplayBuffer`] — uniform experience replay,
//! * [`schedule::EpsilonSchedule`] — linear ε-greedy exploration decay,
//! * [`policy::QNetworkSpec`] — the C3F2 / C5F4 convolutional Q-network
//!   architectures from the paper plus an MLP variant for fast tests,
//! * [`dqn::DqnAgent`] — the Q-network/target-network pair with the
//!   Bellman-target machinery (Eq. 1 of the paper),
//! * [`trainer`] — the classical (non-robust) training loop used as the
//!   paper's baseline,
//! * [`eval`] — greedy policy evaluation returning success rate and path
//!   statistics, and
//! * [`testenv`] — tiny deterministic MDPs shared by training-loop tests
//!   across the workspace.
//!
//! ## Example
//!
//! ```
//! use berry_rl::dqn::{DqnAgent, DqnConfig};
//! use berry_rl::policy::QNetworkSpec;
//! use berry_nn::tensor::Tensor;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), berry_rl::RlError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let spec = QNetworkSpec::mlp(vec![32, 32]);
//! let mut agent = DqnAgent::new(&spec, &[4], 5, DqnConfig::default(), &mut rng)?;
//! let obs = Tensor::zeros(&[4]);
//! let action = agent.act_greedy(&obs);
//! assert!(action < 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dqn;
pub mod env;
pub mod error;
pub mod eval;
pub mod policy;
pub mod replay;
pub mod schedule;
pub mod testenv;
pub mod trainer;
pub mod vecenv;

pub use dqn::{DqnAgent, DqnConfig};
pub use env::{Environment, StepOutcome, TerminalKind, Transition};
pub use error::RlError;
pub use eval::EvalStats;
pub use policy::QNetworkSpec;
pub use replay::ReplayBuffer;
pub use schedule::EpsilonSchedule;
pub use vecenv::{episode_seed, EpisodeRecord, VecEnv};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RlError>;
