//! Classical (non-robust) DQN training loop — the paper's baseline policy.

use crate::dqn::{DqnAgent, DqnConfig};
use crate::env::{Environment, Transition};
use crate::error::RlError;
use crate::policy::QNetworkSpec;
use crate::replay::ReplayBuffer;
use crate::schedule::EpsilonSchedule;
use crate::Result;
use berry_nn::network::InferScratch;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the episode-level training loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of training episodes E.
    pub episodes: usize,
    /// Maximum environment steps per episode T.
    pub max_steps_per_episode: usize,
    /// Replay-buffer capacity.
    pub buffer_capacity: usize,
    /// Environment steps to collect before learning starts.
    pub learning_starts: usize,
    /// Run one optimizer step every this many environment steps.
    pub train_every: usize,
    /// ε-greedy exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Agent-level hyper-parameters (γ, α, batch size, target sync).
    pub dqn: DqnConfig,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            episodes: 300,
            max_steps_per_episode: 60,
            buffer_capacity: 20_000,
            learning_starts: 200,
            train_every: 1,
            epsilon: EpsilonSchedule::default(),
            dqn: DqnConfig::default(),
        }
    }
}

impl TrainerConfig {
    /// A small configuration for fast unit tests and smoke runs.
    pub fn smoke_test() -> Self {
        Self {
            episodes: 30,
            max_steps_per_episode: 30,
            buffer_capacity: 2_000,
            learning_starts: 50,
            train_every: 1,
            epsilon: EpsilonSchedule::new(1.0, 0.1, 500).expect("valid schedule"),
            dqn: DqnConfig {
                batch_size: 16,
                target_sync_every: 50,
                ..DqnConfig::default()
            },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for zero-valued counts.
    pub fn validate(&self) -> Result<()> {
        if self.episodes == 0 || self.max_steps_per_episode == 0 {
            return Err(RlError::InvalidConfig(
                "episodes and max_steps_per_episode must be positive".into(),
            ));
        }
        if self.train_every == 0 {
            return Err(RlError::InvalidConfig("train_every must be positive".into()));
        }
        self.dqn.validate()
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Undiscounted return of every episode, in order.
    pub episode_returns: Vec<f32>,
    /// Whether each episode reached the goal.
    pub episode_successes: Vec<bool>,
    /// TD loss of every optimizer step (may be empty if learning never
    /// started).
    pub losses: Vec<f32>,
    /// Total environment steps taken.
    pub total_env_steps: u64,
    /// Total optimizer steps taken.
    pub total_train_steps: u64,
}

impl TrainingReport {
    /// Success rate over the last `window` episodes (or all episodes if
    /// fewer were run).
    pub fn recent_success_rate(&self, window: usize) -> f64 {
        if self.episode_successes.is_empty() {
            return 0.0;
        }
        let n = window.min(self.episode_successes.len()).max(1);
        let tail = &self.episode_successes[self.episode_successes.len() - n..];
        tail.iter().filter(|&&s| s).count() as f64 / n as f64
    }

    /// Mean undiscounted return over the last `window` episodes.
    pub fn recent_mean_return(&self, window: usize) -> f64 {
        if self.episode_returns.is_empty() {
            return 0.0;
        }
        let n = window.min(self.episode_returns.len()).max(1);
        let tail = &self.episode_returns[self.episode_returns.len() - n..];
        tail.iter().map(|&r| r as f64).sum::<f64>() / n as f64
    }
}

/// Runs one episode with ε-greedy exploration, pushing transitions into the
/// replay buffer and training the agent.  Returns `(return, success, steps)`.
#[allow(clippy::too_many_arguments)]
fn run_training_episode<E: Environment, R: Rng>(
    env: &mut E,
    agent: &mut DqnAgent,
    buffer: &mut ReplayBuffer,
    config: &TrainerConfig,
    env_steps: &mut u64,
    losses: &mut Vec<f32>,
    rng: &mut R,
    infer: &mut InferScratch,
) -> Result<(f32, bool, usize)> {
    let mut obs = env.reset(rng);
    let mut episode_return = 0.0f32;
    let mut success = false;
    let mut steps = 0usize;
    for _ in 0..config.max_steps_per_episode {
        let epsilon = config.epsilon.value(*env_steps);
        let action = agent.act_epsilon_with_scratch(&obs, epsilon, rng, infer);
        let outcome = env.step(action, rng);
        episode_return += outcome.reward;
        buffer.push(Transition {
            state: obs.clone(),
            action,
            reward: outcome.reward,
            next_state: outcome.observation.clone(),
            done: outcome.is_terminal(),
        });
        obs = outcome.observation;
        *env_steps += 1;
        steps += 1;

        if buffer.len() >= config.learning_starts.max(config.dqn.batch_size)
            && (*env_steps).is_multiple_of(config.train_every as u64)
        {
            let batch = buffer.sample(config.dqn.batch_size, rng)?;
            losses.push(agent.train_on_batch(&batch)?);
        }

        if let Some(terminal) = outcome.terminal {
            success = terminal.is_success();
            break;
        }
    }
    Ok((episode_return, success, steps))
}

/// Trains a classical DQN agent on `env` from scratch.
///
/// This is the "Classical" baseline of the paper's Tables I–II and Figs. 3
/// and 5: standard Deep-Q-Learning with no bit-error injection.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or training encounters a
/// malformed batch.
pub fn train_classical<E: Environment, R: Rng>(
    env: &mut E,
    spec: &QNetworkSpec,
    config: &TrainerConfig,
    rng: &mut R,
) -> Result<(DqnAgent, TrainingReport)> {
    config.validate()?;
    let mut agent = DqnAgent::new(
        spec,
        &env.observation_shape(),
        env.num_actions(),
        config.dqn,
        rng,
    )?;
    let report = continue_training(env, &mut agent, config, rng)?;
    Ok((agent, report))
}

/// Continues training an existing agent (used for fine-tuning experiments).
///
/// # Errors
///
/// Returns an error if the configuration is invalid or training encounters a
/// malformed batch.
pub fn continue_training<E: Environment, R: Rng>(
    env: &mut E,
    agent: &mut DqnAgent,
    config: &TrainerConfig,
    rng: &mut R,
) -> Result<TrainingReport> {
    config.validate()?;
    let mut buffer = ReplayBuffer::new(config.buffer_capacity)?;
    let mut episode_returns = Vec::with_capacity(config.episodes);
    let mut episode_successes = Vec::with_capacity(config.episodes);
    let mut losses = Vec::new();
    let mut env_steps = 0u64;
    // One warm inference scratch serves every ε-greedy action selection of
    // the run — action selection goes through the shared GEMM inference
    // core without per-step allocation.
    let mut infer = InferScratch::new();
    for _ in 0..config.episodes {
        let (ret, success, _steps) = run_training_episode(
            env,
            agent,
            &mut buffer,
            config,
            &mut env_steps,
            &mut losses,
            rng,
            &mut infer,
        )?;
        episode_returns.push(ret);
        episode_successes.push(success);
    }
    Ok(TrainingReport {
        episode_returns,
        episode_successes,
        losses,
        total_env_steps: env_steps,
        total_train_steps: agent.train_steps(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    // The corridor fixture lives in `crate::testenv` so `berry-core`'s
    // robust-trainer tests exercise the identical MDP (it used to be
    // copy-pasted in both places).  `Corridor::new` keeps this file's
    // historical 40-step episode budget.
    use crate::testenv::Corridor;
    use rand::SeedableRng;

    #[test]
    fn classical_training_learns_the_corridor() {
        let mut env = Corridor::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = TrainerConfig {
            episodes: 200,
            max_steps_per_episode: 40,
            buffer_capacity: 5_000,
            learning_starts: 64,
            train_every: 1,
            epsilon: EpsilonSchedule::new(1.0, 0.02, 1_000).unwrap(),
            dqn: DqnConfig {
                gamma: 0.9,
                learning_rate: 2e-3,
                batch_size: 32,
                target_sync_every: 100,
                grad_clip: 1.0,
            },
        };
        let (agent, report) =
            train_classical(&mut env, &QNetworkSpec::mlp(vec![24]), &config, &mut rng).unwrap();
        // Exploration noise keeps the on-policy success rate below 100 %, but
        // the trend must be clearly upward by the end of training.
        assert!(
            report.recent_success_rate(40) > 0.6,
            "success rate {} too low",
            report.recent_success_rate(40)
        );
        // The greedy policy must solve the corridor outright.
        let mut eval_env = Corridor::new(4);
        let mut obs = eval_env.reset(&mut rng);
        let mut reached_goal = false;
        for _ in 0..10 {
            let action = agent.act_greedy(&obs);
            let outcome = eval_env.step(action, &mut rng);
            obs = outcome.observation;
            if let Some(t) = outcome.terminal {
                reached_goal = t.is_success();
                break;
            }
        }
        assert!(reached_goal, "greedy policy failed to reach the corridor end");
        assert!(report.total_train_steps > 0);
        assert!(!report.losses.is_empty());
    }

    #[test]
    fn report_statistics_handle_short_histories() {
        let report = TrainingReport {
            episode_returns: vec![1.0, 2.0],
            episode_successes: vec![false, true],
            losses: vec![],
            total_env_steps: 10,
            total_train_steps: 0,
        };
        assert_eq!(report.recent_success_rate(100), 0.5);
        assert_eq!(report.recent_mean_return(1), 2.0);
        let empty = TrainingReport {
            episode_returns: vec![],
            episode_successes: vec![],
            losses: vec![],
            total_env_steps: 0,
            total_train_steps: 0,
        };
        assert_eq!(empty.recent_success_rate(10), 0.0);
        assert_eq!(empty.recent_mean_return(10), 0.0);
    }

    #[test]
    fn invalid_trainer_config_is_rejected() {
        let mut env = Corridor::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let bad = TrainerConfig {
            episodes: 0,
            ..TrainerConfig::smoke_test()
        };
        assert!(train_classical(&mut env, &QNetworkSpec::mlp(vec![8]), &bad, &mut rng).is_err());
        let bad2 = TrainerConfig {
            train_every: 0,
            ..TrainerConfig::smoke_test()
        };
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn smoke_test_config_is_valid_and_fast() {
        let cfg = TrainerConfig::smoke_test();
        assert!(cfg.validate().is_ok());
        assert!(cfg.episodes <= 50);
    }
}
