//! Greedy-policy evaluation: success rate and trajectory statistics.
//!
//! The paper's mission-level metrics all start from greedy rollouts of a
//! trained (and possibly bit-error-perturbed) policy: the success rate is
//! the fraction of trials that reach the goal, and the average trajectory
//! length feeds the flight-time / flight-energy models.  [`evaluate_policy`]
//! produces exactly those statistics.

use crate::env::{Environment, TerminalKind};
use berry_nn::network::{InferScratch, Sequential};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a batch of greedy evaluation episodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Number of episodes evaluated.
    pub episodes: usize,
    /// Fraction of episodes that reached the goal.
    pub success_rate: f64,
    /// Fraction of episodes that ended in a collision.
    pub collision_rate: f64,
    /// Fraction of episodes that timed out.
    pub timeout_rate: f64,
    /// Mean undiscounted return.
    pub mean_return: f64,
    /// Mean number of steps per episode.
    pub mean_steps: f64,
    /// Mean distance travelled per episode (environment units / metres).
    pub mean_distance: f64,
    /// Mean distance travelled over *successful* episodes only (the paper's
    /// "flight distance" column considers completed missions).
    pub mean_success_distance: f64,
}

impl EvalStats {
    /// Statistics representing "no episodes evaluated".
    pub fn empty() -> Self {
        Self {
            episodes: 0,
            success_rate: 0.0,
            collision_rate: 0.0,
            timeout_rate: 0.0,
            mean_return: 0.0,
            mean_steps: 0.0,
            mean_distance: 0.0,
            mean_success_distance: 0.0,
        }
    }

    /// Merges two statistics blocks, weighting by episode counts.
    pub fn merge(&self, other: &EvalStats) -> EvalStats {
        let n1 = self.episodes as f64;
        let n2 = other.episodes as f64;
        let n = n1 + n2;
        if n == 0.0 {
            return EvalStats::empty();
        }
        let w = |a: f64, b: f64| (a * n1 + b * n2) / n;
        // Success-weighted distance needs success counts, not episode counts.
        let s1 = self.success_rate * n1;
        let s2 = other.success_rate * n2;
        let mean_success_distance = if s1 + s2 > 0.0 {
            (self.mean_success_distance * s1 + other.mean_success_distance * s2) / (s1 + s2)
        } else {
            0.0
        };
        EvalStats {
            episodes: self.episodes + other.episodes,
            success_rate: w(self.success_rate, other.success_rate),
            collision_rate: w(self.collision_rate, other.collision_rate),
            timeout_rate: w(self.timeout_rate, other.timeout_rate),
            mean_return: w(self.mean_return, other.mean_return),
            mean_steps: w(self.mean_steps, other.mean_steps),
            mean_distance: w(self.mean_distance, other.mean_distance),
            mean_success_distance,
        }
    }
}

/// Runs `episodes` greedy rollouts of `policy` on `env`.
///
/// The policy network is used directly (rather than a [`crate::DqnAgent`])
/// and only *borrowed*: greedy action selection goes through the immutable
/// [`Sequential::infer`] path, so bit-error-perturbed copies of a network —
/// or the clean network itself, shared across data-parallel fault-map
/// workers — can be evaluated without `&mut` access and without cloning.
///
/// This convenience wrapper owns its inference scratch; loops that evaluate
/// many perturbed networks should hold one [`InferScratch`] and call
/// [`evaluate_policy_with_scratch`] to keep the hot path allocation-free.
pub fn evaluate_policy<E: Environment, R: Rng>(
    policy: &Sequential,
    env: &mut E,
    episodes: usize,
    max_steps: usize,
    rng: &mut R,
) -> EvalStats {
    let mut scratch = InferScratch::new();
    evaluate_policy_with_scratch(policy, env, episodes, max_steps, rng, &mut scratch)
}

/// [`evaluate_policy`] with a caller-owned inference scratch, so repeated
/// evaluations reuse the same activation buffers.
pub fn evaluate_policy_with_scratch<E: Environment, R: Rng>(
    policy: &Sequential,
    env: &mut E,
    episodes: usize,
    max_steps: usize,
    rng: &mut R,
    scratch: &mut InferScratch,
) -> EvalStats {
    if episodes == 0 {
        return EvalStats::empty();
    }
    let obs_shape = env.observation_shape();
    let per_obs: usize = obs_shape.iter().product();

    let mut successes = 0usize;
    let mut collisions = 0usize;
    let mut timeouts = 0usize;
    let mut total_return = 0.0f64;
    let mut total_steps = 0usize;
    let mut total_distance = 0.0f64;
    let mut success_distance = 0.0f64;

    for _ in 0..episodes {
        let mut obs = env.reset(rng);
        let mut episode_distance = 0.0f64;
        let mut terminal: Option<TerminalKind> = None;
        for _ in 0..max_steps {
            debug_assert_eq!(obs.len(), per_obs);
            let q = policy
                .infer_batch(&[&obs], scratch)
                .expect("observation matches the environment shape");
            let action = q.argmax().expect("non-empty action space");
            let outcome = env.step(action, rng);
            total_return += outcome.reward as f64;
            episode_distance += outcome.distance_travelled;
            total_steps += 1;
            obs = outcome.observation;
            if let Some(t) = outcome.terminal {
                terminal = Some(t);
                break;
            }
        }
        total_distance += episode_distance;
        match terminal {
            Some(TerminalKind::Goal) => {
                successes += 1;
                success_distance += episode_distance;
            }
            Some(TerminalKind::Collision) => collisions += 1,
            _ => timeouts += 1,
        }
    }

    let n = episodes as f64;
    EvalStats {
        episodes,
        success_rate: successes as f64 / n,
        collision_rate: collisions as f64 / n,
        timeout_rate: timeouts as f64 / n,
        mean_return: total_return / n,
        mean_steps: total_steps as f64 / n,
        mean_distance: total_distance / n,
        mean_success_distance: if successes > 0 {
            success_distance / successes as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::StepOutcome;
    use crate::policy::QNetworkSpec;
    use berry_nn::tensor::Tensor;
    use rand::SeedableRng;

    /// An environment that succeeds if and only if the policy picks action 0
    /// on the first step.
    struct FirstActionMatters;

    impl Environment for FirstActionMatters {
        fn reset(&mut self, _rng: &mut dyn rand::RngCore) -> Tensor {
            Tensor::from_vec(vec![2], vec![1.0, -1.0]).unwrap()
        }

        fn step(&mut self, action: usize, _rng: &mut dyn rand::RngCore) -> StepOutcome {
            let success = action == 0;
            StepOutcome {
                observation: Tensor::zeros(&[2]),
                reward: if success { 1.0 } else { -1.0 },
                terminal: Some(if success {
                    TerminalKind::Goal
                } else {
                    TerminalKind::Collision
                }),
                distance_travelled: 2.0,
            }
        }

        fn num_actions(&self) -> usize {
            2
        }

        fn observation_shape(&self) -> Vec<usize> {
            vec![2]
        }
    }

    #[test]
    fn evaluation_is_deterministic_for_a_deterministic_policy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let policy = QNetworkSpec::mlp(vec![8]).build(&[2], 2, &mut rng).unwrap();
        let mut env = FirstActionMatters;
        let stats1 = evaluate_policy(&policy, &mut env, 10, 5, &mut rng);
        let stats2 = evaluate_policy(&policy, &mut env, 10, 5, &mut rng);
        assert_eq!(stats1.success_rate, stats2.success_rate);
        // Every episode terminates on the first step either way.
        assert_eq!(stats1.mean_steps, 1.0);
        assert_eq!(stats1.mean_distance, 2.0);
        assert!((stats1.success_rate + stats1.collision_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_episodes_yields_empty_stats() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let policy = QNetworkSpec::mlp(vec![4]).build(&[2], 2, &mut rng).unwrap();
        let mut env = FirstActionMatters;
        let stats = evaluate_policy(&policy, &mut env, 0, 5, &mut rng);
        assert_eq!(stats, EvalStats::empty());
    }

    #[test]
    fn merge_weights_by_episode_count() {
        let a = EvalStats {
            episodes: 10,
            success_rate: 1.0,
            collision_rate: 0.0,
            timeout_rate: 0.0,
            mean_return: 1.0,
            mean_steps: 5.0,
            mean_distance: 10.0,
            mean_success_distance: 10.0,
        };
        let b = EvalStats {
            episodes: 30,
            success_rate: 0.0,
            collision_rate: 1.0,
            timeout_rate: 0.0,
            mean_return: -1.0,
            mean_steps: 3.0,
            mean_distance: 6.0,
            mean_success_distance: 0.0,
        };
        let m = a.merge(&b);
        assert_eq!(m.episodes, 40);
        assert!((m.success_rate - 0.25).abs() < 1e-12);
        assert!((m.mean_steps - 3.5).abs() < 1e-12);
        // Success distance only averages over the 10 successful episodes.
        assert!((m.mean_success_distance - 10.0).abs() < 1e-12);
        let empty = EvalStats::empty().merge(&EvalStats::empty());
        assert_eq!(empty.episodes, 0);
    }
}
