//! Greedy-policy evaluation: success rate and trajectory statistics.
//!
//! The paper's mission-level metrics all start from greedy rollouts of a
//! trained (and possibly bit-error-perturbed) policy: the success rate is
//! the fraction of trials that reach the goal, and the average trajectory
//! length feeds the flight-time / flight-energy models.  [`evaluate_policy`]
//! produces exactly those statistics.

// lint: pinned-path — reductions here feed golden-pinned statistics; use berry_nn::reduce helpers

use crate::env::{Environment, TerminalKind};
use crate::vecenv::{episode_seed, EpisodeRecord, VecEnv};
use berry_nn::network::{InferScratch, Sequential};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a batch of greedy evaluation episodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Number of episodes evaluated.
    pub episodes: usize,
    /// Fraction of episodes that reached the goal.
    pub success_rate: f64,
    /// Fraction of episodes that ended in a collision.
    pub collision_rate: f64,
    /// Fraction of episodes that timed out.
    pub timeout_rate: f64,
    /// Mean undiscounted return.
    pub mean_return: f64,
    /// Mean number of steps per episode.
    pub mean_steps: f64,
    /// Mean distance travelled per episode (environment units / metres).
    pub mean_distance: f64,
    /// Mean distance travelled over *successful* episodes only (the paper's
    /// "flight distance" column considers completed missions).
    pub mean_success_distance: f64,
}

impl EvalStats {
    /// Statistics representing "no episodes evaluated".
    pub fn empty() -> Self {
        Self {
            episodes: 0,
            success_rate: 0.0,
            collision_rate: 0.0,
            timeout_rate: 0.0,
            mean_return: 0.0,
            mean_steps: 0.0,
            mean_distance: 0.0,
            mean_success_distance: 0.0,
        }
    }

    /// Merges two statistics blocks, weighting by episode counts.
    ///
    /// Merging with [`EvalStats::empty`] (zero episodes) is a **bitwise
    /// identity** — the non-empty side is returned unchanged instead of
    /// being routed through the weighted average, whose `v * n / n`
    /// round trip is not exact for every float.
    pub fn merge(&self, other: &EvalStats) -> EvalStats {
        // Identity short-circuits keep empty merges exact and NaN-free.
        if other.episodes == 0 {
            return self.clone();
        }
        if self.episodes == 0 {
            return other.clone();
        }
        let n1 = self.episodes as f64;
        let n2 = other.episodes as f64;
        let n = n1 + n2;
        let w = |a: f64, b: f64| (a * n1 + b * n2) / n;
        // Success-weighted distance needs success counts, not episode counts.
        let s1 = self.success_rate * n1;
        let s2 = other.success_rate * n2;
        let mean_success_distance = if s1 + s2 > 0.0 {
            (self.mean_success_distance * s1 + other.mean_success_distance * s2) / (s1 + s2)
        } else {
            0.0
        };
        EvalStats {
            episodes: self.episodes + other.episodes,
            success_rate: w(self.success_rate, other.success_rate),
            collision_rate: w(self.collision_rate, other.collision_rate),
            timeout_rate: w(self.timeout_rate, other.timeout_rate),
            mean_return: w(self.mean_return, other.mean_return),
            mean_steps: w(self.mean_steps, other.mean_steps),
            mean_distance: w(self.mean_distance, other.mean_distance),
            mean_success_distance,
        }
    }
}

/// Runs `episodes` greedy rollouts of `policy` on `env`.
///
/// The policy network is used directly (rather than a [`crate::DqnAgent`])
/// and only *borrowed*: greedy action selection goes through the immutable
/// [`Sequential::infer`] path, so bit-error-perturbed copies of a network —
/// or the clean network itself, shared across data-parallel fault-map
/// workers — can be evaluated without `&mut` access and without cloning.
///
/// This convenience wrapper owns its inference scratch; loops that evaluate
/// many perturbed networks should hold one [`InferScratch`] and call
/// [`evaluate_policy_with_scratch`] to keep the hot path allocation-free.
pub fn evaluate_policy<E: Environment, R: Rng>(
    policy: &Sequential,
    env: &mut E,
    episodes: usize,
    max_steps: usize,
    rng: &mut R,
) -> EvalStats {
    let mut scratch = InferScratch::new();
    evaluate_policy_with_scratch(policy, env, episodes, max_steps, rng, &mut scratch)
}

/// [`evaluate_policy`] with a caller-owned inference scratch, so repeated
/// evaluations reuse the same activation buffers.
pub fn evaluate_policy_with_scratch<E: Environment, R: Rng>(
    policy: &Sequential,
    env: &mut E,
    episodes: usize,
    max_steps: usize,
    rng: &mut R,
    scratch: &mut InferScratch,
) -> EvalStats {
    if episodes == 0 {
        return EvalStats::empty();
    }
    let obs_shape = env.observation_shape();
    let per_obs: usize = obs_shape.iter().product();

    let mut successes = 0usize;
    let mut collisions = 0usize;
    let mut timeouts = 0usize;
    let mut total_return = 0.0f64;
    let mut total_steps = 0usize;
    let mut total_distance = 0.0f64;
    let mut success_distance = 0.0f64;

    for _ in 0..episodes {
        let mut obs = env.reset(rng);
        let mut episode_distance = 0.0f64;
        let mut terminal: Option<TerminalKind> = None;
        for _ in 0..max_steps {
            debug_assert_eq!(obs.len(), per_obs);
            let q = policy
                .infer_batch(&[&obs], scratch)
                .expect("observation matches the environment shape");
            let action = q.argmax().expect("non-empty action space");
            let outcome = env.step(action, rng);
            total_return += outcome.reward as f64;
            episode_distance += outcome.distance_travelled;
            total_steps += 1;
            obs = outcome.observation;
            if let Some(t) = outcome.terminal {
                terminal = Some(t);
                break;
            }
        }
        total_distance += episode_distance;
        match terminal {
            Some(TerminalKind::Goal) => {
                successes += 1;
                success_distance += episode_distance;
            }
            Some(TerminalKind::Collision) => collisions += 1,
            _ => timeouts += 1,
        }
    }

    let n = episodes as f64;
    EvalStats {
        episodes,
        success_rate: successes as f64 / n,
        collision_rate: collisions as f64 / n,
        timeout_rate: timeouts as f64 / n,
        mean_return: total_return / n,
        mean_steps: total_steps as f64 / n,
        mean_distance: total_distance / n,
        mean_success_distance: if successes > 0 {
            success_distance / successes as f64
        } else {
            0.0
        },
    }
}

/// Folds per-episode records — **in episode-index order** — into the
/// aggregate statistics.
///
/// Both the batched lockstep engine and the serial per-episode reference
/// reduce through this function with identically grouped floating-point
/// sums (per-episode accumulation first, then an episode-ordered fold), so
/// their outputs are bitwise identical.
fn fold_episode_records<I: IntoIterator<Item = EpisodeRecord>>(
    episodes: usize,
    records: I,
) -> EvalStats {
    if episodes == 0 {
        return EvalStats::empty();
    }
    let mut successes = 0usize;
    let mut collisions = 0usize;
    let mut timeouts = 0usize;
    let mut total_return = 0.0f64;
    let mut total_steps = 0usize;
    let mut total_distance = 0.0f64;
    let mut success_distance = 0.0f64;
    for record in records {
        total_return += record.ret;
        total_steps += record.steps;
        total_distance += record.distance;
        match record.terminal {
            Some(TerminalKind::Goal) => {
                successes += 1;
                success_distance += record.distance;
            }
            Some(TerminalKind::Collision) => collisions += 1,
            _ => timeouts += 1,
        }
    }
    let n = episodes as f64;
    EvalStats {
        episodes,
        success_rate: successes as f64 / n,
        collision_rate: collisions as f64 / n,
        timeout_rate: timeouts as f64 / n,
        mean_return: total_return / n,
        mean_steps: total_steps as f64 / n,
        mean_distance: total_distance / n,
        mean_success_distance: if successes > 0 {
            success_distance / successes as f64
        } else {
            0.0
        },
    }
}

/// Greedy action per row of a `[n, num_actions]` Q-value batch, through
/// the same [`berry_nn::tensor::argmax_slice`] scan (and tie-break) that
/// [`berry_nn::tensor::Tensor::argmax`] delegates to — one source of
/// truth, so the batched and serial action selections cannot drift apart.
fn greedy_actions_into(q: &berry_nn::tensor::Tensor, actions: &mut Vec<usize>) {
    let rows = q.shape()[0];
    let cols = q.shape()[1];
    actions.clear();
    let data = q.data();
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        actions.push(berry_nn::tensor::argmax_slice(row).expect("non-empty action space"));
    }
}

/// Runs `episodes` greedy rollouts through the **batched lockstep engine**:
/// up to `lanes` episodes advance concurrently, one stacked
/// [`Sequential::infer_batch`] call per timestep serves all of them, and
/// finished lanes are refilled until the episode budget is spent.
///
/// Episode `i` draws all of its randomness from an RNG seeded with
/// [`episode_seed`]`(map_seed, i)`, so the result is **bitwise identical
/// for any lane count** and to the serial reference
/// [`evaluate_policy_seeded_serial`] (the GEMM inference core guarantees
/// each batch row equals the same row computed alone).  The determinism
/// tests pin both equalities.
///
/// # Panics
///
/// Panics if `lanes` or `max_steps` is zero, or if the policy's output
/// shape does not match the environment's action space.
pub fn evaluate_policy_batched<E: Environment + Clone>(
    policy: &Sequential,
    env: &E,
    episodes: usize,
    max_steps: usize,
    lanes: usize,
    map_seed: u64,
    scratch: &mut InferScratch,
) -> EvalStats {
    if episodes == 0 {
        return EvalStats::empty();
    }
    let mut vec_env = VecEnv::new(env, episodes, max_steps, lanes, map_seed);
    let mut records: Vec<Option<EpisodeRecord>> = vec![None; episodes];
    let mut actions: Vec<usize> = Vec::with_capacity(vec_env.active_lanes());
    let mut finished: Vec<EpisodeRecord> = Vec::new();
    let mut batch = berry_nn::tensor::Tensor::default();
    while !vec_env.is_done() {
        // Stack → one forward pass → per-row greedy actions; every buffer
        // here (batch tensor, scratch, actions, finished) is reused, so
        // the lockstep loop allocates nothing once warm.
        vec_env.stack_observations(&mut batch);
        let q = policy.infer_into(&batch, scratch);
        greedy_actions_into(q, &mut actions);
        vec_env.step(&actions, &mut finished);
        for record in finished.drain(..) {
            let slot = record.episode;
            records[slot] = Some(record);
        }
    }
    fold_episode_records(
        episodes,
        records
            .into_iter()
            .map(|r| r.expect("every scheduled episode produced a record")),
    )
}

/// The serial reference implementation of the per-episode-seeded rollout
/// protocol: one lane, one episode at a time, batch-1 inference — written
/// independently of [`VecEnv`] so the lane-count-invariance tests compare
/// two genuinely distinct code paths.
pub fn evaluate_policy_seeded_serial<E: Environment + Clone>(
    policy: &Sequential,
    env: &E,
    episodes: usize,
    max_steps: usize,
    map_seed: u64,
    scratch: &mut InferScratch,
) -> EvalStats {
    if episodes == 0 {
        return EvalStats::empty();
    }
    let mut records = Vec::with_capacity(episodes);
    for episode in 0..episodes {
        let mut episode_env = env.clone();
        let mut rng = StdRng::seed_from_u64(episode_seed(map_seed, episode as u64));
        let mut obs = episode_env.reset(&mut rng);
        let mut steps = 0usize;
        let mut ret = 0.0f64;
        let mut distance = 0.0f64;
        let mut terminal = None;
        for _ in 0..max_steps {
            let q = policy
                .infer_batch(&[&obs], scratch)
                .expect("observation matches the environment shape");
            let action = q.argmax().expect("non-empty action space");
            let outcome = episode_env.step(action, &mut rng);
            ret += outcome.reward as f64;
            distance += outcome.distance_travelled;
            steps += 1;
            obs = outcome.observation;
            if outcome.terminal.is_some() {
                terminal = outcome.terminal;
                break;
            }
        }
        records.push(EpisodeRecord {
            episode,
            steps,
            ret,
            distance,
            terminal,
        });
    }
    fold_episode_records(episodes, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::StepOutcome;
    use crate::policy::QNetworkSpec;
    use berry_nn::tensor::Tensor;
    use rand::SeedableRng;

    /// An environment that succeeds if and only if the policy picks action 0
    /// on the first step.
    struct FirstActionMatters;

    impl Environment for FirstActionMatters {
        fn reset(&mut self, _rng: &mut dyn rand::RngCore) -> Tensor {
            Tensor::from_vec(vec![2], vec![1.0, -1.0]).unwrap()
        }

        fn step(&mut self, action: usize, _rng: &mut dyn rand::RngCore) -> StepOutcome {
            let success = action == 0;
            StepOutcome {
                observation: Tensor::zeros(&[2]),
                reward: if success { 1.0 } else { -1.0 },
                terminal: Some(if success {
                    TerminalKind::Goal
                } else {
                    TerminalKind::Collision
                }),
                distance_travelled: 2.0,
            }
        }

        fn num_actions(&self) -> usize {
            2
        }

        fn observation_shape(&self) -> Vec<usize> {
            vec![2]
        }
    }

    #[test]
    fn evaluation_is_deterministic_for_a_deterministic_policy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let policy = QNetworkSpec::mlp(vec![8]).build(&[2], 2, &mut rng).unwrap();
        let mut env = FirstActionMatters;
        let stats1 = evaluate_policy(&policy, &mut env, 10, 5, &mut rng);
        let stats2 = evaluate_policy(&policy, &mut env, 10, 5, &mut rng);
        assert_eq!(stats1.success_rate, stats2.success_rate);
        // Every episode terminates on the first step either way.
        assert_eq!(stats1.mean_steps, 1.0);
        assert_eq!(stats1.mean_distance, 2.0);
        assert!((stats1.success_rate + stats1.collision_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_episodes_yields_empty_stats() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let policy = QNetworkSpec::mlp(vec![4]).build(&[2], 2, &mut rng).unwrap();
        let mut env = FirstActionMatters;
        let stats = evaluate_policy(&policy, &mut env, 0, 5, &mut rng);
        assert_eq!(stats, EvalStats::empty());
    }

    /// A stochastic environment: the observation is drawn from the episode
    /// RNG each reset and every step consumes more randomness, so any
    /// lane-scheduling dependence in RNG consumption shows up immediately.
    #[derive(Clone)]
    struct NoisyWalk {
        position: f32,
        horizon: usize,
        steps: usize,
    }

    impl NoisyWalk {
        fn new() -> Self {
            Self {
                position: 0.0,
                horizon: 9,
                steps: 0,
            }
        }
    }

    impl Environment for NoisyWalk {
        fn reset(&mut self, rng: &mut dyn rand::RngCore) -> Tensor {
            self.position = (rng.next_u32() % 1000) as f32 / 1000.0;
            self.steps = 0;
            Tensor::from_vec(vec![2], vec![self.position, 1.0 - self.position]).unwrap()
        }

        fn step(&mut self, action: usize, rng: &mut dyn rand::RngCore) -> StepOutcome {
            let noise = (rng.next_u32() % 100) as f32 / 1000.0;
            self.position += if action == 0 { 0.2 } else { -0.1 } + noise;
            self.steps += 1;
            let terminal = if self.position >= 1.0 {
                Some(TerminalKind::Goal)
            } else if self.position < -0.05 {
                Some(TerminalKind::Collision)
            } else if self.steps >= self.horizon {
                Some(TerminalKind::Timeout)
            } else {
                None
            };
            StepOutcome {
                observation: Tensor::from_vec(
                    vec![2],
                    vec![self.position, 1.0 - self.position],
                )
                .unwrap(),
                reward: self.position,
                terminal,
                distance_travelled: 0.3 + noise as f64,
            }
        }

        fn num_actions(&self) -> usize {
            2
        }

        fn observation_shape(&self) -> Vec<usize> {
            vec![2]
        }
    }

    fn assert_stats_bitwise_eq(a: &EvalStats, b: &EvalStats, label: &str) {
        assert_eq!(a.episodes, b.episodes, "{label}: episodes");
        for (name, x, y) in [
            ("success_rate", a.success_rate, b.success_rate),
            ("collision_rate", a.collision_rate, b.collision_rate),
            ("timeout_rate", a.timeout_rate, b.timeout_rate),
            ("mean_return", a.mean_return, b.mean_return),
            ("mean_steps", a.mean_steps, b.mean_steps),
            ("mean_distance", a.mean_distance, b.mean_distance),
            (
                "mean_success_distance",
                a.mean_success_distance,
                b.mean_success_distance,
            ),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: {name} ({x} vs {y})");
        }
    }

    #[test]
    fn batched_rollout_is_bitwise_identical_for_any_lane_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let policy = QNetworkSpec::mlp(vec![12]).build(&[2], 2, &mut rng).unwrap();
        let env = NoisyWalk::new();
        let mut scratch = InferScratch::new();
        let serial =
            evaluate_policy_seeded_serial(&policy, &env, 11, 9, 0xABCD, &mut scratch);
        assert_eq!(serial.episodes, 11);
        assert!(serial.mean_steps > 0.0);
        for lanes in [1usize, 3, 8, 16] {
            let batched = evaluate_policy_batched(
                &policy,
                &env,
                11,
                9,
                lanes,
                0xABCD,
                &mut scratch,
            );
            assert_stats_bitwise_eq(&serial, &batched, &format!("{lanes} lanes"));
        }
    }

    #[test]
    fn batched_rollout_zero_episodes_is_empty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let policy = QNetworkSpec::mlp(vec![4]).build(&[2], 2, &mut rng).unwrap();
        let env = NoisyWalk::new();
        let mut scratch = InferScratch::new();
        let stats = evaluate_policy_batched(&policy, &env, 0, 5, 4, 1, &mut scratch);
        assert_eq!(stats, EvalStats::empty());
        let serial = evaluate_policy_seeded_serial(&policy, &env, 0, 5, 1, &mut scratch);
        assert_eq!(serial, EvalStats::empty());
    }

    #[test]
    fn batched_rollout_depends_on_the_map_seed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let policy = QNetworkSpec::mlp(vec![12]).build(&[2], 2, &mut rng).unwrap();
        let env = NoisyWalk::new();
        let mut scratch = InferScratch::new();
        let a = evaluate_policy_batched(&policy, &env, 16, 9, 4, 11, &mut scratch);
        let b = evaluate_policy_batched(&policy, &env, 16, 9, 4, 12, &mut scratch);
        // Different seeds wander differently (stochastic env).
        assert_ne!(a.mean_return.to_bits(), b.mean_return.to_bits());
    }

    #[test]
    fn merge_weights_by_episode_count() {
        let a = EvalStats {
            episodes: 10,
            success_rate: 1.0,
            collision_rate: 0.0,
            timeout_rate: 0.0,
            mean_return: 1.0,
            mean_steps: 5.0,
            mean_distance: 10.0,
            mean_success_distance: 10.0,
        };
        let b = EvalStats {
            episodes: 30,
            success_rate: 0.0,
            collision_rate: 1.0,
            timeout_rate: 0.0,
            mean_return: -1.0,
            mean_steps: 3.0,
            mean_distance: 6.0,
            mean_success_distance: 0.0,
        };
        let m = a.merge(&b);
        assert_eq!(m.episodes, 40);
        assert!((m.success_rate - 0.25).abs() < 1e-12);
        assert!((m.mean_steps - 3.5).abs() < 1e-12);
        // Success distance only averages over the 10 successful episodes.
        assert!((m.mean_success_distance - 10.0).abs() < 1e-12);
        let empty = EvalStats::empty().merge(&EvalStats::empty());
        assert_eq!(empty.episodes, 0);
    }

    mod merge_properties {
        use super::*;
        use proptest::prelude::*;

        /// Builds a consistent statistics block the way a real episode fold
        /// would: outcome counts partition the episodes and every mean is a
        /// finite total divided by the episode count.
        #[allow(clippy::too_many_arguments)]
        fn stats_from(
            episodes: usize,
            success_cut: usize,
            collision_cut: usize,
            total_return: f64,
            total_steps: f64,
            total_distance: f64,
            success_distance: f64,
        ) -> EvalStats {
            if episodes == 0 {
                return EvalStats::empty();
            }
            let successes = success_cut % (episodes + 1);
            let collisions = collision_cut % (episodes - successes + 1);
            let timeouts = episodes - successes - collisions;
            let n = episodes as f64;
            EvalStats {
                episodes,
                success_rate: successes as f64 / n,
                collision_rate: collisions as f64 / n,
                timeout_rate: timeouts as f64 / n,
                mean_return: total_return / n,
                mean_steps: total_steps / n,
                mean_distance: total_distance / n,
                mean_success_distance: if successes > 0 {
                    success_distance / successes as f64
                } else {
                    0.0
                },
            }
        }

        fn field_bits(s: &EvalStats) -> [u64; 7] {
            [
                s.success_rate.to_bits(),
                s.collision_rate.to_bits(),
                s.timeout_rate.to_bits(),
                s.mean_return.to_bits(),
                s.mean_steps.to_bits(),
                s.mean_distance.to_bits(),
                s.mean_success_distance.to_bits(),
            ]
        }

        fn fields(s: &EvalStats) -> [f64; 7] {
            [
                s.success_rate,
                s.collision_rate,
                s.timeout_rate,
                s.mean_return,
                s.mean_steps,
                s.mean_distance,
                s.mean_success_distance,
            ]
        }

        /// Relative tolerance covering nothing more than f64 reassociation
        /// of the weighted sums.
        fn close(a: f64, b: f64) -> bool {
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
        }

        proptest! {
            #[test]
            fn prop_merge_with_empty_is_a_bitwise_identity(
                episodes in 0usize..40,
                success_cut in 0usize..100,
                collision_cut in 0usize..100,
                ret in -500.0f64..500.0,
                steps in 0.0f64..2_000.0,
                dist in 0.0f64..1_000.0,
                sdist in 0.0f64..1_000.0,
            ) {
                let s = stats_from(
                    episodes, success_cut, collision_cut, ret, steps, dist, sdist,
                );
                for merged in [s.merge(&EvalStats::empty()), EvalStats::empty().merge(&s)] {
                    prop_assert_eq!(merged.episodes, s.episodes);
                    prop_assert_eq!(field_bits(&merged), field_bits(&s));
                }
            }

            #[test]
            fn prop_merge_order_only_reassociates_the_weighted_means(
                ep_a in 0usize..40,
                ep_b in 0usize..40,
                ep_c in 0usize..40,
                success_cut in 0usize..100,
                collision_cut in 0usize..100,
                ret in -500.0f64..500.0,
                steps in 0.0f64..2_000.0,
                dist in 0.0f64..1_000.0,
                sdist in 0.0f64..1_000.0,
            ) {
                let a = stats_from(ep_a, success_cut, collision_cut, ret, steps, dist, sdist);
                let b = stats_from(
                    ep_b, success_cut / 2, collision_cut / 3, ret * 0.5, steps * 0.25,
                    dist * 0.75, sdist * 0.5,
                );
                let c = stats_from(
                    ep_c, success_cut / 5, collision_cut / 2, -ret, steps * 2.0,
                    dist * 0.1, sdist * 2.0,
                );
                // Commutativity.
                let ab = a.merge(&b);
                let ba = b.merge(&a);
                prop_assert_eq!(ab.episodes, ba.episodes);
                for (x, y) in fields(&ab).into_iter().zip(fields(&ba)) {
                    prop_assert!(close(x, y), "merge commuted {x} vs {y}");
                }
                // Associativity (the merge order of a chunked reduce).
                let left = a.merge(&b).merge(&c);
                let right = a.merge(&b.merge(&c));
                prop_assert_eq!(left.episodes, right.episodes);
                for (x, y) in fields(&left).into_iter().zip(fields(&right)) {
                    prop_assert!(close(x, y), "merge reassociated {x} vs {y}");
                }
            }

            #[test]
            fn prop_zero_success_merges_stay_nan_free(
                ep_a in 0usize..40,
                ep_b in 0usize..40,
                ret in -500.0f64..500.0,
                steps in 0.0f64..2_000.0,
                dist in 0.0f64..1_000.0,
            ) {
                // No successes anywhere: the success-weighted distance must
                // come out as an exact 0.0, never 0/0.
                let a = stats_from(ep_a, 0, 7, ret, steps, dist, 0.0);
                let b = stats_from(ep_b, 0, 2, -ret, steps * 0.5, dist * 2.0, 0.0);
                let m = a.merge(&b);
                prop_assert_eq!(m.mean_success_distance.to_bits(), 0.0f64.to_bits());
                for v in fields(&m) {
                    prop_assert!(v.is_finite(), "merge produced non-finite {v}");
                }
            }
        }
    }
}
