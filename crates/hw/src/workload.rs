//! Network workload descriptions: MACs and memory traffic per layer.
//!
//! The hardware models do not execute the network — they cost it.  A
//! [`NetworkWorkload`] lists, for each layer, how many multiply–accumulate
//! operations one inference performs and how many bytes of weights,
//! activations and outputs move through the on-chip SRAM.  Constructors are
//! provided for the paper's two autonomy policies: **C3F2** (3 conv + 2 FC,
//! ≈1.1 MB of 8-bit parameters) and **C5F4** (5 conv + 4 FC, ≈2× the
//! parameters).

use crate::error::HwError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// The kind of computation a layer performs (affects systolic-array mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully-connected (matrix–vector) layer.
    Dense,
}

/// Cost description of a single layer for one inference (batch of one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Human-readable layer name.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Multiply–accumulate operations per inference.
    pub macs: u64,
    /// Weight bytes read (8-bit quantized deployment).
    pub weight_bytes: u64,
    /// Input-activation bytes read.
    pub input_bytes: u64,
    /// Output-activation bytes written.
    pub output_bytes: u64,
}

impl LayerWorkload {
    /// Cost of a convolution layer given its dimensions.
    ///
    /// `spatial` is the input height = width (square feature maps).
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: impl Into<String>,
        in_channels: u64,
        out_channels: u64,
        kernel: u64,
        spatial_in: u64,
        spatial_out: u64,
    ) -> Self {
        let macs = spatial_out * spatial_out * out_channels * in_channels * kernel * kernel;
        LayerWorkload {
            name: name.into(),
            kind: LayerKind::Conv,
            macs,
            weight_bytes: out_channels * in_channels * kernel * kernel,
            input_bytes: in_channels * spatial_in * spatial_in,
            output_bytes: out_channels * spatial_out * spatial_out,
        }
    }

    /// Cost of a dense layer given its dimensions.
    pub fn dense(name: impl Into<String>, in_features: u64, out_features: u64) -> Self {
        LayerWorkload {
            name: name.into(),
            kind: LayerKind::Dense,
            macs: in_features * out_features,
            weight_bytes: in_features * out_features,
            input_bytes: in_features,
            output_bytes: out_features,
        }
    }

    /// Total SRAM traffic (bytes moved) for one inference of this layer.
    pub fn sram_bytes(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }
}

/// The whole network's cost description.
///
/// # Examples
///
/// ```
/// use berry_hw::workload::NetworkWorkload;
/// let c3f2 = NetworkWorkload::c3f2();
/// let c5f4 = NetworkWorkload::c5f4();
/// assert!(c5f4.total_params() > c3f2.total_params());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkWorkload {
    name: String,
    layers: Vec<LayerWorkload>,
}

impl NetworkWorkload {
    /// Creates a workload from explicit layers.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidWorkload`] if the layer list is empty.
    pub fn new(name: impl Into<String>, layers: Vec<LayerWorkload>) -> Result<Self> {
        if layers.is_empty() {
            return Err(HwError::InvalidWorkload(
                "a workload needs at least one layer".into(),
            ));
        }
        Ok(Self {
            name: name.into(),
            layers,
        })
    }

    /// The paper's C3F2 autonomy policy: 3 convolution + 2 fully-connected
    /// layers totalling ≈1.1 MB of 8-bit parameters, operating on a
    /// perception input and producing 25 action values.
    ///
    /// The layer dimensions below follow the published Air Learning /
    /// DQN-navigation policy family (stride-2 convolutions over an 84×84
    /// depth/RGB input followed by dense layers), scaled so that the total
    /// parameter footprint lands at the paper's 1.1 MB figure.
    pub fn c3f2() -> Self {
        let layers = vec![
            LayerWorkload::conv("conv1", 4, 32, 5, 84, 40),
            LayerWorkload::conv("conv2", 32, 48, 3, 40, 19),
            LayerWorkload::conv("conv3", 48, 64, 3, 19, 9),
            LayerWorkload::dense("fc1", 64 * 9 * 9, 200),
            LayerWorkload::dense("fc2", 200, 25),
        ];
        Self::new("C3F2", layers).expect("static layer list is non-empty")
    }

    /// The paper's C5F4 policy: 5 convolution + 4 fully-connected layers
    /// with ≈1.98× the parameters of C3F2 (Fig. 7).
    pub fn c5f4() -> Self {
        let layers = vec![
            LayerWorkload::conv("conv1", 4, 32, 5, 84, 40),
            LayerWorkload::conv("conv2", 32, 48, 3, 40, 19),
            LayerWorkload::conv("conv3", 48, 64, 3, 19, 17),
            LayerWorkload::conv("conv4", 64, 64, 3, 17, 9),
            LayerWorkload::conv("conv5", 64, 96, 3, 9, 9),
            LayerWorkload::dense("fc1", 96 * 9 * 9, 250),
            LayerWorkload::dense("fc2", 250, 128),
            LayerWorkload::dense("fc3", 128, 64),
            LayerWorkload::dense("fc4", 64, 25),
        ];
        Self::new("C5F4", layers).expect("static layer list is non-empty")
    }

    /// Looks up a built-in published workload by its short name
    /// (case-insensitive `"C3F2"` / `"C5F4"`), the mapping the scenario
    /// grid and the campaign engine use to attach hardware energy numbers
    /// to a policy architecture.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidWorkload`] for unknown names.
    pub fn by_name(name: &str) -> Result<Self> {
        match name.to_ascii_uppercase().as_str() {
            "C3F2" => Ok(Self::c3f2()),
            "C5F4" => Ok(Self::c5f4()),
            other => Err(HwError::InvalidWorkload(format!(
                "unknown workload `{other}`; built-ins are C3F2 and C5F4"
            ))),
        }
    }

    /// Builds a workload for the compact simulator-scale policy used by the
    /// reproduction's RL experiments (2×9×9 perception input, 25 actions).
    ///
    /// The simulator trains much smaller networks than the paper's 84×84
    /// vision policies so that DQN training completes in seconds; this
    /// constructor lets the energy model cost exactly the network being
    /// deployed, while [`NetworkWorkload::c3f2`]/[`NetworkWorkload::c5f4`]
    /// reproduce the paper's published footprints.
    pub fn from_layer_dims(name: impl Into<String>, layers: Vec<LayerWorkload>) -> Result<Self> {
        Self::new(name, layers)
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-layer costs.
    pub fn layers(&self) -> &[LayerWorkload] {
        &self.layers
    }

    /// Total multiply–accumulate operations per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total parameter count (= weight bytes at 8-bit precision).
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// Total parameter footprint in bytes at the given precision.
    pub fn param_bytes(&self, bits_per_param: u32) -> u64 {
        (self.total_params() * bits_per_param as u64).div_ceil(8)
    }

    /// Total SRAM traffic per inference in bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.sram_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_builtins_case_insensitively() {
        assert_eq!(NetworkWorkload::by_name("C3F2").unwrap().name(), "C3F2");
        assert_eq!(NetworkWorkload::by_name("c5f4").unwrap().name(), "C5F4");
        assert_eq!(
            NetworkWorkload::by_name("C3F2").unwrap().total_macs(),
            NetworkWorkload::c3f2().total_macs()
        );
        assert!(NetworkWorkload::by_name("MLP").is_err());
    }

    #[test]
    fn c3f2_parameter_footprint_matches_paper() {
        let w = NetworkWorkload::c3f2();
        let mb = w.param_bytes(8) as f64 / 1.0e6;
        // Paper: "C3F2 neural network policy with 1.1MB parameters".
        assert!((mb - 1.1).abs() < 0.15, "C3F2 footprint {mb} MB");
        assert_eq!(w.layers().len(), 5);
    }

    #[test]
    fn c5f4_has_roughly_twice_the_parameters() {
        let c3 = NetworkWorkload::c3f2();
        let c5 = NetworkWorkload::c5f4();
        let ratio = c5.total_params() as f64 / c3.total_params() as f64;
        // Paper: "C5F4 architecture has 1.98x parameters than C3F2".
        assert!((ratio - 1.98).abs() < 0.25, "ratio {ratio}");
        assert_eq!(c5.layers().len(), 9);
    }

    #[test]
    fn conv_layer_macs_formula() {
        let l = LayerWorkload::conv("c", 2, 4, 3, 9, 9);
        assert_eq!(l.macs, 81 * 4 * 2 * 9);
        assert_eq!(l.weight_bytes, 4 * 2 * 9);
        assert_eq!(l.kind, LayerKind::Conv);
    }

    #[test]
    fn dense_layer_macs_formula() {
        let l = LayerWorkload::dense("d", 100, 25);
        assert_eq!(l.macs, 2500);
        assert_eq!(l.weight_bytes, 2500);
        assert_eq!(l.sram_bytes(), 2500 + 100 + 25);
        assert_eq!(l.kind, LayerKind::Dense);
    }

    #[test]
    fn empty_workload_is_rejected() {
        assert!(NetworkWorkload::new("empty", vec![]).is_err());
    }

    #[test]
    fn totals_are_sums_over_layers() {
        let w = NetworkWorkload::c3f2();
        let macs: u64 = w.layers().iter().map(|l| l.macs).sum();
        assert_eq!(w.total_macs(), macs);
        let bytes: u64 = w.layers().iter().map(|l| l.sram_bytes()).sum();
        assert_eq!(w.total_sram_bytes(), bytes);
        assert_eq!(w.param_bytes(32), w.total_params() * 4);
    }

    #[test]
    fn custom_workload_from_layer_dims() {
        let layers = vec![
            LayerWorkload::conv("c1", 2, 8, 3, 9, 9),
            LayerWorkload::dense("fc", 648, 25),
        ];
        let w = NetworkWorkload::from_layer_dims("sim-policy", layers).unwrap();
        assert_eq!(w.name(), "sim-policy");
        assert!(w.total_macs() > 0);
    }
}
