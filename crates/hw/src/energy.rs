//! Processing-energy model: joules per inference as a function of voltage.
//!
//! Dynamic CMOS energy scales with the square of the supply voltage, which
//! is the entire premise of the paper's "quadratic relation between energy
//! and operating voltage".  The model here charges every MAC a fixed energy
//! at the nominal supply, scales it by `(V/V_nom)²`, and adds the SRAM
//! traffic energy from [`crate::sram::SramModel`]; the resulting
//! savings-vs-1 V factors reproduce the paper's Table II column
//! (2.77× at 0.86 Vmin … 4.93× at 0.64 Vmin) to within a few percent.

use crate::dvfs::VoltageDomain;
use crate::error::HwError;
use crate::sram::SramModel;
use crate::workload::NetworkWorkload;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Per-inference processing-energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingEnergyModel {
    /// Energy of one 8-bit MAC at the nominal supply voltage, in joules.
    mac_energy_at_nominal_j: f64,
    /// SRAM model used for weight/activation traffic.
    sram: SramModel,
    /// Voltage domain (Vmin, nominal voltage, frequency scaling).
    domain: VoltageDomain,
}

impl ProcessingEnergyModel {
    /// Creates a processing-energy model.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidParameter`] if the MAC energy is not
    /// strictly positive.
    pub fn new(
        mac_energy_at_nominal_j: f64,
        sram: SramModel,
        domain: VoltageDomain,
    ) -> Result<Self> {
        if mac_energy_at_nominal_j <= 0.0 {
            return Err(HwError::InvalidParameter(
                "MAC energy must be strictly positive".into(),
            ));
        }
        Ok(Self {
            mac_energy_at_nominal_j,
            sram,
            domain,
        })
    }

    /// Default model: 1 pJ per 8-bit MAC at 1 V (a typical 14 nm edge
    /// accelerator figure), the default SRAM and voltage domain.
    pub fn default_14nm() -> Self {
        Self::new(1.0e-12, SramModel::default_14nm(), VoltageDomain::default_14nm())
            .expect("constants are valid")
    }

    /// The voltage domain used by this model.
    pub fn domain(&self) -> &VoltageDomain {
        &self.domain
    }

    /// The SRAM model used by this model.
    pub fn sram(&self) -> &SramModel {
        &self.sram
    }

    /// Compute (MAC) energy for one inference at a normalized voltage.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] for out-of-range voltages.
    pub fn compute_energy_j(&self, workload: &NetworkWorkload, voltage_norm: f64) -> Result<f64> {
        let scale = self.domain.energy_scale_vs_nominal(voltage_norm)?;
        Ok(workload.total_macs() as f64 * self.mac_energy_at_nominal_j * scale)
    }

    /// SRAM traffic energy for one inference at a normalized voltage.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] for out-of-range voltages.
    pub fn sram_energy_j(&self, workload: &NetworkWorkload, voltage_norm: f64) -> Result<f64> {
        self.sram
            .energy_for_bytes_j(workload.total_sram_bytes() as usize, voltage_norm)
    }

    /// Total processing energy for one inference at a normalized voltage.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] for out-of-range voltages.
    pub fn energy_per_inference_j(
        &self,
        workload: &NetworkWorkload,
        voltage_norm: f64,
    ) -> Result<f64> {
        Ok(self.compute_energy_j(workload, voltage_norm)?
            + self.sram_energy_j(workload, voltage_norm)?)
    }

    /// Energy-saving factor relative to nominal-voltage operation
    /// (the paper's Table II "Energy Savings" column).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] for out-of-range voltages.
    pub fn savings_vs_nominal(
        &self,
        workload: &NetworkWorkload,
        voltage_norm: f64,
    ) -> Result<f64> {
        let nominal = self.energy_per_inference_j(workload, self.domain.nominal_voltage_norm())?;
        let at_v = self.energy_per_inference_j(workload, voltage_norm)?;
        Ok(nominal / at_v)
    }

    /// Energy-saving factor relative to Vmin operation (the parenthesised
    /// numbers in the paper's Section V-B).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] for out-of-range voltages.
    pub fn savings_vs_vmin(&self, workload: &NetworkWorkload, voltage_norm: f64) -> Result<f64> {
        let vmin = self.energy_per_inference_j(workload, 1.0)?;
        let at_v = self.energy_per_inference_j(workload, voltage_norm)?;
        Ok(vmin / at_v)
    }
}

impl Default for ProcessingEnergyModel {
    fn default() -> Self {
        Self::default_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Table II "Energy Savings" column: (normalized voltage, savings vs 1 V).
    const TABLE2_SAVINGS: [(f64, f64); 8] = [
        (0.86, 2.77),
        (0.84, 2.87),
        (0.83, 2.97),
        (0.81, 3.07),
        (0.80, 3.18),
        (0.77, 3.43),
        (0.68, 4.42),
        (0.64, 4.93),
    ];

    #[test]
    fn savings_reproduce_table2_column() {
        let m = ProcessingEnergyModel::default_14nm();
        let w = NetworkWorkload::c3f2();
        for (v, expected) in TABLE2_SAVINGS {
            let got = m.savings_vs_nominal(&w, v).unwrap();
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.06, "at {v}: model {got} vs paper {expected}");
        }
    }

    #[test]
    fn savings_vs_vmin_is_smaller_than_vs_nominal() {
        let m = ProcessingEnergyModel::default_14nm();
        let w = NetworkWorkload::c3f2();
        let vs_nom = m.savings_vs_nominal(&w, 0.77).unwrap();
        let vs_vmin = m.savings_vs_vmin(&w, 0.77).unwrap();
        assert!(vs_vmin < vs_nom);
        // Paper reports 3.43x vs 1 V and ~2x vs Vmin at 0.77 Vmin; a pure
        // quadratic model lands at 1/0.77^2 ~= 1.7x, so accept that band.
        assert!(vs_vmin > 1.4 && vs_vmin < 2.2, "vs_vmin {vs_vmin}");
    }

    #[test]
    fn energy_components_are_positive_and_additive() {
        let m = ProcessingEnergyModel::default_14nm();
        let w = NetworkWorkload::c3f2();
        let c = m.compute_energy_j(&w, 0.9).unwrap();
        let s = m.sram_energy_j(&w, 0.9).unwrap();
        let total = m.energy_per_inference_j(&w, 0.9).unwrap();
        assert!(c > 0.0 && s > 0.0);
        assert!((total - (c + s)).abs() < 1e-15);
    }

    #[test]
    fn bigger_network_costs_more_energy() {
        let m = ProcessingEnergyModel::default_14nm();
        let e3 = m
            .energy_per_inference_j(&NetworkWorkload::c3f2(), 1.0)
            .unwrap();
        let e5 = m
            .energy_per_inference_j(&NetworkWorkload::c5f4(), 1.0)
            .unwrap();
        assert!(e5 > e3);
    }

    #[test]
    fn invalid_mac_energy_rejected() {
        assert!(ProcessingEnergyModel::new(
            0.0,
            SramModel::default_14nm(),
            VoltageDomain::default_14nm()
        )
        .is_err());
    }

    #[test]
    fn energy_per_inference_magnitude_is_sensible() {
        // A ~1 MB, ~25 MMAC policy at 1 pJ/MAC plus SRAM traffic should land
        // in the low-millijoule-per-inference range; at the 10-30 Hz control
        // rates UAV navigation uses this is a few tens of milliwatts,
        // consistent with the 64 mW visual navigation engine the paper cites.
        let m = ProcessingEnergyModel::default_14nm();
        let w = NetworkWorkload::c3f2();
        let e = m
            .energy_per_inference_j(&w, m.domain().nominal_voltage_norm())
            .unwrap();
        assert!(e > 1.0e-5 && e < 5.0e-3, "energy {e} J");
    }

    proptest! {
        #[test]
        fn prop_savings_at_least_one_below_nominal(v in 0.6f64..1.42) {
            let m = ProcessingEnergyModel::default_14nm();
            let w = NetworkWorkload::c3f2();
            prop_assert!(m.savings_vs_nominal(&w, v).unwrap() >= 0.99);
        }

        #[test]
        fn prop_energy_monotone_in_voltage(v1 in 0.6f64..1.4, v2 in 0.6f64..1.4) {
            let m = ProcessingEnergyModel::default_14nm();
            let w = NetworkWorkload::c3f2();
            let (lo, hi) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
            let e_lo = m.energy_per_inference_j(&w, lo).unwrap();
            let e_hi = m.energy_per_inference_j(&w, hi).unwrap();
            prop_assert!(e_lo <= e_hi + 1e-15);
        }
    }
}
