//! Voltage domains and voltage–frequency scaling.
//!
//! The paper scales the accelerator frequency together with the supply
//! voltage "based on measured results on a deep-learning accelerator"
//! (their reference [30]).  Near- and super-threshold CMOS frequency is well
//! approximated as affine in the supply voltage, which is what
//! [`VoltageDomain::frequency_hz`] implements.  All BERRY-facing interfaces
//! use voltages normalized to `Vmin` (the lowest error-free voltage of the
//! SRAM) so that the fault models and the energy models agree on what
//! "0.77 Vmin" means.

use crate::error::HwError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Lowest normalized voltage the hardware models accept.
pub const MIN_VOLTAGE_NORM: f64 = 0.5;

/// Highest normalized voltage the hardware models accept.
pub const MAX_VOLTAGE_NORM: f64 = 1.6;

/// A chip voltage domain: Vmin, the nominal supply and frequency scaling.
///
/// # Examples
///
/// ```
/// use berry_hw::dvfs::VoltageDomain;
///
/// # fn main() -> Result<(), berry_hw::HwError> {
/// let domain = VoltageDomain::default_14nm();
/// // Nominal 1 V operation corresponds to ~1.43 Vmin for a 0.70 V Vmin part.
/// assert!((domain.nominal_voltage_norm() - 1.0 / 0.70).abs() < 1e-9);
/// let f_low = domain.frequency_hz(0.77)?;
/// let f_nom = domain.frequency_hz(domain.nominal_voltage_norm())?;
/// assert!(f_low < f_nom);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageDomain {
    vmin_volts: f64,
    nominal_volts: f64,
    /// Frequency at the nominal supply voltage.
    nominal_frequency_hz: f64,
    /// Fraction of the nominal frequency still available at Vmin (affine
    /// scaling between the two points, clamped below Vmin).
    frequency_fraction_at_vmin: f64,
}

impl VoltageDomain {
    /// Creates a voltage domain.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidParameter`] if any voltage or frequency is
    /// not strictly positive, or if `nominal_volts < vmin_volts`.
    pub fn new(
        vmin_volts: f64,
        nominal_volts: f64,
        nominal_frequency_hz: f64,
        frequency_fraction_at_vmin: f64,
    ) -> Result<Self> {
        if vmin_volts <= 0.0 || nominal_volts <= 0.0 || nominal_frequency_hz <= 0.0 {
            return Err(HwError::InvalidParameter(
                "voltages and frequency must be strictly positive".into(),
            ));
        }
        if nominal_volts < vmin_volts {
            return Err(HwError::InvalidParameter(format!(
                "nominal voltage {nominal_volts} V must not be below Vmin {vmin_volts} V"
            )));
        }
        if !(0.0..=1.0).contains(&frequency_fraction_at_vmin) {
            return Err(HwError::InvalidParameter(
                "frequency_fraction_at_vmin must lie in [0, 1]".into(),
            ));
        }
        Ok(Self {
            vmin_volts,
            nominal_volts,
            nominal_frequency_hz,
            frequency_fraction_at_vmin,
        })
    }

    /// The default domain used throughout the reproduction: a 14 nm part
    /// with `Vmin = 0.70 V`, nominal `1.0 V` supply and an 800 MHz nominal
    /// clock that drops to 55 % at Vmin.
    ///
    /// The 0.70 V Vmin is chosen so that the quadratic dynamic-energy ratio
    /// between 1 V and Vmin is `(1.0/0.70)² ≈ 2.04×`, matching the paper's
    /// reported 2.04×/3.43× split between Vmin- and 1 V-relative savings at
    /// 0.77 Vmin.
    pub fn default_14nm() -> Self {
        Self::new(0.70, 1.0, 800.0e6, 0.55).expect("constants are valid")
    }

    /// Vmin in volts.
    pub fn vmin_volts(&self) -> f64 {
        self.vmin_volts
    }

    /// Nominal supply in volts.
    pub fn nominal_volts(&self) -> f64 {
        self.nominal_volts
    }

    /// Nominal supply expressed in Vmin units.
    pub fn nominal_voltage_norm(&self) -> f64 {
        self.nominal_volts / self.vmin_volts
    }

    /// Converts a normalized voltage (Vmin units) to absolute volts.
    pub fn to_volts(&self, voltage_norm: f64) -> f64 {
        voltage_norm * self.vmin_volts
    }

    /// Converts absolute volts to the normalized (Vmin-relative) voltage.
    pub fn to_norm(&self, volts: f64) -> f64 {
        volts / self.vmin_volts
    }

    /// Validates that a normalized voltage is inside the supported range.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] otherwise.
    pub fn check_voltage(&self, voltage_norm: f64) -> Result<()> {
        if !(MIN_VOLTAGE_NORM..=MAX_VOLTAGE_NORM).contains(&voltage_norm)
            || !voltage_norm.is_finite()
        {
            return Err(HwError::VoltageOutOfRange {
                voltage: voltage_norm,
                min: MIN_VOLTAGE_NORM,
                max: MAX_VOLTAGE_NORM,
            });
        }
        Ok(())
    }

    /// Clock frequency at the given normalized voltage.
    ///
    /// Affine between `(Vmin, fraction·f_nom)` and `(V_nom, f_nom)`, and
    /// extrapolated with the same slope outside that interval (clamped to
    /// stay strictly positive).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] for out-of-range voltages.
    pub fn frequency_hz(&self, voltage_norm: f64) -> Result<f64> {
        self.check_voltage(voltage_norm)?;
        let v = self.to_volts(voltage_norm);
        let f_vmin = self.frequency_fraction_at_vmin * self.nominal_frequency_hz;
        let slope = (self.nominal_frequency_hz - f_vmin) / (self.nominal_volts - self.vmin_volts);
        let f = f_vmin + slope * (v - self.vmin_volts);
        Ok(f.max(0.05 * self.nominal_frequency_hz))
    }

    /// Dynamic-energy scaling factor relative to nominal-voltage operation:
    /// `(V / V_nom)²`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] for out-of-range voltages.
    pub fn energy_scale_vs_nominal(&self, voltage_norm: f64) -> Result<f64> {
        self.check_voltage(voltage_norm)?;
        let v = self.to_volts(voltage_norm);
        Ok((v / self.nominal_volts).powi(2))
    }

    /// Energy-saving factor of running at `voltage_norm` instead of the
    /// nominal supply (the "Energy Savings" column of the paper's Table II).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::VoltageOutOfRange`] for out-of-range voltages.
    pub fn energy_savings_vs_nominal(&self, voltage_norm: f64) -> Result<f64> {
        Ok(1.0 / self.energy_scale_vs_nominal(voltage_norm)?)
    }
}

impl Default for VoltageDomain {
    fn default() -> Self {
        Self::default_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_domain_matches_paper_energy_ratios() {
        let d = VoltageDomain::default_14nm();
        // Table II: 0.77 Vmin gives 3.43x savings vs 1 V.
        let savings = d.energy_savings_vs_nominal(0.77).unwrap();
        assert!((savings - 3.43).abs() < 0.15, "savings {savings}");
        // 0.64 Vmin gives 4.93x.
        let savings_064 = d.energy_savings_vs_nominal(0.64).unwrap();
        assert!((savings_064 - 4.93).abs() < 0.2, "savings {savings_064}");
        // 0.86 Vmin gives 2.77x.
        let savings_086 = d.energy_savings_vs_nominal(0.86).unwrap();
        assert!((savings_086 - 2.77).abs() < 0.15, "savings {savings_086}");
        // And Vmin itself gives ~2.04x.
        let savings_vmin = d.energy_savings_vs_nominal(1.0).unwrap();
        assert!((savings_vmin - 2.04).abs() < 0.1, "savings {savings_vmin}");
    }

    #[test]
    fn frequency_decreases_with_voltage() {
        let d = VoltageDomain::default_14nm();
        let f_nom = d.frequency_hz(d.nominal_voltage_norm()).unwrap();
        let f_low = d.frequency_hz(0.7).unwrap();
        assert!(f_low < f_nom);
        assert!(f_low > 0.0);
        assert!((f_nom - 800.0e6).abs() < 1.0);
    }

    #[test]
    fn volts_norm_round_trip() {
        let d = VoltageDomain::default_14nm();
        let v = d.to_volts(0.8);
        assert!((d.to_norm(v) - 0.8).abs() < 1e-12);
        assert!((v - 0.56).abs() < 1e-9);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(VoltageDomain::new(0.0, 1.0, 1e6, 0.5).is_err());
        assert!(VoltageDomain::new(0.7, 0.5, 1e6, 0.5).is_err());
        assert!(VoltageDomain::new(0.7, 1.0, 0.0, 0.5).is_err());
        assert!(VoltageDomain::new(0.7, 1.0, 1e6, 1.5).is_err());
    }

    #[test]
    fn out_of_range_voltage_rejected() {
        let d = VoltageDomain::default_14nm();
        assert!(d.frequency_hz(0.2).is_err());
        assert!(d.energy_scale_vs_nominal(3.0).is_err());
        assert!(d.check_voltage(f64::NAN).is_err());
    }

    proptest! {
        #[test]
        fn prop_energy_savings_monotone_in_voltage(v1 in 0.6f64..1.4, v2 in 0.6f64..1.4) {
            let d = VoltageDomain::default_14nm();
            let (lo, hi) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
            let s_lo = d.energy_savings_vs_nominal(lo).unwrap();
            let s_hi = d.energy_savings_vs_nominal(hi).unwrap();
            prop_assert!(s_lo >= s_hi - 1e-12);
        }

        #[test]
        fn prop_frequency_positive(v in 0.55f64..1.5) {
            let d = VoltageDomain::default_14nm();
            prop_assert!(d.frequency_hz(v).unwrap() > 0.0);
        }
    }
}
